//! Command implementations.

use supermem::metrics::TextTable;
use supermem::nvm::FaultClass;
use supermem::persist::{
    recover_osiris, recover_transactions, DirectMem, PMem, RecoveredMemory, TxnManager,
};
use supermem::scheme::FIGURE_SCHEMES;
use supermem::sim::{CounterPlacement, Mutation};
use supermem::torture::{self, TortureConfig};
use supermem::verify::{check_run, check_run_trace, run_mutant_sharded, CheckReport};
use supermem::workloads::spec::ALL_KINDS;
use supermem::workloads::Workload;
use supermem::workloads::WorkloadKind;
use supermem::{sweep, Experiment, RunConfig, RunResult, Scheme};
use supermem_bench::Report;
use supermem_kv::{
    kv_crash_points, kv_run_case, kv_run_torture, kv_shrink_point, KvLayout, KvTortureCase,
    KvTortureConfig, KvWorkload,
};
use supermem_lincheck::{find_minimal, lincheck, CrashMode, LincheckConfig, Mutant};
use supermem_serve::{
    run_serve, run_serve_torture, ServeConfig, ServeTortureConfig, StructureKind, TrafficSpec,
};

use crate::args::{parse_run_flags, parse_scheme, ArgError, Parsed};

/// Every scheme `supermem crash` sweeps when none is named.
const ALL_SCHEMES: [Scheme; 9] = [
    Scheme::Unsec,
    Scheme::WriteBackIdeal,
    Scheme::WriteThrough,
    Scheme::WtCwc,
    Scheme::WtXbank,
    Scheme::SuperMem,
    Scheme::WtSameBank,
    Scheme::Osiris,
    Scheme::Sca,
];

/// Validates `rc` up front so the free-run path below cannot panic.
fn validated(rc: &RunConfig) -> Result<(), ArgError> {
    rc.validate().map_err(|e| ArgError(e.to_string()))
}

fn execute(rc: &RunConfig) -> RunResult {
    Experiment::new(rc.clone())
        .expect("config validated before execute")
        .run()
}

fn result_row(r: &RunResult) -> Vec<String> {
    vec![
        r.scheme.name().to_owned(),
        r.workload.clone(),
        r.txns.to_string(),
        format!("{:.0}", r.mean_txn_latency()),
        r.nvm_writes().to_string(),
        r.stats.counter_writes_coalesced.to_string(),
        r.counter_cache_hit_rate()
            .map_or_else(|| "-".to_owned(), |h| format!("{:.1}%", h * 100.0)),
        r.total_cycles.to_string(),
    ]
}

fn result_headers() -> Vec<String> {
    [
        "scheme",
        "workload",
        "txns",
        "cyc/txn",
        "nvm writes",
        "coalesced",
        "cc hit",
        "cycles",
    ]
    .map(str::to_owned)
    .to_vec()
}

/// `supermem run`
pub fn cmd_run(p: Parsed) -> Result<(), ArgError> {
    if let Some(flag) = p.leftover.first() {
        return Err(ArgError(format!("unknown flag `{flag}`")));
    }
    validated(&p.rc)?;
    let r = execute(&p.rc);
    let mut t = TextTable::new(result_headers());
    t.row(result_row(&r));
    print!("{}", if p.csv { t.to_csv() } else { t.render() });
    Ok(())
}

/// `supermem sweep --param P --values a,b,c [run flags]`
pub fn cmd_sweep(argv: &[String]) -> Result<(), ArgError> {
    let p = parse_run_flags(argv)?;
    let mut param = None;
    let mut values = None;
    let mut it = p.leftover.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--param" => param = it.next().cloned(),
            "--values" => values = it.next().cloned(),
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }
    let param = param.ok_or_else(|| ArgError("sweep needs --param".into()))?;
    let values = values.ok_or_else(|| ArgError("sweep needs --values".into()))?;
    let points: Vec<u64> = values
        .split(',')
        .map(crate::args::parse_size)
        .collect::<Result<_, _>>()?;
    if points.is_empty() {
        return Err(ArgError("--values must list at least one point".into()));
    }

    let mut jobs = Vec::with_capacity(points.len());
    for &v in &points {
        let mut rc = p.rc.clone();
        match param.as_str() {
            "wq" => rc.write_queue_entries = v as usize,
            "cc" => rc.counter_cache_bytes = v,
            "req" => rc.req_bytes = v,
            "programs" => rc.programs = v as usize,
            other => return Err(ArgError(format!("unknown sweep param `{other}`"))),
        }
        jobs.push(rc);
    }
    for rc in &jobs {
        validated(rc)?;
    }
    // All points run through the parallel sweep engine; results come
    // back in input order, so the table matches the sequential output.
    let results = sweep(&jobs, execute);

    let mut t = TextTable::new(
        std::iter::once(param.clone())
            .chain(result_headers())
            .collect(),
    );
    for (&v, r) in points.iter().zip(&results) {
        let mut row = vec![v.to_string()];
        row.extend(result_row(r));
        t.row(row);
    }
    print!("{}", if p.csv { t.to_csv() } else { t.render() });
    Ok(())
}

/// `supermem profile [run flags] [--json]`: run once with the built-in
/// telemetry observer attached and print the latency attribution.
pub fn cmd_profile(argv: &[String]) -> Result<(), ArgError> {
    let p = parse_run_flags(argv)?;
    let mut json = false;
    for flag in &p.leftover {
        match flag.as_str() {
            "--json" => json = true,
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }
    let mut exp = Experiment::new(p.rc.clone())
        .map_err(|e| ArgError(e.to_string()))?
        .observe();
    let r = exp.run();
    let t = r
        .telemetry
        .as_ref()
        .expect("observed run returns telemetry");
    if json {
        println!("{}", t.to_json(r.total_cycles));
        return Ok(());
    }

    let b = &t.breakdown;
    let flush_total = b.counter_fetch_cycles + b.crypto_cycles + b.queue_admission_cycles;
    let share = |c: u64| {
        if flush_total == 0 {
            "-".to_owned()
        } else {
            format!("{:.1}%", 100.0 * c as f64 / flush_total as f64)
        }
    };
    let mut attribution = TextTable::new(
        ["flush phase", "cycles", "share"]
            .map(str::to_owned)
            .to_vec(),
    );
    attribution.row(vec![
        "counter fetch".into(),
        b.counter_fetch_cycles.to_string(),
        share(b.counter_fetch_cycles),
    ]);
    attribution.row(vec![
        "crypto".into(),
        b.crypto_cycles.to_string(),
        share(b.crypto_cycles),
    ]);
    attribution.row(vec![
        "queue admission".into(),
        b.queue_admission_cycles.to_string(),
        share(b.queue_admission_cycles),
    ]);
    println!(
        "{} / {} — {} txns, {} cycles",
        r.scheme, r.workload, r.txns, r.total_cycles
    );
    println!();
    print!("{}", attribution.render());

    let mut hist = TextTable::new(
        [
            "latency", "count", "mean cyc", "p50", "p99", "p999", "max cyc",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    for (name, h) in [
        ("txn", &t.txn_latency),
        ("flush", &t.flush_latency),
        ("read", &t.read_latency),
    ] {
        hist.row(vec![
            name.into(),
            h.count().to_string(),
            format!("{:.1}", h.mean()),
            h.p50().to_string(),
            h.p99().to_string(),
            h.p999().to_string(),
            h.max().to_string(),
        ]);
    }
    println!();
    print!("{}", hist.render());

    println!();
    println!(
        "write queue: {} enqueues, {} coalesced, {} stalls ({} cycles), \
         occupancy mean {:.2} max {}",
        t.wq_occupancy.enqueues,
        b.coalesced,
        b.wq_stalls,
        b.wq_stall_cycles,
        t.wq_occupancy.histogram.mean(),
        t.wq_occupancy.max,
    );
    // Bank ids are machine-global (`channel * banks + bank`); with more
    // than one channel the table splits the id into its two coordinates.
    let banks_per_channel = p.rc.machine_config().banks;
    let multi = p.rc.channels > 1;
    println!(
        "channels: {} × {} banks, {} intra-run worker thread{}",
        p.rc.channels,
        banks_per_channel,
        p.rc.run_threads,
        if p.rc.run_threads == 1 { "" } else { "s" },
    );
    let headers: &[&str] = if multi {
        &["ch", "bank", "reads", "writes", "busy cyc", "util"]
    } else {
        &["bank", "reads", "writes", "busy cyc", "util"]
    };
    let mut banks = TextTable::new(headers.iter().map(|s| (*s).to_owned()).collect());
    for (i, bank) in t.banks.banks().iter().enumerate() {
        let mut row = if multi {
            vec![
                (i / banks_per_channel).to_string(),
                (i % banks_per_channel).to_string(),
            ]
        } else {
            vec![i.to_string()]
        };
        row.extend([
            bank.reads.to_string(),
            bank.writes.to_string(),
            bank.busy_cycles.to_string(),
            format!("{:.1}%", 100.0 * t.banks.utilization(i, r.total_cycles)),
        ]);
        banks.row(row);
    }
    println!();
    print!("{}", banks.render());
    Ok(())
}

/// Sweeps a crash over every append boundary of one durable transaction
/// under `scheme`, classifying each recovery. Returns
/// `(total, rolled_back, committed, unrecoverable)`.
fn crash_sweep_scheme(scheme: Scheme, channels: usize) -> Result<(u64, u64, u64, u64), String> {
    const DATA: u64 = 0x2000;
    const LOG: u64 = 0x10_0000;
    let cfg = scheme
        .apply(supermem::sim::Config::default())
        .with_channels(channels);
    let mut base = DirectMem::new(&cfg);
    base.persist(DATA, &[0x11; 256]);
    base.shutdown();

    let run_txn = |mem: &mut DirectMem| {
        let mut txm = TxnManager::new(LOG, 4096);
        let mut txn = txm.begin();
        txn.write(DATA, vec![0x22; 256]);
        txn.commit(mem).expect("commit");
    };
    let mut dry = base.clone();
    let before = dry.controller().append_events();
    run_txn(&mut dry);
    dry.shutdown();
    let total = dry.controller().append_events() - before;

    let (mut old, mut new, mut bad) = (0u64, 0u64, 0u64);
    for k in 1..=total {
        let mut mem = base.clone();
        mem.controller_mut().arm_crash_after_appends(k);
        run_txn(&mut mem);
        let Some(machine) = mem.controller_mut().take_machine_crash_image() else {
            return Err(format!(
                "{scheme}: crash armed after {k} appends never fired \
                 (the transaction issued only {total})"
            ));
        };
        // Osiris-style schemes reconstruct stale counters from ECC tags
        // before the log scan; strict schemes go straight to recovery.
        // On this clean (un-faulted) media a recovery error still means
        // the scheme lost state it needed — count it as unrecoverable.
        let rec = if cfg.osiris_window.is_some() {
            recover_osiris(&cfg, machine.merged())
                .map(|(rec, _)| rec)
                .ok()
        } else {
            Some(RecoveredMemory::from_machine_image(&cfg, machine))
        };
        let Some(mut rec) = rec else {
            bad += 1;
            continue;
        };
        if recover_transactions(&mut rec, LOG).is_err() {
            bad += 1;
            continue;
        }
        let mut buf = [0u8; 256];
        rec.read(DATA, &mut buf);
        match buf {
            b if b == [0x11; 256] => old += 1,
            b if b == [0x22; 256] => new += 1,
            _ => bad += 1,
        }
    }
    Ok((total, old, new, bad))
}

/// `supermem crash [--scheme S] [--channels N] [--json]`: sweep a
/// crash over every append boundary of one durable transaction — under
/// every scheme by default, or just the named one.
pub fn cmd_crash(argv: &[String]) -> Result<(), ArgError> {
    let mut only: Option<Scheme> = None;
    let mut channels = 1usize;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => {
                let s = it
                    .next()
                    .ok_or_else(|| ArgError("--scheme needs a value".into()))?;
                only = Some(parse_scheme(s)?);
            }
            "--channels" => {
                channels = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ArgError("invalid --channels".into()))?;
                if channels == 0 || !channels.is_power_of_two() {
                    return Err(ArgError("--channels must be a power of two".into()));
                }
            }
            "--json" => {} // Report::emit picks this up from the process args.
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }
    let schemes: Vec<Scheme> = match only {
        Some(s) => vec![s],
        None => ALL_SCHEMES.to_vec(),
    };

    // Each scheme's crash-point sweep is independent: fan out.
    let rows = sweep(&schemes, |&scheme| crash_sweep_scheme(scheme, channels));

    let mut t = TextTable::new(
        [
            "scheme",
            "crash points",
            "rolled back",
            "committed",
            "unrecoverable",
            "verdict",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    for (scheme, row) in schemes.iter().zip(rows) {
        let (total, old, new, bad) = row.map_err(ArgError)?;
        t.row(vec![
            scheme.name().to_owned(),
            total.to_string(),
            old.to_string(),
            new.to_string(),
            bad.to_string(),
            if bad == 0 {
                "recoverable at every crash point"
            } else {
                "UNRECOVERABLE windows"
            }
            .to_owned(),
        ]);
    }
    let mut rep = Report::new("crash");
    rep.section(
        "Crash-point sweep: one durable undo-logged transaction per scheme",
        t,
    );
    rep.footnote("(rolled back = old state restored; committed = new state durable)");
    rep.emit();
    Ok(())
}

/// `supermem torture [--scheme S] [--fault F|none] [--point K]
/// [--seed N] [--seeds COUNT] [--channels N] [--json]`: the differential crash-torture
/// campaign — media faults injected at crash time, every recovered
/// image checked against the shadow oracle. Exits non-zero (with a
/// shrunk reproducer per case) if any injection corrupts silently.
pub fn cmd_torture(argv: &[String]) -> Result<(), ArgError> {
    if argv.iter().any(|a| a == "--tree") {
        return cmd_tree_torture(argv);
    }
    let mut cfg = TortureConfig::default();
    let mut it = argv.iter();
    let value = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, ArgError> {
        it.next()
            .cloned()
            .ok_or_else(|| ArgError(format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => cfg.schemes = vec![parse_scheme(&value(&mut it, "--scheme")?)?],
            "--fault" => {
                let f = value(&mut it, "--fault")?;
                cfg.classes = if f.eq_ignore_ascii_case("none") {
                    vec![None]
                } else {
                    vec![Some(FaultClass::parse(&f).ok_or_else(|| {
                        ArgError(format!(
                            "unknown fault `{f}` (expected none or one of: {})",
                            FaultClass::ALL.map(FaultClass::name).join(" ")
                        ))
                    })?)]
                };
            }
            "--point" => {
                cfg.point = Some(
                    value(&mut it, "--point")?
                        .parse()
                        .map_err(|_| ArgError("invalid --point".into()))?,
                );
            }
            "--seed" => {
                cfg.seeds = vec![value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| ArgError("invalid --seed".into()))?];
            }
            "--seeds" => {
                let n: u64 = value(&mut it, "--seeds")?
                    .parse()
                    .map_err(|_| ArgError("invalid --seeds".into()))?;
                if n == 0 {
                    return Err(ArgError("--seeds must be at least 1".into()));
                }
                cfg.seeds = (1..=n).collect();
            }
            "--channels" => {
                let n: usize = value(&mut it, "--channels")?
                    .parse()
                    .map_err(|_| ArgError("invalid --channels".into()))?;
                if n == 0 || !n.is_power_of_two() {
                    return Err(ArgError("--channels must be a power of two".into()));
                }
                cfg.channels = vec![n];
            }
            "--json" => {} // Report::emit picks this up from the process args.
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }

    let report = torture::run_torture(&cfg);

    let mut t = TextTable::new(
        [
            "scheme",
            "cases",
            "recovered-old",
            "recovered-new",
            "detected",
            "silent",
            "verdict",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    for s in report.by_scheme() {
        t.row(vec![
            s.scheme.name().to_owned(),
            s.cases.to_string(),
            s.recovered_old.to_string(),
            s.recovered_new.to_string(),
            s.detected.to_string(),
            s.silent.to_string(),
            s.verdict().to_owned(),
        ]);
    }
    let mut rep = Report::new("torture");
    rep.section(
        "Differential crash torture: crash point x fault class x seed",
        t,
    );
    rep.footnote(&format!(
        "{} injections across {} scheme(s), {} fault class(es), {} seed(s)",
        report.total(),
        cfg.schemes.len(),
        cfg.classes.len(),
        cfg.seeds.len()
    ));
    rep.footnote("(detected = degraded but flagged by ECC/poison/dirty-shutdown or a typed error)");
    rep.emit();

    let silent = report.silent();
    if silent.is_empty() {
        return Ok(());
    }
    for r in &silent {
        eprintln!();
        eprintln!("silent corruption: {}", r.case.repro());
        eprintln!("  {}", r.detail);
        let mut min = r.case;
        min.point = torture::shrink_point(&r.case);
        eprintln!("  minimal repro: {}", min.repro());
    }
    Err(ArgError(format!(
        "silent corruption in {} of {} injections",
        silent.len(),
        report.total()
    )))
}

/// `supermem torture --tree [--persisted-levels L] [--fault F|tamper|none]
/// [--point K] [--seed N] [--seeds COUNT] [--json]` — the integrity-tree
/// campaign: media faults and ECC-clean tampering aimed at the persisted
/// tree-node region of a streaming-tree SuperMem machine.
fn cmd_tree_torture(argv: &[String]) -> Result<(), ArgError> {
    use supermem::torture::{run_tree_torture, TreeFault, TreeTortureConfig};

    let mut cfg = TreeTortureConfig::default();
    let mut it = argv.iter();
    let value = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, ArgError> {
        it.next()
            .cloned()
            .ok_or_else(|| ArgError(format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        #[allow(clippy::match_same_arms)] // `--tree` routed us here; `--json` is read elsewhere
        match arg.as_str() {
            "--tree" => {}
            "--persisted-levels" => {
                let n: u32 = value(&mut it, "--persisted-levels")?
                    .parse()
                    .map_err(|_| ArgError("invalid --persisted-levels".into()))?;
                if n == 0 {
                    return Err(ArgError(
                        "--persisted-levels must be at least 1 (level 0 persists \
                         nothing and leaves no tree region to torture)"
                            .into(),
                    ));
                }
                cfg.levels = vec![n];
            }
            "--fault" => {
                let f = value(&mut it, "--fault")?;
                cfg.faults = if f.eq_ignore_ascii_case("none") {
                    vec![TreeFault::None]
                } else if f.eq_ignore_ascii_case("tamper") {
                    vec![TreeFault::Tamper]
                } else {
                    vec![TreeFault::Media(FaultClass::parse(&f).ok_or_else(
                        || {
                            ArgError(format!(
                                "unknown fault `{f}` (expected none, tamper, or one of: {})",
                                FaultClass::ALL.map(FaultClass::name).join(" ")
                            ))
                        },
                    )?)]
                };
            }
            "--point" => {
                cfg.point = Some(
                    value(&mut it, "--point")?
                        .parse()
                        .map_err(|_| ArgError("invalid --point".into()))?,
                );
            }
            "--seed" => {
                cfg.seeds = vec![value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| ArgError("invalid --seed".into()))?];
            }
            "--seeds" => {
                let n: u64 = value(&mut it, "--seeds")?
                    .parse()
                    .map_err(|_| ArgError("invalid --seeds".into()))?;
                if n == 0 {
                    return Err(ArgError("--seeds must be at least 1".into()));
                }
                cfg.seeds = (1..=n).collect();
            }
            "--json" => {} // Report::emit picks this up from the process args.
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }

    let report = run_tree_torture(&cfg);

    let mut t = TextTable::new(
        [
            "frontier",
            "cases",
            "recovered-old",
            "recovered-new",
            "detected",
            "silent",
            "verdict",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    for &levels in &cfg.levels {
        let rows: Vec<_> = report
            .results
            .iter()
            .filter(|r| r.case.levels == levels)
            .collect();
        let tally = |c| {
            rows.iter()
                .filter(|r| r.classification == c)
                .count()
                .to_string()
        };
        let silent = rows
            .iter()
            .filter(|r| r.classification == torture::Classification::Silent)
            .count();
        t.row(vec![
            format!("L{levels}"),
            rows.len().to_string(),
            tally(torture::Classification::RecoveredOld),
            tally(torture::Classification::RecoveredNew),
            tally(torture::Classification::Detected),
            silent.to_string(),
            if silent > 0 {
                "SILENT CORRUPTION"
            } else {
                "fail-safe"
            }
            .to_owned(),
        ]);
    }
    let mut rep = Report::new("tree-torture");
    rep.section(
        "Integrity-tree torture: crash point x tree fault x seed (SuperMem, streaming tree)",
        t,
    );
    rep.footnote(&format!(
        "{} injections across {} frontier(s), {} fault(s), {} seed(s)",
        report.total(),
        cfg.levels.len(),
        cfg.faults.len(),
        cfg.seeds.len()
    ));
    rep.footnote(
        "(tamper = ECC-clean node-line forgery; only the recovery-time tree audit can catch it)",
    );
    rep.emit();

    let silent = report.silent();
    if silent.is_empty() {
        return Ok(());
    }
    for r in &silent {
        eprintln!();
        eprintln!("silent corruption: {}", r.case.repro());
        eprintln!("  {}", r.detail);
    }
    Err(ArgError(format!(
        "silent corruption in {} of {} injections",
        silent.len(),
        report.total()
    )))
}

/// `supermem serve [--structure S] [--scheme S] [--cores N] [--requests N]
/// [--read-pct P] [--mean-gap G] [--zipf T] [--keyspace K] [--buckets B]
/// [--seed X] [--channels N] [--run-threads N] [--degraded BANK] [--json]`
/// — drive a shared lock-free structure open-loop and print the tail
/// table; or `supermem serve --torture [--structure S] [--scheme S]
/// [--fault F|none] [--point K] [--seed N] [--seeds COUNT] [--json]` —
/// the CAS-window crash campaign.
pub fn cmd_serve(argv: &[String]) -> Result<(), ArgError> {
    let mut cfg = ServeConfig::default();
    let mut torture = false;
    let mut fault: Option<Vec<Option<FaultClass>>> = None;
    let mut point: Option<u64> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut structure_named = false;
    let mut seed_named = false;
    let mut it = argv.iter();
    let value = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, ArgError> {
        it.next()
            .cloned()
            .ok_or_else(|| ArgError(format!("{flag} needs a value")))
    };
    let parse_num = |s: String, flag: &str| -> Result<u64, ArgError> {
        s.parse().map_err(|_| ArgError(format!("invalid {flag}")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--torture" => torture = true,
            "--structure" => {
                let s = value(&mut it, "--structure")?;
                cfg.structure = StructureKind::parse(&s).ok_or_else(|| {
                    ArgError(format!(
                        "unknown structure `{s}` (expected stack|queue|hash)"
                    ))
                })?;
                structure_named = true;
            }
            "--scheme" => cfg.scheme = parse_scheme(&value(&mut it, "--scheme")?)?,
            "--cores" => cfg.cores = parse_num(value(&mut it, "--cores")?, "--cores")? as usize,
            "--requests" => cfg.requests = parse_num(value(&mut it, "--requests")?, "--requests")?,
            "--read-pct" => {
                cfg.read_pct = value(&mut it, "--read-pct")?
                    .parse()
                    .map_err(|_| ArgError("invalid --read-pct".into()))?;
            }
            "--mean-gap" => cfg.mean_gap = parse_num(value(&mut it, "--mean-gap")?, "--mean-gap")?,
            "--zipf" => {
                cfg.zipf_theta = value(&mut it, "--zipf")?
                    .parse()
                    .map_err(|_| ArgError("invalid --zipf".into()))?;
            }
            "--keyspace" => cfg.keyspace = parse_num(value(&mut it, "--keyspace")?, "--keyspace")?,
            "--buckets" => {
                cfg.hash_buckets = parse_num(value(&mut it, "--buckets")?, "--buckets")?;
            }
            "--seed" => {
                cfg.seed = parse_num(value(&mut it, "--seed")?, "--seed")?;
                seed_named = true;
            }
            "--seeds" => {
                let n = parse_num(value(&mut it, "--seeds")?, "--seeds")?;
                if n == 0 {
                    return Err(ArgError("--seeds must be at least 1".into()));
                }
                seeds = Some((1..=n).collect());
            }
            "--channels" => {
                cfg.channels = parse_num(value(&mut it, "--channels")?, "--channels")? as usize;
                if cfg.channels == 0 || !cfg.channels.is_power_of_two() {
                    return Err(ArgError("--channels must be a power of two".into()));
                }
            }
            "--run-threads" => {
                cfg.run_threads =
                    parse_num(value(&mut it, "--run-threads")?, "--run-threads")? as usize;
                if cfg.run_threads == 0 {
                    return Err(ArgError("--run-threads must be at least 1".into()));
                }
            }
            "--degraded" => {
                cfg.degraded_bank =
                    Some(parse_num(value(&mut it, "--degraded")?, "--degraded")? as usize);
            }
            "--fault" => {
                let f = value(&mut it, "--fault")?;
                fault = Some(if f.eq_ignore_ascii_case("none") {
                    vec![None]
                } else {
                    vec![Some(FaultClass::parse(&f).ok_or_else(|| {
                        ArgError(format!(
                            "unknown fault `{f}` (expected none or one of: {})",
                            FaultClass::ALL.map(FaultClass::name).join(" ")
                        ))
                    })?)]
                });
            }
            "--point" => point = Some(parse_num(value(&mut it, "--point")?, "--point")?),
            "--json" => {} // Report::emit picks this up from the process args.
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }

    if torture {
        if seeds.is_none() && seed_named {
            seeds = Some(vec![cfg.seed]);
        }
        return cmd_serve_torture(&cfg, structure_named, fault, point, seeds);
    }
    if fault.is_some() || point.is_some() {
        return Err(ArgError("--fault/--point only apply with --torture".into()));
    }

    cfg.validate().map_err(|e| ArgError(e.to_string()))?;
    let r = run_serve(&cfg).map_err(|e| ArgError(e.to_string()))?;

    let mut t = TextTable::new(
        [
            "structure",
            "cores",
            "reqs",
            "p50",
            "p99",
            "p999",
            "mean",
            "max",
            "retries",
            "reenc",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    t.row(vec![
        r.structure.to_string(),
        r.cores.to_string(),
        r.completed.to_string(),
        r.p50.to_string(),
        r.p99.to_string(),
        r.p999.to_string(),
        format!("{:.0}", r.mean),
        r.max.to_string(),
        r.retries.to_string(),
        r.reencryptions.to_string(),
    ]);
    let mut rep = Report::new("serve");
    rep.section(
        &format!(
            "Open-loop serving: {} cores on one shared {} under {} \
             (sojourn latency, cycles)",
            r.cores, r.structure, r.scheme
        ),
        t,
    );
    let mut per_core = TextTable::new(["core", "completed"].map(str::to_owned).to_vec());
    for (c, n) in r.per_core.iter().enumerate() {
        per_core.row(vec![c.to_string(), n.to_string()]);
    }
    rep.section("Per-core completions", per_core);
    if cfg.degraded_bank.is_some() {
        rep.footnote(&format!(
            "degraded mode: bank {} failed at time zero — {} poisoned reads, \
             {} dropped writes, shadow verification skipped",
            cfg.degraded_bank.unwrap_or_default(),
            r.poisoned_reads,
            r.dropped_writes
        ));
    } else {
        rep.footnote("persistent structure verified against the shadow model");
    }
    rep.footnote(&format!(
        "digest {:#018x} — identical across reruns of the same (config, seed)",
        r.digest
    ));
    rep.emit();
    Ok(())
}

/// The `--torture` arm of `cmd_serve`.
fn cmd_serve_torture(
    cfg: &ServeConfig,
    structure_named: bool,
    fault: Option<Vec<Option<FaultClass>>>,
    point: Option<u64>,
    seeds: Option<Vec<u64>>,
) -> Result<(), ArgError> {
    use supermem::torture::Classification;

    let mut tc = ServeTortureConfig {
        schemes: vec![cfg.scheme],
        point,
        ..ServeTortureConfig::default()
    };
    if structure_named {
        tc.structures = vec![cfg.structure];
    }
    if let Some(classes) = fault {
        tc.classes = classes;
    }
    if let Some(s) = seeds {
        tc.seeds = s;
    }

    let report = run_serve_torture(&tc);
    let mut t = TextTable::new(
        [
            "structure",
            "cases",
            "recovered-old",
            "recovered-new",
            "detected",
            "silent",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    for &structure in &tc.structures {
        let of = |c: Classification| {
            report
                .results
                .iter()
                .filter(|r| r.case.structure == structure && r.classification == c)
                .count()
        };
        t.row(vec![
            structure.to_string(),
            report
                .results
                .iter()
                .filter(|r| r.case.structure == structure)
                .count()
                .to_string(),
            of(Classification::RecoveredOld).to_string(),
            of(Classification::RecoveredNew).to_string(),
            of(Classification::Detected).to_string(),
            of(Classification::Silent).to_string(),
        ]);
    }
    let mut rep = Report::new("serve-torture");
    rep.section(
        "CAS-window crash torture: crash point x fault class x seed",
        t,
    );
    rep.footnote(&format!(
        "{} injections across {} structure(s), {} fault class(es), {} seed(s)",
        report.total(),
        tc.structures.len(),
        tc.classes.len(),
        tc.seeds.len()
    ));
    rep.footnote("(crash points land between announce, node persist, linearizing CAS, completion)");
    rep.emit();

    let silent = report.silent();
    if silent.is_empty() {
        return Ok(());
    }
    for r in &silent {
        eprintln!();
        eprintln!("silent corruption: {}", r.case.repro());
        eprintln!("  {}", r.detail);
    }
    Err(ArgError(format!(
        "silent corruption in {} of {} injections",
        silent.len(),
        report.total()
    )))
}

/// One named figure configuration the checker sweeps: a batch of runs
/// (mirroring the corresponding bench binary's parameter points) and
/// whether they replay through the event-granularity trace pipeline.
struct CheckConfig {
    name: &'static str,
    runs: Vec<RunConfig>,
    trace: bool,
}

/// The 17 figure configurations, one per bench binary, with `txns`
/// transactions per run. Each mirrors its binary's distinctive knobs at
/// checker-sweep scale.
fn check_configs(txns: u64) -> Vec<CheckConfig> {
    let base = |scheme, kind| {
        RunConfig::new(scheme, kind)
            .with_txns(txns)
            .with_req_bytes(1024)
            .with_array_footprint(1 << 20)
    };
    let plain = |name, runs| CheckConfig {
        name,
        runs,
        trace: false,
    };
    vec![
        plain(
            "fig13",
            FIGURE_SCHEMES
                .iter()
                .map(|&s| base(s, WorkloadKind::Array))
                .collect(),
        ),
        plain(
            "fig14",
            [Scheme::WriteThrough, Scheme::SuperMem]
                .iter()
                .map(|&s| base(s, WorkloadKind::Queue).with_programs(4))
                .collect(),
        ),
        CheckConfig {
            name: "fig14t",
            runs: [Scheme::WriteThrough, Scheme::SuperMem]
                .iter()
                .map(|&s| base(s, WorkloadKind::Queue).with_programs(4))
                .collect(),
            trace: true,
        },
        plain(
            "fig15",
            [Scheme::WriteThrough, Scheme::SuperMem]
                .iter()
                .map(|&s| base(s, WorkloadKind::HashTable))
                .collect(),
        ),
        plain(
            "fig16",
            [16usize, 64]
                .iter()
                .map(|&wq| base(Scheme::SuperMem, WorkloadKind::Queue).with_write_queue_entries(wq))
                .collect(),
        ),
        plain(
            "fig17",
            [64u64 << 10, 1 << 20]
                .iter()
                .map(|&cc| base(Scheme::SuperMem, WorkloadKind::BTree).with_counter_cache_bytes(cc))
                .collect(),
        ),
        plain(
            "table1",
            vec![
                base(Scheme::SuperMem, WorkloadKind::Array),
                base(Scheme::WriteThrough, WorkloadKind::Array),
            ],
        ),
        plain(
            "headline",
            vec![
                base(Scheme::SuperMem, WorkloadKind::Queue),
                base(Scheme::WriteBackIdeal, WorkloadKind::Queue),
            ],
        ),
        plain(
            "ablation",
            vec![
                base(Scheme::WriteThrough, WorkloadKind::Queue)
                    .with_placement_override(Some(CounterPlacement::SameBank))
                    .with_cwc_override(Some(false)),
                base(Scheme::WriteThrough, WorkloadKind::Queue)
                    .with_placement_override(Some(CounterPlacement::CrossBank))
                    .with_cwc_override(Some(true)),
            ],
        ),
        plain(
            "osiris",
            vec![
                base(Scheme::Osiris, WorkloadKind::Array),
                base(Scheme::SuperMem, WorkloadKind::Array),
            ],
        ),
        plain(
            "endurance",
            vec![
                base(Scheme::WriteThrough, WorkloadKind::BTree),
                base(Scheme::SuperMem, WorkloadKind::BTree),
            ],
        ),
        CheckConfig {
            name: "tracebench",
            runs: vec![base(Scheme::SuperMem, WorkloadKind::Array)],
            trace: true,
        },
        plain(
            "battery",
            vec![base(Scheme::WriteBackIdeal, WorkloadKind::Queue)],
        ),
        plain(
            "mixed",
            [10u8, 90]
                .iter()
                .map(|&pct| base(Scheme::SuperMem, WorkloadKind::Ycsb).with_ycsb_read_pct(pct))
                .collect(),
        ),
        plain("sca", vec![base(Scheme::Sca, WorkloadKind::Array)]),
        plain(
            "bitwrites",
            vec![base(Scheme::Unsec, WorkloadKind::BTree).with_req_bytes(256)],
        ),
        plain(
            "authenticated",
            vec![base(Scheme::SuperMem, WorkloadKind::Queue).with_integrity_tree(true)],
        ),
        plain(
            "treesweep",
            vec![base(Scheme::SuperMem, WorkloadKind::Queue)
                .with_integrity_tree(true)
                .with_persisted_levels(Some(1))],
        ),
    ]
}

/// Checks one figure configuration, merging all of its runs' reports.
fn check_one(cc: &CheckConfig) -> Result<CheckReport, ArgError> {
    let mut merged = CheckReport::default();
    for rc in &cc.runs {
        let report = if cc.trace {
            check_run_trace(rc)
        } else {
            check_run(rc)
        }
        .map_err(|e| ArgError(format!("{}: {e}", cc.name)))?;
        merged.events_seen += report.events_seen;
        merged.violations.extend(report.violations);
    }
    Ok(merged)
}

/// Finds the smallest transaction count (halving from `txns`) at which
/// `cc` still reports a violation — the minimal reproducer.
fn shrink_repro(cc: &CheckConfig, txns: u64) -> u64 {
    let mut best = txns;
    let mut t = txns / 2;
    while t >= 1 {
        let smaller = CheckConfig {
            name: cc.name,
            runs: cc.runs.iter().map(|rc| rc.clone().with_txns(t)).collect(),
            trace: cc.trace,
        };
        match check_one(&smaller) {
            Ok(r) if !r.is_clean() => {
                best = t;
                t /= 2;
            }
            _ => break,
        }
    }
    best
}

/// `supermem check [--json] [--txns N] [--config NAME] [--channels N]
/// [--mutate M]`: run the persistency-ordering checker over the figure
/// configurations (or prove a rule fires under an injected mutation).
pub fn cmd_check(argv: &[String]) -> Result<(), ArgError> {
    let mut json = false;
    let mut txns = 25u64;
    let mut channels = 1usize;
    let mut only: Option<String> = None;
    let mut mutate: Option<Mutation> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--txns" => {
                txns = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ArgError("invalid --txns".into()))?;
            }
            "--channels" => {
                channels = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| ArgError("invalid --channels".into()))?;
                if channels == 0 || !channels.is_power_of_two() {
                    return Err(ArgError("--channels must be a power of two".into()));
                }
            }
            "--config" => only = it.next().cloned(),
            "--mutate" => {
                let m = it
                    .next()
                    .ok_or_else(|| ArgError("--mutate needs a value".into()))?;
                mutate = Some(Mutation::parse(m).ok_or_else(|| {
                    ArgError(format!(
                        "unknown mutation `{m}` (expected one of: wt-off pair-split \
                         cwc-newest rsr-skip tree-skip tree-late tree-double-root)"
                    ))
                })?);
            }
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }

    if let Some(m) = mutate {
        let report = run_mutant_sharded(Some(m), channels);
        if json {
            println!("{}", report.to_json());
        } else {
            println!("mutation {}: {report}", m.name());
        }
        return if report.is_clean() {
            Err(ArgError(format!(
                "mutation `{}` injected but no invariant fired",
                m.name()
            )))
        } else {
            Ok(())
        };
    }

    let mut configs: Vec<CheckConfig> = check_configs(txns)
        .into_iter()
        .filter(|c| only.as_deref().is_none_or(|n| n == c.name))
        .collect();
    // Every figure configuration runs unchanged at any interleaving
    // width; the checker shards its shadow state to match.
    for cc in &mut configs {
        for rc in &mut cc.runs {
            rc.channels = channels;
        }
    }
    if configs.is_empty() {
        return Err(ArgError(format!(
            "unknown config `{}`",
            only.unwrap_or_default()
        )));
    }

    let mut t = TextTable::new(
        ["config", "runs", "events", "violations", "status"]
            .map(str::to_owned)
            .to_vec(),
    );
    let mut dirty = Vec::new();
    let mut json_rows = Vec::new();
    for cc in &configs {
        let report = check_one(cc)?;
        t.row(vec![
            cc.name.to_owned(),
            cc.runs.len().to_string(),
            report.events_seen.to_string(),
            report.violations.len().to_string(),
            if report.is_clean() { "ok" } else { "FAIL" }.to_owned(),
        ]);
        if json {
            json_rows.push(format!("\"{}\":{}", cc.name, report.to_json()));
        }
        if !report.is_clean() {
            dirty.push((cc, report));
        }
    }
    if json {
        println!("{{{}}}", json_rows.join(","));
    } else {
        print!("{}", t.render());
    }

    if dirty.is_empty() {
        return Ok(());
    }
    for (cc, report) in &dirty {
        eprintln!();
        eprintln!("{}:", cc.name);
        for v in &report.violations {
            eprintln!("  {v}");
            for (ord, ev) in &v.window {
                eprintln!("    #{ord} {ev}");
            }
        }
        let min = shrink_repro(cc, txns);
        let ch = if channels == 1 {
            String::new()
        } else {
            format!(" --channels {channels}")
        };
        eprintln!(
            "  minimal repro: supermem check --config {} --txns {min}{ch}",
            cc.name
        );
    }
    Err(ArgError(format!(
        "persistency-ordering violations in {} configuration(s)",
        dirty.len()
    )))
}

/// `supermem lincheck [--structure S|all] [--cores N] [--ops N]
/// [--depth N] [--crash {all|none|K}] [--reduce] [--mutate M] [--json]`
pub fn cmd_lincheck(argv: &[String]) -> Result<(), ArgError> {
    let mut structure: Option<StructureKind> = None;
    let mut cores = 2usize;
    let mut ops = 3usize;
    let mut depth = 96u64;
    let mut crash = CrashMode::All;
    let mut reduce = false;
    let mut mutate: Option<Mutant> = None;
    let mut json = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--structure" => {
                let s = it
                    .next()
                    .ok_or_else(|| ArgError("--structure needs a value".into()))?;
                if s != "all" {
                    structure = Some(StructureKind::parse(s).ok_or_else(|| {
                        ArgError(format!("unknown structure `{s}` (stack queue hash all)"))
                    })?);
                }
            }
            "--cores" => {
                cores = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|c| (1..=4).contains(c))
                    .ok_or_else(|| ArgError("invalid --cores (1..=4)".into()))?;
            }
            "--ops" => {
                ops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|o| (1..=8).contains(o))
                    .ok_or_else(|| ArgError("invalid --ops (1..=8)".into()))?;
            }
            "--depth" => {
                depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|d| *d > 0)
                    .ok_or_else(|| ArgError("invalid --depth".into()))?;
            }
            "--crash" => {
                let c = it
                    .next()
                    .ok_or_else(|| ArgError("--crash needs a value".into()))?;
                crash = match c.as_str() {
                    "all" => CrashMode::All,
                    "none" => CrashMode::Final,
                    k => CrashMode::AfterPersist(k.parse().map_err(|_| {
                        ArgError(format!(
                            "invalid --crash `{k}` (all, none, or a persist index)"
                        ))
                    })?),
                };
            }
            "--reduce" => reduce = true,
            "--json" => json = true,
            "--mutate" => {
                let m = it
                    .next()
                    .ok_or_else(|| ArgError("--mutate needs a value".into()))?;
                mutate = Some(Mutant::parse(m).ok_or_else(|| {
                    ArgError(format!(
                        "unknown mutant `{m}` (expected one of: skip-linearize \
                         complete-first drop-invalidate skip-scan)"
                    ))
                })?);
            }
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }
    let structures: Vec<StructureKind> =
        structure.map_or_else(|| StructureKind::ALL.to_vec(), |s| vec![s]);

    let mut t = TextTable::new(
        [
            "structure",
            "schedules",
            "crash points",
            "dedup",
            "pruned",
            "ms",
            "verdict",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    let mut json_rows = Vec::new();
    let mut violations = Vec::new();
    let mut missed = Vec::new();
    for s in &structures {
        let mut cfg = LincheckConfig::mixed(*s, cores, ops);
        cfg.crash = crash;
        cfg.reduce = reduce;
        cfg.mutant = mutate;
        cfg.max_actions = depth;
        let t0 = std::time::Instant::now();
        let report = lincheck(&cfg);
        let ms = t0.elapsed().as_millis();
        let caught = report.violation.is_some();
        let verdict = match (mutate.is_some(), caught) {
            (false, false) => "ok",
            (false, true) => "VIOLATION",
            (true, true) => "caught",
            (true, false) => "MISSED",
        };
        t.row(vec![
            s.name().to_owned(),
            report.stats.schedules.to_string(),
            report.stats.crash_points.to_string(),
            report.stats.dedup_hits.to_string(),
            report.stats.sleep_pruned.to_string(),
            ms.to_string(),
            verdict.to_owned(),
        ]);
        if json {
            let viol = report
                .violation
                .as_ref()
                .map_or_else(|| "null".to_owned(), |v| format!("{:?}", v.to_string()));
            json_rows.push(format!(
                "\"{}\":{{\"schedules\":{},\"crash_points\":{},\"dedup_hits\":{},\
                 \"sleep_pruned\":{},\"ms\":{ms},\"violation\":{viol}}}",
                s.name(),
                report.stats.schedules,
                report.stats.crash_points,
                report.stats.dedup_hits,
                report.stats.sleep_pruned,
            ));
        }
        match (mutate.is_some(), caught) {
            (true, false) => missed.push(*s),
            (_, true) => violations.push((*s, cfg)),
            _ => {}
        }
    }
    if json {
        println!("{{{}}}", json_rows.join(","));
    } else {
        print!("{}", t.render());
    }

    // Shrink every violation to a minimal replayable witness.
    for (s, cfg) in &violations {
        if let Some(repro) = find_minimal(cfg) {
            eprintln!();
            eprintln!("{s}: minimal repro: {}", repro.summary());
        }
    }
    if let Some(m) = mutate {
        return if missed.is_empty() {
            Ok(())
        } else {
            let names: Vec<&str> = missed.iter().map(|s| s.name()).collect();
            Err(ArgError(format!(
                "mutant `{m}` injected but not caught on: {}",
                names.join(", ")
            )))
        };
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(ArgError(format!(
            "durable-linearizability violations in {} structure(s)",
            violations.len()
        )))
    }
}

/// `supermem list`
pub fn cmd_list() {
    println!("schemes:");
    for s in [
        supermem::Scheme::Unsec,
        supermem::Scheme::WriteBackIdeal,
        supermem::Scheme::WriteThrough,
        supermem::Scheme::WtCwc,
        supermem::Scheme::WtXbank,
        supermem::Scheme::SuperMem,
        supermem::Scheme::WtSameBank,
        supermem::Scheme::Osiris,
        supermem::Scheme::Sca,
    ] {
        println!("  {s}");
    }
    println!("workloads:");
    for k in ALL_KINDS {
        println!("  {k}");
    }
}

/// `supermem kv {run|torture|recover}` — the recoverable KV store:
/// drive it with Zipfian traffic (`run`), sweep the differential
/// crash-torture campaign (`torture`), or crash one run at a chosen
/// point and print the typed recovery report (`recover`).
pub fn cmd_kv(argv: &[String]) -> Result<(), ArgError> {
    match argv.first().map(String::as_str) {
        Some("run") => cmd_kv_run(&argv[1..]),
        Some("torture") => cmd_kv_torture(&argv[1..]),
        Some("recover") => cmd_kv_recover(&argv[1..]),
        Some(other) => Err(ArgError(format!(
            "unknown kv subcommand `{other}` (expected run, torture, or recover)"
        ))),
        None => Err(ArgError(
            "kv needs a subcommand: run, torture, or recover".into(),
        )),
    }
}

fn kv_value(it: &mut std::slice::Iter<String>, flag: &str) -> Result<String, ArgError> {
    it.next()
        .cloned()
        .ok_or_else(|| ArgError(format!("{flag} needs a value")))
}

fn kv_parse<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, ArgError> {
    raw.parse()
        .map_err(|_| ArgError(format!("invalid {flag} `{raw}`")))
}

fn cmd_kv_run(argv: &[String]) -> Result<(), ArgError> {
    let mut scheme = Scheme::SuperMem;
    let mut requests: u64 = 2000;
    let mut spec = TrafficSpec::default();
    let mut snapshot_every: u64 = 64;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => scheme = parse_scheme(&kv_value(&mut it, "--scheme")?)?,
            "--requests" => requests = kv_parse(&kv_value(&mut it, "--requests")?, "--requests")?,
            "--read-pct" => {
                spec.read_pct = kv_parse(&kv_value(&mut it, "--read-pct")?, "--read-pct")?;
                if spec.read_pct > 100 {
                    return Err(ArgError("--read-pct must be 0..=100".into()));
                }
            }
            "--zipf" => spec.zipf_theta = kv_parse(&kv_value(&mut it, "--zipf")?, "--zipf")?,
            "--keyspace" => {
                spec.keyspace = kv_parse(&kv_value(&mut it, "--keyspace")?, "--keyspace")?;
                if spec.keyspace == 0 {
                    return Err(ArgError("--keyspace must be at least 1".into()));
                }
            }
            "--snapshot-every" => {
                snapshot_every =
                    kv_parse(&kv_value(&mut it, "--snapshot-every")?, "--snapshot-every")?;
            }
            "--seed" => spec.seed = kv_parse(&kv_value(&mut it, "--seed")?, "--seed")?,
            "--json" => {}
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }

    let cfg = scheme.apply(supermem::sim::Config::default());
    let mut mem = DirectMem::new(&cfg);
    // Size the snapshot slots for the whole keyspace (8 B keys and
    // values, 16 B record framing) with headroom, 64-aligned.
    let snap_cap =
        (supermem_kv::layout::SNAP_HEADER_LEN + spec.keyspace * 24 + 64).next_multiple_of(64);
    let layout = KvLayout::new(0x8000, 1 << 16, snap_cap)
        .map_err(|e| ArgError(format!("kv layout: {e}")))?;
    let mut w = KvWorkload::new(&mut mem, layout, snapshot_every, spec)
        .map_err(|e| ArgError(format!("kv format: {e}")))?;
    for _ in 0..requests {
        Workload::step(&mut w, &mut mem).map_err(|e| ArgError(format!("kv step: {e}")))?;
    }
    let verify = Workload::verify(&mut w, &mut mem);
    let stats = w.store().stats();

    let mut t = TextTable::new(
        [
            "scheme",
            "requests",
            "acked",
            "reads",
            "puts",
            "dels",
            "snapshots",
            "rotations",
            "wal-bytes",
            "entries",
            "verify",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    t.row(vec![
        scheme.name().to_owned(),
        requests.to_string(),
        stats.acked.to_string(),
        w.reads().to_string(),
        stats.puts.to_string(),
        stats.dels.to_string(),
        stats.snapshots.to_string(),
        stats.rotations.to_string(),
        stats.wal_bytes.to_string(),
        w.store().len().to_string(),
        match &verify {
            Ok(()) => "ok".to_owned(),
            Err(e) => format!("FAIL: {e}"),
        },
    ]);
    let mut rep = Report::new("kv");
    rep.section("Recoverable KV store under open-loop Zipfian traffic", t);
    rep.footnote(
        "(verify = recover from the persistent image and compare against the in-DRAM shadow)",
    );
    rep.emit();
    verify.map_err(|e| ArgError(format!("kv verify failed: {e}")))
}

fn cmd_kv_torture(argv: &[String]) -> Result<(), ArgError> {
    let mut cfg = KvTortureConfig::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => cfg.schemes = vec![parse_scheme(&kv_value(&mut it, "--scheme")?)?],
            "--fault" => {
                let f = kv_value(&mut it, "--fault")?;
                cfg.classes = if f.eq_ignore_ascii_case("none") {
                    vec![None]
                } else {
                    vec![Some(FaultClass::parse(&f).ok_or_else(|| {
                        ArgError(format!(
                            "unknown fault `{f}` (expected none or one of: {})",
                            FaultClass::ALL.map(FaultClass::name).join(" ")
                        ))
                    })?)]
                };
            }
            "--point" => cfg.point = Some(kv_parse(&kv_value(&mut it, "--point")?, "--point")?),
            "--seed" => cfg.seeds = vec![kv_parse(&kv_value(&mut it, "--seed")?, "--seed")?],
            "--seeds" => {
                let n: u64 = kv_parse(&kv_value(&mut it, "--seeds")?, "--seeds")?;
                if n == 0 {
                    return Err(ArgError("--seeds must be at least 1".into()));
                }
                cfg.seeds = (1..=n).collect();
            }
            "--channels" => {
                let n: usize = kv_parse(&kv_value(&mut it, "--channels")?, "--channels")?;
                if n == 0 || !n.is_power_of_two() {
                    return Err(ArgError("--channels must be a power of two".into()));
                }
                cfg.channels = vec![n];
            }
            "--json" => {}
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }

    let report = kv_run_torture(&cfg);

    let mut t = TextTable::new(
        [
            "scheme",
            "cases",
            "recovered-committed",
            "lost-unacked-tail",
            "detected",
            "silent",
            "verdict",
        ]
        .map(str::to_owned)
        .to_vec(),
    );
    for s in report.by_scheme() {
        t.row(vec![
            s.scheme.name().to_owned(),
            s.cases.to_string(),
            s.committed.to_string(),
            s.lost_tail.to_string(),
            s.detected.to_string(),
            s.silent.to_string(),
            s.verdict().to_owned(),
        ]);
    }
    let mut rep = Report::new("kvtorture");
    rep.section("KV crash torture: crash point x fault class x seed", t);
    rep.footnote(&format!(
        "{} injections across {} scheme(s), {} fault class(es), {} seed(s)",
        report.total(),
        cfg.schemes.len(),
        cfg.classes.len(),
        cfg.seeds.len()
    ));
    rep.footnote(
        "(lost-unacked-tail = only never-acknowledged ops missing; detected = degraded but \
         flagged by a typed error, the recovery report, or ECC/poison/dirty-shutdown)",
    );
    rep.emit();

    let silent = report.silent();
    if silent.is_empty() {
        return Ok(());
    }
    for r in &silent {
        eprintln!();
        eprintln!("silent corruption: {}", r.case.repro());
        eprintln!("  {}", r.detail);
        let mut min = r.case;
        min.point = kv_shrink_point(&r.case);
        eprintln!("  minimal repro: {}", min.repro());
    }
    Err(ArgError(format!(
        "silent corruption in {} of {} injections",
        silent.len(),
        report.total()
    )))
}

fn cmd_kv_recover(argv: &[String]) -> Result<(), ArgError> {
    let mut scheme = Scheme::SuperMem;
    let mut seed: u64 = 1;
    let mut point: Option<u64> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => scheme = parse_scheme(&kv_value(&mut it, "--scheme")?)?,
            "--seed" => seed = kv_parse(&kv_value(&mut it, "--seed")?, "--seed")?,
            "--point" => point = Some(kv_parse(&kv_value(&mut it, "--point")?, "--point")?),
            "--json" => {}
            other => return Err(ArgError(format!("unknown flag `{other}`"))),
        }
    }

    let total = kv_crash_points(scheme, 1, seed, KvTortureConfig::default().ops);
    let point = point.unwrap_or(total / 2).clamp(1, total);
    let case = KvTortureCase {
        scheme,
        class: None,
        point,
        seed,
        channels: 1,
    };
    let r = kv_run_case(&case);

    let mut t = TextTable::new(["field", "value"].map(str::to_owned).to_vec());
    t.row(vec!["crash point".into(), format!("{point} of {total}")]);
    t.row(vec!["classification".into(), r.classification.to_string()]);
    match &r.recovery {
        Some(rec) => {
            t.row(vec![
                "snapshot".into(),
                format!("slot {} seq {}", rec.snapshot_slot, rec.snapshot_seq),
            ]);
            t.row(vec![
                "snapshots rejected".into(),
                rec.snapshots_rejected.to_string(),
            ]);
            t.row(vec!["manifest ok".into(), rec.manifest_ok.to_string()]);
            t.row(vec!["wal header ok".into(), rec.wal_header_ok.to_string()]);
            t.row(vec!["wal epoch".into(), rec.wal_seq.to_string()]);
            t.row(vec![
                "records replayed".into(),
                rec.records_replayed.to_string(),
            ]);
            t.row(vec![
                "corrupt entries skipped".into(),
                rec.corrupt_entries_skipped.to_string(),
            ]);
            t.row(vec![
                "torn tail".into(),
                rec.torn_tail_at
                    .map_or("none".to_owned(), |o| format!("at offset {o}")),
            ]);
            t.row(vec!["resume offset".into(), rec.resume_offset.to_string()]);
            t.row(vec!["entries".into(), rec.entries.to_string()]);
            t.row(vec![
                "state digest".into(),
                format!("{:#010x}", rec.state_digest),
            ]);
        }
        None => t.row(vec!["recovery".into(), r.detail.clone()]),
    }
    let mut rep = Report::new("kvrecover");
    rep.section(
        &format!("KV recovery after a crash at append {point} ({scheme})"),
        t,
    );
    rep.footnote(&r.detail);
    rep.emit();
    Ok(())
}
