//! Flag parsing (dependency-free).

use supermem::workloads::WorkloadKind;
use supermem::{RunConfig, Scheme};

/// A human-readable argument error.
#[derive(Debug)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed `run`-style flags.
#[derive(Debug, Clone)]
pub struct Parsed {
    /// The assembled run configuration.
    pub rc: RunConfig,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Flags the parser did not consume (for `sweep`'s own flags).
    pub leftover: Vec<String>,
}

/// Parses a scheme name (paper labels, case-insensitive).
pub fn parse_scheme(s: &str) -> Result<Scheme, ArgError> {
    match s.to_ascii_lowercase().as_str() {
        "unsec" => Ok(Scheme::Unsec),
        "wb" | "writeback" | "ideal" => Ok(Scheme::WriteBackIdeal),
        "wt" | "writethrough" => Ok(Scheme::WriteThrough),
        "wt+cwc" | "cwc" => Ok(Scheme::WtCwc),
        "wt+xbank" | "xbank" => Ok(Scheme::WtXbank),
        "supermem" => Ok(Scheme::SuperMem),
        "wt+samebank" | "samebank" => Ok(Scheme::WtSameBank),
        "osiris" => Ok(Scheme::Osiris),
        "sca" => Ok(Scheme::Sca),
        other => Err(ArgError(format!("unknown scheme `{other}`"))),
    }
}

/// Parses a size with optional `K`/`M` suffix.
pub fn parse_size(s: &str) -> Result<u64, ArgError> {
    let (digits, mult) = match s.as_bytes().last() {
        Some(b'K' | b'k') => (&s[..s.len() - 1], 1024),
        Some(b'M' | b'm') => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| ArgError(format!("invalid size `{s}`")))
}

/// Parses the shared run flags, collecting unknown flags into
/// [`Parsed::leftover`].
pub fn parse_run_flags(argv: &[String]) -> Result<Parsed, ArgError> {
    let mut rc = RunConfig {
        txns: 150,
        ..RunConfig::default()
    };
    let mut csv = false;
    let mut leftover = Vec::new();
    let mut it = argv.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, ArgError> {
        it.next()
            .cloned()
            .ok_or_else(|| ArgError(format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scheme" => rc.scheme = parse_scheme(&value(&mut it, "--scheme")?)?,
            "--workload" => {
                let w = value(&mut it, "--workload")?;
                rc.kind = WorkloadKind::from_name(&w)
                    .ok_or_else(|| ArgError(format!("unknown workload `{w}`")))?;
            }
            "--txns" => {
                rc.txns = value(&mut it, "--txns")?
                    .parse()
                    .map_err(|_| ArgError("invalid --txns".into()))?;
            }
            "--req" => rc.req_bytes = parse_size(&value(&mut it, "--req")?)?,
            "--wq" => {
                rc.write_queue_entries = value(&mut it, "--wq")?
                    .parse()
                    .map_err(|_| ArgError("invalid --wq".into()))?;
            }
            "--cc" => rc.counter_cache_bytes = parse_size(&value(&mut it, "--cc")?)?,
            "--channels" => {
                rc.channels = value(&mut it, "--channels")?
                    .parse()
                    .map_err(|_| ArgError("invalid --channels".into()))?;
                if rc.channels == 0 || !rc.channels.is_power_of_two() {
                    return Err(ArgError("--channels must be a power of two".into()));
                }
            }
            "--programs" => {
                rc.programs = value(&mut it, "--programs")?
                    .parse()
                    .map_err(|_| ArgError("invalid --programs".into()))?;
            }
            "--seed" => {
                rc.seed = value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| ArgError("invalid --seed".into()))?;
            }
            "--read-pct" => {
                rc.ycsb_read_pct = value(&mut it, "--read-pct")?
                    .parse()
                    .map_err(|_| ArgError("invalid --read-pct".into()))?;
                if rc.ycsb_read_pct > 100 {
                    return Err(ArgError("--read-pct must be 0..=100".into()));
                }
            }
            "--integrity-tree" => rc.integrity_tree = true,
            "--persisted-levels" => {
                let n: u32 = value(&mut it, "--persisted-levels")?
                    .parse()
                    .map_err(|_| ArgError("invalid --persisted-levels".into()))?;
                // The frontier only means anything with the tree armed.
                rc.integrity_tree = true;
                rc.persisted_levels = Some(n);
            }
            "--run-threads" => {
                let n: usize = value(&mut it, "--run-threads")?
                    .parse()
                    .map_err(|_| ArgError("invalid --run-threads".into()))?;
                if n == 0 {
                    return Err(ArgError("--run-threads must be at least 1".into()));
                }
                rc.run_threads = n;
            }
            "--csv" => csv = true,
            other => {
                leftover.push(other.to_owned());
                if let Some(next) = it.peek() {
                    if !next.starts_with("--") {
                        leftover.push(it.next().expect("peeked").clone());
                    }
                }
            }
        }
    }
    Ok(Parsed { rc, csv, leftover })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_full_flag_set() {
        let p = parse_run_flags(&strs(&[
            "--scheme",
            "wt+cwc",
            "--workload",
            "btree",
            "--txns",
            "42",
            "--req",
            "4K",
            "--wq",
            "64",
            "--cc",
            "1M",
            "--programs",
            "4",
            "--seed",
            "9",
            "--csv",
        ]))
        .unwrap();
        assert_eq!(p.rc.scheme, Scheme::WtCwc);
        assert_eq!(p.rc.kind, WorkloadKind::BTree);
        assert_eq!(p.rc.txns, 42);
        assert_eq!(p.rc.req_bytes, 4096);
        assert_eq!(p.rc.write_queue_entries, 64);
        assert_eq!(p.rc.counter_cache_bytes, 1 << 20);
        assert_eq!(p.rc.programs, 4);
        assert_eq!(p.rc.seed, 9);
        assert!(p.csv);
        assert!(p.leftover.is_empty());
    }

    #[test]
    fn unknown_flags_go_to_leftover_with_values() {
        let p = parse_run_flags(&strs(&["--param", "wq", "--scheme", "unsec"])).unwrap();
        assert_eq!(p.leftover, strs(&["--param", "wq"]));
        assert_eq!(p.rc.scheme, Scheme::Unsec);
    }

    #[test]
    fn channels_flag_parses_and_validates() {
        let p = parse_run_flags(&strs(&["--channels", "4"])).unwrap();
        assert_eq!(p.rc.channels, 4);
        assert!(parse_run_flags(&strs(&["--channels", "3"])).is_err());
        assert!(parse_run_flags(&strs(&["--channels", "0"])).is_err());
    }

    #[test]
    fn persisted_levels_flag_arms_the_tree() {
        let p = parse_run_flags(&strs(&["--persisted-levels", "2"])).unwrap();
        assert!(p.rc.integrity_tree);
        assert_eq!(p.rc.persisted_levels, Some(2));
        let p = parse_run_flags(&strs(&["--integrity-tree"])).unwrap();
        assert!(p.rc.integrity_tree);
        assert_eq!(p.rc.persisted_levels, None);
        assert!(parse_run_flags(&strs(&["--persisted-levels", "x"])).is_err());
    }

    #[test]
    fn run_threads_flag_parses_and_validates() {
        let p = parse_run_flags(&strs(&["--run-threads", "4"])).unwrap();
        assert_eq!(p.rc.run_threads, 4);
        assert!(parse_run_flags(&strs(&["--run-threads", "0"])).is_err());
        assert!(parse_run_flags(&strs(&["--run-threads", "x"])).is_err());
    }

    #[test]
    fn size_suffixes() {
        assert_eq!(parse_size("256K").unwrap(), 256 * 1024);
        assert_eq!(parse_size("4M").unwrap(), 4 << 20);
        assert_eq!(parse_size("512").unwrap(), 512);
        assert!(parse_size("x").is_err());
    }

    #[test]
    fn scheme_aliases() {
        assert_eq!(parse_scheme("SuperMem").unwrap(), Scheme::SuperMem);
        assert_eq!(parse_scheme("xbank").unwrap(), Scheme::WtXbank);
        assert_eq!(parse_scheme("osiris").unwrap(), Scheme::Osiris);
        assert!(parse_scheme("nope").is_err());
    }

    #[test]
    fn read_pct_parses_and_validates() {
        let p = parse_run_flags(&strs(&["--workload", "ycsb", "--read-pct", "95"])).unwrap();
        assert_eq!(p.rc.kind, WorkloadKind::Ycsb);
        assert_eq!(p.rc.ycsb_read_pct, 95);
        assert!(parse_run_flags(&strs(&["--read-pct", "101"])).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse_run_flags(&strs(&["--scheme"])).is_err());
        assert!(parse_run_flags(&strs(&["--txns", "abc"])).is_err());
    }
}
