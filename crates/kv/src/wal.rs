//! The checksummed write-ahead log: length-prefixed records, per-record
//! CRC-32, and a magic/version/sequence segment header.
//!
//! ```text
//! segment header (32 B): [magic u64][version u32][seq u64][crc u32]
//! record:                [len u32][payload][crc u32]
//! payload:               [kind u8][klen u32][vlen u32][key][value]
//! terminator:            [0u32]
//! ```
//!
//! The record CRC is computed over `seq_le || off_le || payload` —
//! mixing the segment sequence into every record means bytes left
//! behind by an earlier epoch (the WAL is rotated in place at a
//! rotating checkpoint) can never masquerade as records of the current
//! epoch, and mixing the record's own body offset means a valid
//! record's bytes copied (by damaged media or a misdirected write) over
//! a *different* log position fail CRC there instead of replaying a
//! real operation at the wrong point in history. Both guard invariant
//! R4, "recovery never invents data": replay stops or skips with a
//! damage signal instead of resurrecting superseded or relocated
//! operations.

use std::collections::BTreeMap;

use supermem_persist::PMem;

use crate::crc32::{crc32, crc32_parts};
use crate::layout::{read4, read8, KvLayout, FORMAT_VERSION, MAX_KEY, MAX_VAL, WAL_MAGIC};

/// Record kind byte for a put.
pub const KIND_PUT: u8 = 1;
/// Record kind byte for a delete.
pub const KIND_DEL: u8 = 2;

/// Maximum record *payload* length (kind + lengths + max key + max
/// value).
pub const MAX_RECORD_LEN: usize = 9 + MAX_KEY + MAX_VAL;

/// One logged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Insert or overwrite `key` with `value`.
    Put(Vec<u8>, Vec<u8>),
    /// Remove `key` (a no-op if absent).
    Del(Vec<u8>),
}

impl KvOp {
    /// The key the operation touches.
    pub fn key(&self) -> &[u8] {
        match self {
            KvOp::Put(k, _) | KvOp::Del(k) => k,
        }
    }

    /// Applies the operation to a volatile index.
    pub fn apply(&self, map: &mut BTreeMap<Vec<u8>, Vec<u8>>) {
        match self {
            KvOp::Put(k, v) => {
                map.insert(k.clone(), v.clone());
            }
            KvOp::Del(k) => {
                map.remove(k);
            }
        }
    }
}

/// Serializes one record (`len || payload || crc`) for segment `seq`
/// destined for body offset `off`.
///
/// Key/value bounds are the caller's contract ([`crate::KvStore`]
/// validates them with a typed error first).
pub fn encode_record(seq: u64, off: u64, op: &KvOp) -> Vec<u8> {
    let (kind, key, val): (u8, &[u8], &[u8]) = match op {
        KvOp::Put(k, v) => (KIND_PUT, k, v),
        KvOp::Del(k) => (KIND_DEL, k, &[]),
    };
    let mut payload = Vec::with_capacity(9 + key.len() + val.len());
    payload.push(kind);
    payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
    payload.extend_from_slice(&(val.len() as u32).to_le_bytes());
    payload.extend_from_slice(key);
    payload.extend_from_slice(val);
    let crc = crc32_parts(&[&seq.to_le_bytes(), &off.to_le_bytes(), &payload]);
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec.extend_from_slice(&crc.to_le_bytes());
    rec
}

/// Bytes record `op` occupies on media (length word + payload + CRC).
pub fn record_len(op: &KvOp) -> u64 {
    let body = match op {
        KvOp::Put(k, v) => 9 + k.len() + v.len(),
        KvOp::Del(k) => 9 + k.len(),
    };
    8 + body as u64
}

/// What [`parse_at`] found at a body offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// A zero length word: the clean end of the log.
    End,
    /// A valid record and the offset of the next one.
    Record(KvOp, u64),
    /// A record that fails validation. `next` is the offset just past
    /// it when the length word was plausible (a skip candidate);
    /// `None` when the length itself is garbage (no way to resync).
    Corrupt(Option<u64>),
}

/// Validates whatever sits at body offset `off` of a segment with
/// sequence `seq`. Pure read; never panics on any byte pattern.
pub fn parse_at<M: PMem>(mem: &mut M, body_addr: u64, cap: u64, seq: u64, off: u64) -> Parse {
    if off + 4 > cap {
        return Parse::Corrupt(None);
    }
    let mut lenb = [0u8; 4];
    mem.read(body_addr + off, &mut lenb);
    let len = u32::from_le_bytes(lenb) as u64;
    if len == 0 {
        return Parse::End;
    }
    if len > MAX_RECORD_LEN as u64 || off + 8 + len > cap {
        return Parse::Corrupt(None);
    }
    let next = off + 8 + len;
    let mut rest = vec![0u8; len as usize + 4];
    mem.read(body_addr + off + 4, &mut rest);
    let payload = &rest[..len as usize];
    let Some(stored) = read4(&rest, len as usize) else {
        return Parse::Corrupt(Some(next));
    };
    if u32::from_le_bytes(stored) != crc32_parts(&[&seq.to_le_bytes(), &off.to_le_bytes(), payload])
    {
        return Parse::Corrupt(Some(next));
    }
    match decode_payload(payload) {
        Some(op) => Parse::Record(op, next),
        None => Parse::Corrupt(Some(next)),
    }
}

/// Decodes a CRC-validated payload; `None` on structural nonsense
/// (which a correct writer never produces, but recovery must not trust
/// the media).
fn decode_payload(p: &[u8]) -> Option<KvOp> {
    let kind = *p.first()?;
    let klen = u32::from_le_bytes(read4(p, 1)?) as usize;
    let vlen = u32::from_le_bytes(read4(p, 5)?) as usize;
    if klen > MAX_KEY || vlen > MAX_VAL || p.len() != 9 + klen + vlen {
        return None;
    }
    let key = p.get(9..9 + klen)?.to_vec();
    match kind {
        KIND_PUT => Some(KvOp::Put(key, p.get(9 + klen..)?.to_vec())),
        KIND_DEL if vlen == 0 => Some(KvOp::Del(key)),
        _ => None,
    }
}

/// The WAL segment header: identifies the format and the epoch every
/// record CRC in the body is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalHeader {
    /// Segment (epoch) sequence number, starting at 1 and bumped by
    /// every rotating checkpoint.
    pub seq: u64,
}

impl WalHeader {
    /// Serializes the header (magic, version, seq, CRC; zero padding).
    pub fn encode(&self) -> [u8; 32] {
        let mut b = [0u8; 32];
        b[0..8].copy_from_slice(&WAL_MAGIC.to_le_bytes());
        b[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        b[12..20].copy_from_slice(&self.seq.to_le_bytes());
        let crc = crc32(&b[0..20]);
        b[20..24].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Writes and persists the header, plus the body terminator that
    /// makes a freshly rotated segment replay as empty.
    pub fn persist_fresh<M: PMem>(&self, mem: &mut M, layout: &KvLayout) {
        let mut b = [0u8; 36];
        b[0..32].copy_from_slice(&self.encode());
        // b[32..36] is the zero terminator at body offset 0.
        mem.persist(layout.wal_addr(), &b);
    }

    /// Reads and validates the header; `None` when magic, version, or
    /// CRC disagree (a torn rotation or damaged media).
    pub fn load<M: PMem>(mem: &mut M, layout: &KvLayout) -> Option<Self> {
        let mut b = [0u8; 32];
        mem.read(layout.wal_addr(), &mut b);
        let magic = u64::from_le_bytes(read8(&b, 0)?);
        let version = u32::from_le_bytes(read4(&b, 8)?);
        let seq = u64::from_le_bytes(read8(&b, 12)?);
        let crc = u32::from_le_bytes(read4(&b, 20)?);
        if magic != WAL_MAGIC || version != FORMAT_VERSION || crc != crc32(&b[0..20]) || seq == 0 {
            return None;
        }
        Some(Self { seq })
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    fn layout() -> KvLayout {
        KvLayout::new(0x1000, 4096, 4096).unwrap()
    }

    #[test]
    fn record_roundtrip_both_kinds() {
        let l = layout();
        let mut mem = VecMem::new();
        let ops = [
            KvOp::Put(b"key".to_vec(), b"value".to_vec()),
            KvOp::Del(b"key".to_vec()),
            KvOp::Put(vec![0; MAX_KEY], vec![0xFF; MAX_VAL]),
        ];
        let mut off = 0;
        for op in &ops {
            let rec = encode_record(3, off, op);
            assert_eq!(rec.len() as u64, record_len(op));
            mem.write(l.wal_body_addr() + off, &rec);
            match parse_at(&mut mem, l.wal_body_addr(), l.wal_body, 3, off) {
                Parse::Record(got, next) => {
                    assert_eq!(&got, op);
                    assert_eq!(next, off + rec.len() as u64);
                }
                other => panic!("expected record, got {other:?}"),
            }
            off += rec.len() as u64;
        }
        // Zeroed tail reads as the clean end.
        assert_eq!(
            parse_at(&mut mem, l.wal_body_addr(), l.wal_body, 3, off),
            Parse::End
        );
    }

    #[test]
    fn stale_epoch_records_fail_crc() {
        // A record sealed under seq 3 must not validate under seq 4:
        // this is what keeps a rotated-in-place segment from replaying
        // its previous life (R4).
        let l = layout();
        let mut mem = VecMem::new();
        let rec = encode_record(3, 0, &KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        mem.write(l.wal_body_addr(), &rec);
        assert!(matches!(
            parse_at(&mut mem, l.wal_body_addr(), l.wal_body, 4, 0),
            Parse::Corrupt(Some(_))
        ));
    }

    #[test]
    fn relocated_record_fails_crc() {
        // A record sealed for offset 0 must not validate at another
        // offset of the same epoch: duplicated or misdirected blocks
        // cannot replay a real operation at the wrong point in history
        // (R4).
        let l = layout();
        let mut mem = VecMem::new();
        let rec = encode_record(3, 0, &KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        mem.write(l.wal_body_addr() + 64, &rec);
        assert!(matches!(
            parse_at(&mut mem, l.wal_body_addr(), l.wal_body, 3, 64),
            Parse::Corrupt(Some(_))
        ));
    }

    #[test]
    fn implausible_length_cannot_resync() {
        let l = layout();
        let mut mem = VecMem::new();
        mem.write(l.wal_body_addr(), &u32::MAX.to_le_bytes());
        assert_eq!(
            parse_at(&mut mem, l.wal_body_addr(), l.wal_body, 1, 0),
            Parse::Corrupt(None)
        );
    }

    #[test]
    fn header_roundtrip_and_rejection() {
        let l = layout();
        let mut mem = VecMem::new();
        assert_eq!(WalHeader::load(&mut mem, &l), None, "unformatted");
        WalHeader { seq: 5 }.persist_fresh(&mut mem, &l);
        assert_eq!(WalHeader::load(&mut mem, &l), Some(WalHeader { seq: 5 }));
        assert_eq!(
            parse_at(&mut mem, l.wal_body_addr(), l.wal_body, 5, 0),
            Parse::End,
            "fresh segment replays empty"
        );
        let mut one = [0u8; 1];
        mem.read(l.wal_addr() + 13, &mut one);
        one[0] ^= 0x01;
        mem.write(l.wal_addr() + 13, &one);
        assert_eq!(WalHeader::load(&mut mem, &l), None, "seq bit flip detected");
    }
}
