//! A recoverable key-value store on the secure persistent-memory
//! machine: checksummed write-ahead log, rotating validated snapshots,
//! and hardened recovery, with differential crash torture as the
//! correctness oracle.
//!
//! The paper's transparency claim is memory-level: SuperMem encrypts
//! and integrity-protects whatever the application persists. This
//! crate is the application — a storage engine whose own durability
//! protocol must compose with the secure machine's crash semantics.
//! Layout on NVM (all addresses through [`KvLayout`]):
//!
//! ```text
//! [ manifest | WAL header | WAL body ............ | snap slot 0 | snap slot 1 ]
//! ```
//!
//! * **WAL** ([`wal`]): length-prefixed records, each carrying a CRC32
//!   mixed with the segment's epoch sequence so a stale epoch's bytes
//!   never replay; a record and its zero terminator persist in one
//!   flush, so the log tail is always parseable or detectably torn.
//! * **Snapshots** ([`snapshot`]): two slots written alternately,
//!   payload before header, header CRC last — a slot is either wholly
//!   valid or rejected, and discovery falls back to the older slot.
//! * **Recovery** ([`recovery`]): read-only reconstruction — newest
//!   valid snapshot, then WAL replay from the snapshot's offset, with
//!   bounded corrupt-entry skipping and torn-tail truncation, all
//!   reported in a typed [`RecoveryResult`].
//! * **Invariants** ([`invariants`]): R1–R6 (deterministic,
//!   idempotent, prefix-consistent, never invents, never silently
//!   drops, bounded degradation) as executable checks.
//! * **Torture** ([`torture`]): crashes armed at every write-queue
//!   append — every WAL append, snapshot write, and manifest flip —
//!   crossed with the media fault classes, recovered, and judged
//!   against the [`oracle`] of acknowledged operations. The campaign
//!   passes only with zero silent-corruption cases.
//! * **Workload** ([`workload`]): the store behind the unified
//!   `Workload` trait, driven by the serving engine's Zipfian traffic.
//!
//! [`RecoveryResult`]: crate::recovery::RecoveryResult

#![warn(missing_docs)]

pub mod crc32;
pub mod invariants;
pub mod layout;
pub mod oracle;
pub mod recovery;
pub mod snapshot;
pub mod store;
pub mod torture;
pub mod wal;
pub mod workload;

pub use crc32::{crc32, Crc32};
pub use layout::{KvLayout, LayoutError};
pub use oracle::{op_stream, Legality, ShadowOracle};
pub use recovery::{recover, Recovered, RecoveryError, RecoveryOptions, RecoveryResult};
pub use store::{KvError, KvStats, KvStore};
pub use torture::{
    kv_crash_points, kv_run_case, kv_run_torture, kv_shrink_point, KvCaseResult, KvClassification,
    KvTortureCase, KvTortureConfig, KvTortureReport,
};
pub use wal::KvOp;
pub use workload::KvWorkload;
