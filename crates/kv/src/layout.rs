//! On-media layout of one KV store instance: manifest line, WAL
//! segment, and snapshot slots, carved from a contiguous region of the
//! secure machine's physical address space.
//!
//! ```text
//! base ──► ┌────────────────────────┐
//!          │ manifest (64 B line)   │  checkpoint pointer, CRC-sealed
//!          ├────────────────────────┤
//!          │ WAL segment            │  32 B header + record body
//!          ├────────────────────────┤
//!          │ snapshot slot 0        │  64 B header + payload
//!          ├────────────────────────┤
//!          │ snapshot slot 1        │
//!          └────────────────────────┘
//! ```
//!
//! Every structure is independently validated on recovery; the manifest
//! is only a *hint* (the flip is a crash point, not a single point of
//! failure — discovery re-validates both slots regardless).

use supermem_persist::PMem;

use crate::crc32::crc32;

/// Bytes reserved for the manifest (one cache line).
pub const MANIFEST_LEN: u64 = 64;
/// Bytes of the WAL segment header.
pub const WAL_HEADER_LEN: u64 = 32;
/// Bytes of a snapshot slot header.
pub const SNAP_HEADER_LEN: u64 = 64;
/// Number of snapshot slots (alternating generations).
pub const SNAP_SLOTS: u64 = 2;

/// Maximum key length in bytes.
pub const MAX_KEY: usize = 64;
/// Maximum value length in bytes.
pub const MAX_VAL: usize = 256;

/// Manifest magic ("SKVMANI1").
pub const MANIFEST_MAGIC: u64 = u64::from_le_bytes(*b"SKVMANI1");
/// WAL segment magic ("SKVWAL01").
pub const WAL_MAGIC: u64 = u64::from_le_bytes(*b"SKVWAL01");
/// Snapshot slot magic ("SKVSNAP1").
pub const SNAP_MAGIC: u64 = u64::from_le_bytes(*b"SKVSNAP1");
/// Format version stamped into every header.
pub const FORMAT_VERSION: u32 = 1;

/// A rejected layout (region too small for even one record or one
/// snapshot of the configured working set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutError(pub String);

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid KV layout: {}", self.0)
    }
}

impl std::error::Error for LayoutError {}

/// Where one store instance lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvLayout {
    /// First byte of the region (must be 64-byte aligned).
    pub base: u64,
    /// Bytes of WAL record body (excludes the 32 B segment header).
    pub wal_body: u64,
    /// Bytes per snapshot slot (includes the 64 B slot header).
    pub snap_cap: u64,
}

impl KvLayout {
    /// Validates and builds a layout.
    ///
    /// # Errors
    ///
    /// [`LayoutError`] when `base` is unaligned, the WAL body cannot
    /// hold one maximum-size record plus a terminator, or a snapshot
    /// slot cannot hold its header plus one maximum-size entry.
    pub fn new(base: u64, wal_body: u64, snap_cap: u64) -> Result<Self, LayoutError> {
        if !base.is_multiple_of(64) {
            return Err(LayoutError(format!("base {base:#x} not 64-byte aligned")));
        }
        let min_wal = crate::wal::MAX_RECORD_LEN as u64 + 12;
        if wal_body < min_wal {
            return Err(LayoutError(format!(
                "WAL body {wal_body} B below minimum {min_wal} B (one max record + terminator)"
            )));
        }
        let min_snap = SNAP_HEADER_LEN + 8 + MAX_KEY as u64 + MAX_VAL as u64;
        if snap_cap < min_snap {
            return Err(LayoutError(format!(
                "snapshot slot {snap_cap} B below minimum {min_snap} B"
            )));
        }
        Ok(Self {
            base,
            wal_body,
            snap_cap,
        })
    }

    /// Address of the manifest line.
    pub fn manifest_addr(&self) -> u64 {
        self.base
    }

    /// Address of the WAL segment header.
    pub fn wal_addr(&self) -> u64 {
        self.base + MANIFEST_LEN
    }

    /// Address of the first WAL record byte.
    pub fn wal_body_addr(&self) -> u64 {
        self.wal_addr() + WAL_HEADER_LEN
    }

    /// Address of snapshot slot `i` (`i < SNAP_SLOTS`).
    pub fn slot_addr(&self, i: u64) -> u64 {
        self.wal_body_addr() + self.wal_body + i * self.snap_cap
    }

    /// Total bytes the layout occupies from `base`.
    pub fn total_len(&self) -> u64 {
        MANIFEST_LEN + WAL_HEADER_LEN + self.wal_body + SNAP_SLOTS * self.snap_cap
    }

    /// Payload capacity of one snapshot slot.
    pub fn snap_payload_cap(&self) -> u64 {
        self.snap_cap - SNAP_HEADER_LEN
    }
}

/// The manifest: which snapshot slot is active and the checkpoint
/// sequence that made it so. One 28-byte record inside one cache line,
/// rewritten whole at every checkpoint-pointer flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Manifest {
    /// Active snapshot slot (0 or 1).
    pub active_slot: u32,
    /// Checkpoint sequence number the flip published.
    pub seq: u64,
}

impl Manifest {
    const LEN: usize = 28;

    /// Serializes the manifest (magic, version, slot, seq, CRC).
    pub fn encode(&self) -> [u8; Self::LEN] {
        let mut b = [0u8; Self::LEN];
        b[0..8].copy_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        b[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        b[12..16].copy_from_slice(&self.active_slot.to_le_bytes());
        b[16..24].copy_from_slice(&self.seq.to_le_bytes());
        let crc = crc32(&b[0..24]);
        b[24..28].copy_from_slice(&crc.to_le_bytes());
        b
    }

    /// Writes and persists the manifest (the checkpoint-pointer flip).
    pub fn persist<M: PMem>(&self, mem: &mut M, layout: &KvLayout) {
        mem.persist(layout.manifest_addr(), &self.encode());
    }

    /// Reads and validates the manifest. `None` means the line is
    /// unreadable or mid-flip garbage — recovery then falls back to
    /// full slot discovery.
    pub fn load<M: PMem>(mem: &mut M, layout: &KvLayout) -> Option<Self> {
        let mut b = [0u8; Self::LEN];
        mem.read(layout.manifest_addr(), &mut b);
        let magic = u64::from_le_bytes(read8(&b, 0)?);
        let version = u32::from_le_bytes(read4(&b, 8)?);
        let active_slot = u32::from_le_bytes(read4(&b, 12)?);
        let seq = u64::from_le_bytes(read8(&b, 16)?);
        let crc = u32::from_le_bytes(read4(&b, 24)?);
        if magic != MANIFEST_MAGIC
            || version != FORMAT_VERSION
            || u64::from(active_slot) >= SNAP_SLOTS
            || crc != crc32(&b[0..24])
        {
            return None;
        }
        Some(Self { active_slot, seq })
    }
}

/// Fallible fixed-size slice read (avoids `try_into().unwrap()` under
/// the crate's no-panic policy).
pub(crate) fn read8(b: &[u8], at: usize) -> Option<[u8; 8]> {
    let s = b.get(at..at + 8)?;
    let mut out = [0u8; 8];
    out.copy_from_slice(s);
    Some(out)
}

/// Fallible 4-byte slice read.
pub(crate) fn read4(b: &[u8], at: usize) -> Option<[u8; 4]> {
    let s = b.get(at..at + 4)?;
    let mut out = [0u8; 4];
    out.copy_from_slice(s);
    Some(out)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    #[test]
    fn layout_rejects_degenerate_regions() {
        assert!(KvLayout::new(0x1001, 4096, 4096).is_err(), "unaligned");
        assert!(KvLayout::new(0x1000, 16, 4096).is_err(), "wal too small");
        assert!(KvLayout::new(0x1000, 4096, 64).is_err(), "slot too small");
        let l = KvLayout::new(0x1000, 4096, 4096).unwrap();
        assert_eq!(l.wal_addr(), 0x1000 + 64);
        assert_eq!(l.wal_body_addr(), 0x1000 + 96);
        assert_eq!(l.slot_addr(1), l.slot_addr(0) + 4096);
        assert_eq!(l.total_len(), 64 + 32 + 4096 + 2 * 4096);
    }

    #[test]
    fn manifest_roundtrip_and_corruption_detection() {
        let l = KvLayout::new(0x1000, 4096, 4096).unwrap();
        let mut mem = VecMem::new();
        let m = Manifest {
            active_slot: 1,
            seq: 7,
        };
        m.persist(&mut mem, &l);
        assert_eq!(Manifest::load(&mut mem, &l), Some(m));

        // Any single corrupted byte must invalidate the line.
        for at in 0..28u64 {
            let mut dirty = mem.clone();
            let mut one = [0u8; 1];
            dirty.read(l.manifest_addr() + at, &mut one);
            one[0] ^= 0x40;
            dirty.write(l.manifest_addr() + at, &one);
            assert_eq!(Manifest::load(&mut dirty, &l), None, "byte {at}");
        }
    }
}
