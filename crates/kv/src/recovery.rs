//! Hardened recovery: snapshot discovery, WAL replay-from-offset,
//! bounded corrupt-entry skip, torn-tail truncation, and a typed
//! report of everything that happened.
//!
//! Recovery is **read-only**: it reconstructs the volatile index from
//! the image without writing a byte, so running it twice from the same
//! image is trivially a no-op (invariant R2) and two runs must agree
//! bit for bit (R1 — enforced at runtime by
//! [`RecoveryOptions::paranoid`], which recovers twice and compares).
//! The one mutation recovery can *schedule* — re-sealing a WAL header
//! torn mid-rotation — is deferred to the resumed store's first
//! mutation.
//!
//! Failure taxonomy: damage that loses no acknowledged data is
//! *handled* (snapshot fallback, torn-tail truncation — both reported
//! in [`RecoveryResult`]); damage that loses acknowledged data but is
//! bounded is *counted* ([`RecoveryResult::corrupt_entries_skipped`]);
//! anything beyond the bound, or structural (no valid snapshot, dead
//! WAL epoch), is a typed [`RecoveryError`]. Nothing in this module
//! panics on any byte pattern the media can produce.

use std::collections::BTreeMap;

use supermem_persist::PMem;

use crate::crc32::crc32;
use crate::layout::{KvLayout, Manifest};
use crate::snapshot::{discover, encode_payload};
use crate::store::KvStore;
use crate::wal::{parse_at, Parse, WalHeader};

/// Recovery policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryOptions {
    /// Maximum mid-log corrupt records to skip before recovery refuses
    /// with [`RecoveryError::CorruptionLimitExceeded`]. `0` disables
    /// skipping entirely (the first rescuable corrupt record already
    /// fails typed).
    pub max_corrupt_entries: u32,
    /// Mutations between automatic light checkpoints in the resumed
    /// store (passed through to [`KvStore`]).
    pub snapshot_every: u64,
    /// Run recovery twice and require bit-identical results — the R1
    /// determinism invariant enforced at runtime rather than assumed.
    pub paranoid: bool,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        Self {
            max_corrupt_entries: 3,
            snapshot_every: 0,
            paranoid: false,
        }
    }
}

/// Why recovery refused. Every variant is a detected, reportable
/// condition — the typed alternative to silently serving wrong data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryError {
    /// No snapshot slot validated (including the genesis snapshot), so
    /// there is no floor to rebuild from.
    NoValidSnapshot {
        /// Slots that failed validation.
        rejected: u32,
    },
    /// The WAL segment header is unreadable and the chosen snapshot
    /// expects records past its start — the suffix is unreachable.
    WalHeaderCorrupt {
        /// The replay offset the snapshot recorded.
        snapshot_wal_off: u64,
    },
    /// The WAL was rotated past the newest surviving snapshot: the
    /// records that superseded it are gone with their epoch.
    EpochMismatch {
        /// Epoch found in the segment header.
        wal_seq: u64,
        /// Epoch the surviving snapshot expects.
        snapshot_wal_seq: u64,
    },
    /// More corrupt records than the configured bound.
    CorruptionLimitExceeded {
        /// The configured [`RecoveryOptions::max_corrupt_entries`].
        limit: u32,
        /// Body offset of the record that broke the bound.
        offset: u64,
    },
    /// Internal consistency check failed (e.g. the paranoid double-run
    /// disagreed with itself, or the header epoch ran *behind* every
    /// snapshot by more than one rotation).
    Inconsistent(String),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::NoValidSnapshot { rejected } => {
                write!(f, "no valid snapshot ({rejected} slot(s) rejected)")
            }
            RecoveryError::WalHeaderCorrupt { snapshot_wal_off } => write!(
                f,
                "WAL header unreadable with {snapshot_wal_off} B of log the snapshot depends on"
            ),
            RecoveryError::EpochMismatch {
                wal_seq,
                snapshot_wal_seq,
            } => write!(
                f,
                "WAL epoch {wal_seq} has rotated past the surviving snapshot's epoch {snapshot_wal_seq}"
            ),
            RecoveryError::CorruptionLimitExceeded { limit, offset } => write!(
                f,
                "more than {limit} corrupt record(s); gave up at body offset {offset}"
            ),
            RecoveryError::Inconsistent(s) => write!(f, "inconsistent recovery: {s}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Everything one recovery pass observed and decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryResult {
    /// Slot the winning snapshot was loaded from.
    pub snapshot_slot: u32,
    /// Its checkpoint sequence.
    pub snapshot_seq: u64,
    /// Snapshot slots rejected by validation (0 = pristine).
    pub snapshots_rejected: u32,
    /// Whether the manifest line validated (it is only a hint; a torn
    /// flip costs nothing but this flag).
    pub manifest_ok: bool,
    /// Whether the WAL segment header validated.
    pub wal_header_ok: bool,
    /// WAL epoch replay ran against.
    pub wal_seq: u64,
    /// Records replayed from the WAL suffix.
    pub records_replayed: u64,
    /// Corrupt mid-log records skipped (each one is lost acknowledged
    /// data, surfaced here rather than hidden).
    pub corrupt_entries_skipped: u32,
    /// Body offset where a torn tail was truncated, if one was.
    pub torn_tail_at: Option<u64>,
    /// Body offset appends resume from.
    pub resume_offset: u64,
    /// Live entries after recovery.
    pub entries: u64,
    /// CRC-32 digest of the canonical recovered state.
    pub state_digest: u32,
}

impl RecoveryResult {
    /// True when recovery saw *any* damage signal: rejected snapshots,
    /// an unreadable manifest or WAL header, or skipped records. A torn
    /// tail alone is not damage — it is the expected shape of an
    /// in-flight operation cut by the crash.
    pub fn damaged(&self) -> bool {
        self.snapshots_rejected > 0
            || !self.manifest_ok
            || !self.wal_header_ok
            || self.corrupt_entries_skipped > 0
    }
}

/// A recovered store plus the report that justifies it.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The resumed store (volatile index rebuilt, append cursor set).
    pub store: KvStore,
    /// What recovery observed.
    pub result: RecoveryResult,
}

/// Recovers a store from `mem`.
///
/// # Errors
///
/// Typed [`RecoveryError`] per the module-level taxonomy; never
/// panics.
pub fn recover<M: PMem>(
    mem: &mut M,
    layout: KvLayout,
    opts: &RecoveryOptions,
) -> Result<Recovered, RecoveryError> {
    let (map, result, reinit) = recover_once(mem, layout, opts)?;
    if opts.paranoid {
        let (map2, result2, _) = recover_once(mem, layout, opts)?;
        if map != map2 || result != result2 {
            return Err(RecoveryError::Inconsistent(format!(
                "two recovery passes disagree: digests {:#x} vs {:#x}",
                result.state_digest, result2.state_digest
            )));
        }
    }
    let store = KvStore::resume(
        layout,
        map,
        result.wal_seq,
        result.resume_offset,
        result.snapshot_seq,
        result.snapshot_slot,
        opts.snapshot_every,
        reinit,
    );
    Ok(Recovered { store, result })
}

/// What one pass reconstructs: the state, the report, and whether the
/// WAL header needs re-sealing on the first mutation.
type PassOutcome = (BTreeMap<Vec<u8>, Vec<u8>>, RecoveryResult, bool);

/// One read-only recovery pass.
fn recover_once<M: PMem>(
    mem: &mut M,
    layout: KvLayout,
    opts: &RecoveryOptions,
) -> Result<PassOutcome, RecoveryError> {
    let manifest = Manifest::load(mem, &layout);
    let (best, rejected) = discover(mem, &layout);
    let Some(snap) = best else {
        return Err(RecoveryError::NoValidSnapshot { rejected });
    };
    // The manifest is a hint; it counts as healthy only when it agrees
    // with what validation actually found.
    let manifest_ok = manifest.is_some_and(|m| m.seq == snap.seq && m.active_slot == snap.slot);

    let header = WalHeader::load(mem, &layout);
    let mut map = snap.map;
    let mut replayed = 0u64;
    let mut skipped = 0u32;
    let mut torn_tail_at = None;
    let resume_offset;
    let mut needs_reinit = false;
    let wal_header_ok = header.is_some();

    match header {
        None => {
            if snap.wal_off > 0 {
                return Err(RecoveryError::WalHeaderCorrupt {
                    snapshot_wal_off: snap.wal_off,
                });
            }
            // A rotation's header persist was cut after the manifest
            // flip: the snapshot is complete and the (empty) new epoch
            // lost nothing. Re-seal the header on the first mutation.
            needs_reinit = true;
            resume_offset = 0;
        }
        Some(h) if h.seq == snap.wal_seq => {
            // The common case: replay the suffix from the snapshot's
            // offset.
            let body = layout.wal_body_addr();
            let cap = layout.wal_body;
            let mut off = snap.wal_off;
            loop {
                match parse_at(mem, body, cap, h.seq, off) {
                    Parse::End => {
                        resume_offset = off;
                        break;
                    }
                    Parse::Record(op, next) => {
                        op.apply(&mut map);
                        replayed += 1;
                        off = next;
                    }
                    Parse::Corrupt(candidate) => {
                        // Skip only rescues *later* records: resync is
                        // attempted exactly when the length word was
                        // plausible and more log follows — another
                        // record (valid, or itself corrupt but
                        // length-framed, letting a run of damaged
                        // records chain through the bounded skip). A
                        // probe hitting the zeroed tail is a torn
                        // append, not mid-log damage.
                        let rescue = candidate.filter(|&next| {
                            matches!(
                                parse_at(mem, body, cap, h.seq, next),
                                Parse::Record(..) | Parse::Corrupt(Some(_))
                            )
                        });
                        if let Some(next) = rescue {
                            skipped += 1;
                            if skipped > opts.max_corrupt_entries {
                                return Err(RecoveryError::CorruptionLimitExceeded {
                                    limit: opts.max_corrupt_entries,
                                    offset: off,
                                });
                            }
                            off = next;
                        } else {
                            // Torn tail: truncate at the first bad
                            // record and resume appends over it.
                            torn_tail_at = Some(off);
                            resume_offset = off;
                            break;
                        }
                    }
                }
            }
        }
        Some(h) if h.seq + 1 == snap.wal_seq => {
            // Crash between the rotating checkpoint's manifest flip and
            // its header persist: the snapshot supersedes every record
            // of the old epoch still in the body.
            needs_reinit = true;
            resume_offset = 0;
        }
        Some(h) if h.seq > snap.wal_seq => {
            return Err(RecoveryError::EpochMismatch {
                wal_seq: h.seq,
                snapshot_wal_seq: snap.wal_seq,
            });
        }
        Some(h) => {
            return Err(RecoveryError::Inconsistent(format!(
                "WAL epoch {} trails the surviving snapshot's epoch {} by more than one rotation",
                h.seq, snap.wal_seq
            )));
        }
    }

    let result = RecoveryResult {
        snapshot_slot: snap.slot,
        snapshot_seq: snap.seq,
        snapshots_rejected: rejected,
        manifest_ok,
        wal_header_ok,
        wal_seq: snap.wal_seq,
        records_replayed: replayed,
        corrupt_entries_skipped: skipped,
        torn_tail_at,
        resume_offset,
        entries: map.len() as u64,
        state_digest: crc32(&encode_payload(&map)),
    };
    Ok((map, result, needs_reinit))
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    fn layout() -> KvLayout {
        KvLayout::new(0x1000, 4096, 4096).unwrap()
    }

    fn opts() -> RecoveryOptions {
        RecoveryOptions {
            paranoid: true,
            ..RecoveryOptions::default()
        }
    }

    #[test]
    fn empty_store_recovers_empty() {
        let mut mem = VecMem::new();
        KvStore::format(&mut mem, layout(), 0).unwrap();
        let rec = recover(&mut mem, layout(), &opts()).unwrap();
        assert!(rec.store.is_empty());
        assert_eq!(rec.result.records_replayed, 0);
        assert!(!rec.result.damaged());
    }

    #[test]
    fn replay_rebuilds_every_acknowledged_op() {
        let mut mem = VecMem::new();
        let mut kv = KvStore::format(&mut mem, layout(), 0).unwrap();
        for i in 0u64..20 {
            kv.put(&mut mem, &i.to_le_bytes(), &[i as u8; 8]).unwrap();
        }
        kv.delete(&mut mem, &3u64.to_le_bytes()).unwrap();
        let rec = recover(&mut mem, layout(), &opts()).unwrap();
        assert_eq!(rec.store.entries(), kv.entries());
        assert_eq!(rec.result.records_replayed, 21);
        assert_eq!(rec.result.state_digest, kv.state_digest());
        assert!(!rec.result.damaged());
    }

    #[test]
    fn replay_from_offset_after_light_checkpoint() {
        let mut mem = VecMem::new();
        let mut kv = KvStore::format(&mut mem, layout(), 0).unwrap();
        for i in 0u64..6 {
            kv.put(&mut mem, &i.to_le_bytes(), b"pre").unwrap();
        }
        kv.checkpoint(&mut mem).unwrap();
        let off = kv.wal_offset();
        for i in 0u64..4 {
            kv.put(&mut mem, &i.to_le_bytes(), b"post").unwrap();
        }
        let rec = recover(&mut mem, layout(), &opts()).unwrap();
        // Only the post-checkpoint suffix replays.
        assert_eq!(rec.result.records_replayed, 4);
        assert!(rec.result.resume_offset > off);
        assert_eq!(rec.store.entries(), kv.entries());
    }

    #[test]
    fn recovered_store_keeps_serving_and_recovers_again() {
        let mut mem = VecMem::new();
        let mut kv = KvStore::format(&mut mem, layout(), 2).unwrap();
        for i in 0u64..7 {
            kv.put(&mut mem, &i.to_le_bytes(), b"first").unwrap();
        }
        let mut rec = recover(&mut mem, layout(), &opts()).unwrap();
        rec.store.put(&mut mem, b"after", b"resume").unwrap();
        let again = recover(&mut mem, layout(), &opts()).unwrap();
        assert_eq!(again.store.entries(), rec.store.entries());
        assert_eq!(again.store.get(b"after"), Some(&b"resume"[..]));
    }

    #[test]
    fn unformatted_region_fails_typed() {
        // Pristine memory: both slots vacant, none "rejected".
        let mut mem = VecMem::new();
        let err = recover(&mut mem, layout(), &opts()).unwrap_err();
        assert!(
            matches!(err, RecoveryError::NoValidSnapshot { rejected: 0 }),
            "{err}"
        );
        // Garbage in both slot headers: written-and-damaged, so both
        // count as rejected.
        let l = layout();
        for slot in 0..2u64 {
            mem.write(l.slot_addr(slot), &[0x5A; 64]);
        }
        let err = recover(&mut mem, l, &opts()).unwrap_err();
        assert!(
            matches!(err, RecoveryError::NoValidSnapshot { rejected: 2 }),
            "{err}"
        );
    }

    #[test]
    fn corruption_limit_is_enforced() {
        let mut mem = VecMem::new();
        let mut kv = KvStore::format(&mut mem, layout(), 0).unwrap();
        for i in 0u64..8 {
            kv.put(&mut mem, &i.to_le_bytes(), &[7u8; 16]).unwrap();
        }
        // Corrupt one payload byte of five consecutive records (the
        // length words stay intact, so each is a skip candidate).
        let body = layout().wal_body_addr();
        let rec_len = crate::wal::record_len(&crate::wal::KvOp::Put(
            0u64.to_le_bytes().to_vec(),
            vec![7u8; 16],
        ));
        for i in 0..5u64 {
            let addr = body + i * rec_len + 6;
            let mut b = [0u8; 1];
            mem.read(addr, &mut b);
            b[0] ^= 0xFF;
            mem.write(addr, &b);
        }
        let err = recover(&mut mem, layout(), &opts()).unwrap_err();
        assert!(
            matches!(err, RecoveryError::CorruptionLimitExceeded { limit: 3, .. }),
            "{err}"
        );
        // A looser bound tolerates and counts them.
        let loose = RecoveryOptions {
            max_corrupt_entries: 8,
            ..opts()
        };
        let rec = recover(&mut mem, layout(), &loose).unwrap();
        assert_eq!(rec.result.corrupt_entries_skipped, 5);
        assert!(rec.result.damaged());
        assert_eq!(rec.result.records_replayed, 3);
    }

    #[test]
    fn torn_tail_is_truncated_and_resumed_over() {
        let mut mem = VecMem::new();
        let mut kv = KvStore::format(&mut mem, layout(), 0).unwrap();
        for i in 0u64..4 {
            kv.put(&mut mem, &i.to_le_bytes(), b"whole").unwrap();
        }
        // Simulate a torn final append: valid length word, half-written
        // payload, no terminator rewrite needed (it was never written).
        let tail = kv.wal_offset();
        let body = layout().wal_body_addr();
        mem.write(body + tail, &40u32.to_le_bytes());
        mem.write(body + tail + 4, &[0xAA; 20]);
        let rec = recover(&mut mem, layout(), &opts()).unwrap();
        assert_eq!(rec.result.torn_tail_at, Some(tail));
        assert_eq!(rec.result.resume_offset, tail);
        assert_eq!(rec.result.records_replayed, 4);
        // The resumed store appends right over the torn bytes.
        let mut store = rec.store;
        store.put(&mut mem, b"new", b"life").unwrap();
        let rec2 = recover(&mut mem, layout(), &opts()).unwrap();
        assert_eq!(rec2.store.get(b"new"), Some(&b"life"[..]));
        assert_eq!(rec2.result.torn_tail_at, None);
    }
}
