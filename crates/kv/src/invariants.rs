//! The R1–R6 recovery invariants, enforced as executable checks.
//!
//! | # | Invariant | Enforced by |
//! |---|-----------|-------------|
//! | R1 | **Deterministic**: the same image recovers to the same state, bit for bit | [`r1_deterministic`]; [`RecoveryOptions::paranoid`] runs it inside every recovery |
//! | R2 | **Idempotent**: recovering an already-recovered image is a no-op | [`r2_idempotent`] (recovery is read-only by construction; this check proves it) |
//! | R3 | **Prefix-consistent**: the recovered state is some prefix of the acknowledged history | [`r3_prefix_consistent`] |
//! | R4 | **Never invents data**: every recovered value was written by some acknowledged put | [`r4_no_invented_data`] |
//! | R5 | **Never drops acknowledged data silently**: an undamaged recovery reflects every acknowledged op | [`r5_no_silent_drop`] |
//! | R6 | **Bounded degradation**: corrupt-entry skipping stays within the typed limit | [`r6_bounded_skip`] |
//!
//! The torture campaign ([`crate::torture`]) and the property tests in
//! `tests/kv_properties.rs` call these directly; a violation is a
//! `String` describing the breach, never a panic.

use std::collections::BTreeMap;

use supermem_persist::PMem;

use crate::oracle::{Legality, ShadowOracle};
use crate::recovery::{recover, RecoveryOptions, RecoveryResult};
use crate::wal::KvOp;
use crate::KvLayout;

/// R1: two independent recovery passes over the same image must agree
/// exactly (state, report, everything).
///
/// # Errors
///
/// Describes the first divergence, or a recovery refusal (refusing
/// *consistently* is not a violation — both passes must refuse alike).
pub fn r1_deterministic<M: PMem>(
    mem: &mut M,
    layout: KvLayout,
    opts: &RecoveryOptions,
) -> Result<(), String> {
    let a = recover(mem, layout, opts);
    let b = recover(mem, layout, opts);
    match (&a, &b) {
        (Ok(ra), Ok(rb)) => {
            if ra.result != rb.result {
                return Err(format!(
                    "R1 violated: reports differ ({:?} vs {:?})",
                    ra.result, rb.result
                ));
            }
            if ra.store.entries() != rb.store.entries() {
                return Err("R1 violated: recovered states differ".into());
            }
            Ok(())
        }
        (Err(ea), Err(eb)) if ea == eb => Ok(()),
        _ => Err(format!(
            "R1 violated: one pass succeeded where the other refused ({a:?} vs {b:?})"
        )),
    }
}

/// R2: recovery does not change the image, so a second recovery is a
/// no-op — same state, same report, and in particular the second pass
/// replays exactly what the first did.
///
/// # Errors
///
/// Describes the divergence between the first and second recovery.
pub fn r2_idempotent<M: PMem>(
    mem: &mut M,
    layout: KvLayout,
    opts: &RecoveryOptions,
) -> Result<(), String> {
    let first = recover(mem, layout, opts).map(|r| (r.store.entries().clone(), r.result));
    let second = recover(mem, layout, opts).map(|r| (r.store.entries().clone(), r.result));
    if first == second {
        Ok(())
    } else {
        Err(format!(
            "R2 violated: second recovery diverged ({first:?} vs {second:?})"
        ))
    }
}

/// R3: the recovered state equals the oracle state after some legal
/// prefix of the history at crash point `point`. Returns the legality
/// verdict on success.
///
/// # Errors
///
/// Describes the breach when the state matches no legal prefix.
pub fn r3_prefix_consistent(
    oracle: &ShadowOracle,
    point: u64,
    recovered: &BTreeMap<Vec<u8>, Vec<u8>>,
) -> Result<Legality, String> {
    match oracle.legal_at(point, recovered) {
        Legality::Illegal => Err(format!(
            "R3 violated: recovered state ({} entries) matches no acknowledged prefix at crash point {point} ({} acked of {} ops)",
            recovered.len(),
            oracle.acked_before(point),
            oracle.len(),
        )),
        ok => Ok(ok),
    }
}

/// R4: recovery never invents data — every recovered pair was written
/// by some acknowledged put.
///
/// # Errors
///
/// Names the first alien key.
pub fn r4_no_invented_data(
    oracle: &ShadowOracle,
    recovered: &BTreeMap<Vec<u8>, Vec<u8>>,
) -> Result<(), String> {
    for (k, v) in recovered {
        let written = oracle
            .ops()
            .iter()
            .any(|op| matches!(op, KvOp::Put(pk, pv) if pk == k && pv == v));
        if !written {
            return Err(format!(
                "R4 violated: recovered pair {k:02x?} => {v:02x?} was never written"
            ));
        }
    }
    Ok(())
}

/// R5: acknowledged data is never dropped *silently* — if the report
/// claims an undamaged recovery ([`RecoveryResult::damaged`] false and
/// no torn tail cutting acknowledged records), every acknowledged
/// operation must be reflected.
///
/// # Errors
///
/// Describes the silently dropped suffix.
pub fn r5_no_silent_drop(
    oracle: &ShadowOracle,
    point: u64,
    recovered: &BTreeMap<Vec<u8>, Vec<u8>>,
    result: &RecoveryResult,
) -> Result<(), String> {
    if result.damaged() {
        return Ok(()); // damage is reported, not silent
    }
    let acked = oracle.acked_before(point);
    for n in acked..=oracle.len() {
        if &oracle.state_after(n) == recovered {
            return Ok(());
        }
    }
    Err(format!(
        "R5 violated: an allegedly undamaged recovery dropped acknowledged data \
         (state matches no prefix >= {acked} acked ops)"
    ))
}

/// R6: degradation is bounded — skipped corrupt entries never exceed
/// the configured limit (beyond it recovery must have refused with a
/// typed error instead of returning).
///
/// # Errors
///
/// Describes the breach of the bound.
pub fn r6_bounded_skip(result: &RecoveryResult, opts: &RecoveryOptions) -> Result<(), String> {
    if result.corrupt_entries_skipped <= opts.max_corrupt_entries {
        Ok(())
    } else {
        Err(format!(
            "R6 violated: {} entries skipped, limit {}",
            result.corrupt_entries_skipped, opts.max_corrupt_entries
        ))
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use crate::KvStore;
    use supermem_persist::VecMem;

    #[test]
    fn clean_image_passes_every_machine_checkable_invariant() {
        let layout = KvLayout::new(0x1000, 4096, 4096).unwrap();
        let mut mem = VecMem::new();
        let mut kv = KvStore::format(&mut mem, layout, 3).unwrap();
        let mut oracle = ShadowOracle::new();
        for (i, op) in crate::oracle::op_stream(5, 12, 6, 16)
            .into_iter()
            .enumerate()
        {
            match &op {
                KvOp::Put(k, v) => kv.put(&mut mem, k, v).unwrap(),
                KvOp::Del(k) => kv.delete(&mut mem, k).unwrap(),
            }
            oracle.record(op, (i + 1) as u64); // synthetic ack counts
        }
        let opts = RecoveryOptions::default();
        r1_deterministic(&mut mem, layout, &opts).unwrap();
        r2_idempotent(&mut mem, layout, &opts).unwrap();
        let rec = recover(&mut mem, layout, &opts).unwrap();
        let verdict = r3_prefix_consistent(&oracle, u64::MAX, rec.store.entries()).unwrap();
        assert_eq!(verdict, Legality::Committed);
        r4_no_invented_data(&oracle, rec.store.entries()).unwrap();
        r5_no_silent_drop(&oracle, u64::MAX, rec.store.entries(), &rec.result).unwrap();
        r6_bounded_skip(&rec.result, &opts).unwrap();
    }

    #[test]
    fn invented_and_dropped_data_are_caught() {
        let mut oracle = ShadowOracle::new();
        oracle.record(KvOp::Put(b"a".to_vec(), b"1".to_vec()), 1);
        oracle.record(KvOp::Put(b"b".to_vec(), b"2".to_vec()), 2);

        let mut alien = oracle.state_after(2);
        alien.insert(b"ghost".to_vec(), b"!".to_vec());
        assert!(r4_no_invented_data(&oracle, &alien).is_err());
        assert!(r3_prefix_consistent(&oracle, 2, &alien).is_err());

        let dropped = oracle.state_after(1); // acked "b" missing
        let clean_result = RecoveryResult {
            snapshot_slot: 0,
            snapshot_seq: 1,
            snapshots_rejected: 0,
            manifest_ok: true,
            wal_header_ok: true,
            wal_seq: 1,
            records_replayed: 1,
            corrupt_entries_skipped: 0,
            torn_tail_at: None,
            resume_offset: 0,
            entries: 1,
            state_digest: 0,
        };
        assert!(r5_no_silent_drop(&oracle, 2, &dropped, &clean_result).is_err());
        let damaged = RecoveryResult {
            snapshots_rejected: 1,
            ..clean_result
        };
        assert!(r5_no_silent_drop(&oracle, 2, &dropped, &damaged).is_ok());
    }
}
