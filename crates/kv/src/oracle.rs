//! The shadow oracle: an in-DRAM record of every acknowledged
//! operation, against which a recovered store is differentially
//! checked.
//!
//! Each acknowledged operation carries the machine-wide write-queue
//! append count observed when its WAL persist returned. A crash armed
//! at append `k` therefore has an exact durability frontier: every
//! operation acknowledged at or below `k` must survive recovery, the
//! one operation in flight across `k` may or may not, and nothing else
//! may appear. [`ShadowOracle::legal_at`] encodes that contract.

use std::collections::BTreeMap;

use supermem_sim::SplitMix64;

use crate::wal::KvOp;

/// How a recovered state relates to the oracle at a crash point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Legality {
    /// Every operation issued before the crash point survived —
    /// including, possibly, the unacknowledged in-flight one.
    Committed,
    /// All acknowledged operations survived; the in-flight tail (and
    /// everything after the crash point) did not. Fine: it was never
    /// acknowledged.
    LostUnackedTail,
    /// Neither: acknowledged data is missing or alien data appeared.
    Illegal,
}

/// The acknowledged-operation history of one run.
#[derive(Debug, Clone, Default)]
pub struct ShadowOracle {
    ops: Vec<KvOp>,
    ack_appends: Vec<u64>,
}

impl ShadowOracle {
    /// An empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an acknowledged operation and the append count at which
    /// its persist completed.
    pub fn record(&mut self, op: KvOp, ack_append: u64) {
        self.ops.push(op);
        self.ack_appends.push(ack_append);
    }

    /// Operations recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[KvOp] {
        &self.ops
    }

    /// State after applying the first `n` operations.
    pub fn state_after(&self, n: usize) -> BTreeMap<Vec<u8>, Vec<u8>> {
        let mut map = BTreeMap::new();
        for op in &self.ops[..n.min(self.ops.len())] {
            op.apply(&mut map);
        }
        map
    }

    /// Number of operations acknowledged at or before append `point`.
    pub fn acked_before(&self, point: u64) -> usize {
        self.ack_appends.iter().filter(|&&a| a <= point).count()
    }

    /// Differential verdict for a recovered state at crash point
    /// `point` (see module docs for the durability frontier).
    pub fn legal_at(&self, point: u64, recovered: &BTreeMap<Vec<u8>, Vec<u8>>) -> Legality {
        let acked = self.acked_before(point);
        // Prefer the larger match: "everything durable" beats "tail
        // lost" when both prefixes produce the same state.
        for n in [(acked + 1).min(self.ops.len()), acked] {
            if &self.state_after(n) == recovered {
                return if n == self.ops.len() {
                    Legality::Committed
                } else {
                    Legality::LostUnackedTail
                };
            }
        }
        Legality::Illegal
    }
}

/// The seeded operation stream the torture campaign and the property
/// tests share: `n` puts/deletes over a `keyspace`-key working set,
/// with values of 1..=`max_val` bytes. Fully determined by `seed`.
pub fn op_stream(seed: u64, n: u64, keyspace: u64, max_val: usize) -> Vec<KvOp> {
    let mut rng = SplitMix64::new(seed ^ 0x6b76_6f70); // "kvop"
    let mut out = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let key = rng.next_below(keyspace.max(1)).to_le_bytes().to_vec();
        if rng.next_below(4) == 0 {
            out.push(KvOp::Del(key));
        } else {
            let vlen = 1 + rng.next_below(max_val.max(1) as u64) as usize;
            let mut val = vec![0u8; vlen];
            rng.fill_bytes(&mut val);
            out.push(KvOp::Put(key, val));
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;

    fn oracle() -> ShadowOracle {
        let mut o = ShadowOracle::new();
        o.record(KvOp::Put(b"a".to_vec(), b"1".to_vec()), 2);
        o.record(KvOp::Put(b"b".to_vec(), b"2".to_vec()), 5);
        o.record(KvOp::Del(b"a".to_vec()), 9);
        o
    }

    #[test]
    fn durability_frontier_counts_acks() {
        let o = oracle();
        assert_eq!(o.acked_before(1), 0);
        assert_eq!(o.acked_before(2), 1);
        assert_eq!(o.acked_before(8), 2);
        assert_eq!(o.acked_before(100), 3);
    }

    #[test]
    fn legality_verdicts() {
        let o = oracle();
        // Crash at append 5: first two ops acked; the delete in flight.
        assert_eq!(o.legal_at(5, &o.state_after(2)), Legality::LostUnackedTail);
        assert_eq!(o.legal_at(5, &o.state_after(3)), Legality::Committed);
        // Missing acked op "b": illegal.
        assert_eq!(o.legal_at(5, &o.state_after(1)), Legality::Illegal);
        // Alien data: illegal.
        let mut alien = o.state_after(2);
        alien.insert(b"zz".to_vec(), b"?".to_vec());
        assert_eq!(o.legal_at(5, &alien), Legality::Illegal);
        // Full run completed cleanly.
        assert_eq!(o.legal_at(9, &o.state_after(3)), Legality::Committed);
    }

    #[test]
    fn op_stream_is_deterministic_and_bounded() {
        let a = op_stream(7, 50, 12, 20);
        let b = op_stream(7, 50, 12, 20);
        assert_eq!(a, b);
        assert_ne!(a, op_stream(8, 50, 12, 20));
        assert!(a.iter().any(|o| matches!(o, KvOp::Del(_))));
        for op in &a {
            if let KvOp::Put(_, v) = op {
                assert!((1..=20).contains(&v.len()));
            }
        }
    }
}
