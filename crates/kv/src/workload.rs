//! The KV store behind the unified [`Workload`] trait, driven by the
//! serving engine's open-loop traffic generator — Zipfian-skewed
//! update/remove/read mixes, one request to completion per `step`.
//!
//! Unlike the paper's micro-benchmarks, this workload owns an
//! application-level recovery protocol, so it overrides
//! [`Workload::recover`]: after a crash, the driver hands it the
//! recovered memory and the workload re-attaches via the checksummed
//! WAL-plus-snapshot path, then `verify` differentially checks the
//! surviving state against the in-DRAM shadow of acknowledged
//! operations.

use std::collections::BTreeMap;

use supermem::persist::{PMem, TxnError};
use supermem::workloads::Workload;
use supermem_serve::{ReqKind, TrafficGen, TrafficSpec};

use crate::recovery::{recover, RecoveryOptions};
use crate::store::{KvError, KvStore};
use crate::KvLayout;

/// The KV store driven single-threaded through the workload trait.
///
/// # Examples
///
/// ```
/// use supermem::persist::VecMem;
/// use supermem::workloads::Workload;
/// use supermem_kv::{KvLayout, KvWorkload};
/// use supermem_serve::TrafficSpec;
///
/// let layout = KvLayout::new(0x1000, 1 << 16, 1 << 16).unwrap();
/// let mut mem = VecMem::new();
/// let mut w: Box<dyn Workload<VecMem>> =
///     Box::new(KvWorkload::new(&mut mem, layout, 64, TrafficSpec::default()).unwrap());
/// for _ in 0..20 {
///     w.step(&mut mem).unwrap();
/// }
/// assert!(w.committed() > 0); // mutations ack; reads don't commit
/// w.verify(&mut mem).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct KvWorkload {
    store: KvStore,
    traffic: TrafficGen,
    shadow: BTreeMap<Vec<u8>, Vec<u8>>,
    reads: u64,
    read_mismatches: u64,
}

/// Spells a Zipfian-drawn key as stored bytes.
fn key_bytes(key: u64) -> [u8; 8] {
    key.to_le_bytes()
}

impl KvWorkload {
    /// Formats a fresh store in `layout` and builds the traffic stream
    /// that will drive it, checkpointing every `snapshot_every`
    /// mutations.
    ///
    /// # Errors
    ///
    /// Propagates [`KvError`] from formatting (an undersized layout).
    pub fn new<M: PMem>(
        mem: &mut M,
        layout: KvLayout,
        snapshot_every: u64,
        mut spec: TrafficSpec,
    ) -> Result<Self, KvError> {
        spec.removes = true;
        spec.requests = u64::MAX; // the runner decides how many steps
        Ok(Self {
            store: KvStore::format(mem, layout, snapshot_every)?,
            traffic: TrafficGen::new(&spec),
            shadow: BTreeMap::new(),
            reads: 0,
            read_mismatches: 0,
        })
    }

    /// The underlying store (stats, layout access).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Reads served so far (reads don't count as committed txns).
    pub fn reads(&self) -> u64 {
        self.reads
    }
}

/// Maps a storage-layer refusal onto the transaction-layer error the
/// trait speaks: every [`KvError`] is a capacity refusal of some kind,
/// so `LogFull` carries the need/capacity pair faithfully.
fn to_txn_error(e: &KvError) -> TxnError {
    match *e {
        KvError::WalFull { need, cap } | KvError::SnapshotOverflow { need, cap } => {
            TxnError::LogFull {
                needed: need,
                capacity: cap,
            }
        }
        // Layout and key/value-size refusals cannot occur for generated
        // traffic (8-byte keys, 8-byte values); map them onto a
        // zero-capacity refusal rather than panicking.
        _ => TxnError::LogFull {
            needed: 0,
            capacity: 0,
        },
    }
}

impl<M: PMem> Workload<M> for KvWorkload {
    fn name(&self) -> &'static str {
        "kv"
    }

    fn step(&mut self, mem: &mut M) -> Result<(), TxnError> {
        let Some(req) = self.traffic.next() else {
            unreachable!("traffic stream is unbounded")
        };
        let key = key_bytes(req.key);
        match req.kind {
            ReqKind::Update => {
                let value = key_bytes(req.value);
                self.store
                    .put(mem, &key, &value)
                    .map_err(|e| to_txn_error(&e))?;
                self.shadow.insert(key.to_vec(), value.to_vec());
            }
            ReqKind::Remove => {
                self.store.delete(mem, &key).map_err(|e| to_txn_error(&e))?;
                self.shadow.remove(key.as_slice());
            }
            ReqKind::Read => {
                self.reads += 1;
                let expect = self.shadow.get(key.as_slice()).map(Vec::as_slice);
                if self.store.get(&key) != expect {
                    self.read_mismatches += 1;
                }
            }
        }
        Ok(())
    }

    fn verify(&mut self, mem: &mut M) -> Result<(), String> {
        if self.read_mismatches > 0 {
            return Err(format!(
                "{} of {} reads diverged from the shadow",
                self.read_mismatches, self.reads
            ));
        }
        // Differential check: recover from the persistent image and
        // compare against the in-DRAM shadow of acknowledged ops.
        let recovered = recover(mem, self.store.layout(), &RecoveryOptions::default())
            .map_err(|e| format!("kv recovery failed under verify: {e}"))?;
        if recovered.store.entries() != &self.shadow {
            return Err(format!(
                "recovered state ({} entries) diverges from shadow ({} entries)",
                recovered.store.len(),
                self.shadow.len()
            ));
        }
        if self.store.entries() != &self.shadow {
            return Err("live state diverges from shadow".into());
        }
        Ok(())
    }

    fn committed(&self) -> u64 {
        self.store.stats().acked
    }

    fn recover(&mut self, mem: &mut M) -> Result<(), String> {
        let recovered = recover(mem, self.store.layout(), &RecoveryOptions::default())
            .map_err(|e| format!("kv recovery failed: {e}"))?;
        self.store = recovered.store;
        self.shadow = self.store.entries().clone();
        self.read_mismatches = 0;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use supermem::persist::VecMem;

    fn layout() -> KvLayout {
        KvLayout::new(0x1000, 1 << 16, 1 << 16).unwrap()
    }

    #[test]
    fn trait_object_runs_zipfian_traffic_and_verifies() {
        let mut mem = VecMem::new();
        let mut w: Box<dyn Workload<VecMem>> =
            Box::new(KvWorkload::new(&mut mem, layout(), 16, TrafficSpec::default()).unwrap());
        for _ in 0..200 {
            w.step(&mut mem).unwrap();
        }
        assert_eq!(w.name(), "kv");
        assert!(w.committed() > 0);
        w.verify(&mut mem).unwrap();
    }

    #[test]
    fn recover_reattaches_and_keeps_serving() {
        let mut mem = VecMem::new();
        let mut w = KvWorkload::new(&mut mem, layout(), 8, TrafficSpec::default()).unwrap();
        for _ in 0..100 {
            Workload::<VecMem>::step(&mut w, &mut mem).unwrap();
        }
        let committed = Workload::<VecMem>::committed(&w);
        Workload::<VecMem>::recover(&mut w, &mut mem).unwrap();
        // Recovery rebuilt the same state; the workload keeps serving.
        for _ in 0..50 {
            Workload::<VecMem>::step(&mut w, &mut mem).unwrap();
        }
        assert!(Workload::<VecMem>::committed(&w) > 0);
        let _ = committed;
        Workload::<VecMem>::verify(&mut w, &mut mem).unwrap();
    }

    #[test]
    fn default_trait_recover_refuses_for_paper_workloads() {
        use supermem::workloads::{WorkloadKind, WorkloadSpec};
        let mut mem = VecMem::new();
        let mut w = WorkloadSpec::new(WorkloadKind::Queue)
            .build(&mut mem)
            .unwrap();
        let err = Workload::<VecMem>::recover(&mut w, &mut mem).unwrap_err();
        assert!(err.contains("no application-level recovery"), "{err}");
    }
}
