//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
//! per-record and per-snapshot checksum of the KV store's on-media
//! formats.
//!
//! The workspace carries no external dependencies, so the table is
//! generated at compile time. FNV-1a (the undo log's checksum in
//! `supermem-persist`) is deliberately *not* reused here: CRC-32 is the
//! storage-industry convention for log records, and its burst-error
//! guarantees are what a torn 8-byte word inside a WAL record actually
//! exercises.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC-32 hasher.
///
/// # Examples
///
/// ```
/// use supermem_kv::crc32::{crc32, Crc32};
///
/// let mut h = Crc32::new();
/// h.update(b"123");
/// h.update(b"456789");
/// assert_eq!(h.finish(), crc32(b"123456789"));
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // the IEEE check value
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The final checksum.
    pub fn finish(self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// CRC-32 over the concatenation of `parts` (no copy).
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut h = Crc32::new();
    for p in parts {
        h.update(p);
    }
    h.finish()
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/ISO-HDLC test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255).collect();
        for split in [0, 1, 7, 128, 255, 256] {
            assert_eq!(
                crc32_parts(&[&data[..split], &data[split..]]),
                crc32(&data),
                "split at {split}"
            );
        }
    }

    #[test]
    fn single_bit_damage_always_changes_the_checksum() {
        let data = [0x5Au8; 64];
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut dirty = data;
                dirty[byte] ^= 1 << bit;
                assert_ne!(crc32(&dirty), clean, "flip at {byte}:{bit}");
            }
        }
    }
}
