//! The store itself: a volatile index over a persistent WAL +
//! snapshot pair.
//!
//! Every mutation is write-ahead logged and persisted *before* it is
//! acknowledged (applied to the volatile index and counted in
//! [`KvStats::acked`]); the index is always reconstructible as
//! `snapshot ∘ WAL-suffix`. Checkpoints come in two flavors:
//!
//! * **light** — snapshot the state and record the current `(wal_seq,
//!   wal_off)`; the WAL keeps growing and replay after recovery starts
//!   from that offset (replay-from-offset);
//! * **rotating** — taken when the segment is nearly full: snapshot,
//!   flip the manifest, then re-initialize the WAL in place under a
//!   bumped epoch. Records of the old epoch are dead from the moment
//!   the new snapshot's manifest flip persists, and the epoch-mixed
//!   record CRC keeps their bytes from ever replaying again.

use std::collections::BTreeMap;

use supermem_persist::PMem;

use crate::crc32::crc32;
use crate::layout::{KvLayout, LayoutError, Manifest, MAX_KEY, MAX_VAL};
use crate::snapshot::write_snapshot;
use crate::wal::{encode_record, record_len, KvOp, WalHeader};

/// A rejected configuration or operation, typed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KvError {
    /// The region layout is degenerate.
    Layout(LayoutError),
    /// Key longer than [`MAX_KEY`].
    KeyTooLong {
        /// Offered length.
        len: usize,
    },
    /// Value longer than [`MAX_VAL`].
    ValueTooLong {
        /// Offered length.
        len: usize,
    },
    /// A record that cannot fit even a freshly rotated segment.
    WalFull {
        /// Bytes the record needs (with terminator).
        need: u64,
        /// Bytes the segment body holds.
        cap: u64,
    },
    /// The serialized state exceeds a snapshot slot, so no checkpoint
    /// can succeed; the store refuses the mutation that forced one.
    SnapshotOverflow {
        /// Bytes the state needs.
        need: u64,
        /// Bytes the slot payload area holds.
        cap: u64,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::Layout(e) => write!(f, "{e}"),
            KvError::KeyTooLong { len } => {
                write!(f, "key of {len} B exceeds the {MAX_KEY} B maximum")
            }
            KvError::ValueTooLong { len } => {
                write!(f, "value of {len} B exceeds the {MAX_VAL} B maximum")
            }
            KvError::WalFull { need, cap } => {
                write!(f, "record needs {need} B but the WAL body holds {cap} B")
            }
            KvError::SnapshotOverflow { need, cap } => {
                write!(f, "snapshot needs {need} B but the slot holds {cap} B")
            }
        }
    }
}

impl std::error::Error for KvError {}

/// Operation and checkpoint counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Acknowledged mutations (each persisted before being counted).
    pub acked: u64,
    /// Puts acknowledged.
    pub puts: u64,
    /// Deletes acknowledged.
    pub dels: u64,
    /// Snapshots written (light + rotating).
    pub snapshots: u64,
    /// Rotating checkpoints (WAL epoch bumps).
    pub rotations: u64,
    /// WAL record bytes appended in the current process lifetime.
    pub wal_bytes: u64,
}

/// A recoverable persistent KV store.
///
/// # Examples
///
/// ```
/// use supermem_kv::{KvLayout, KvStore};
/// use supermem_persist::VecMem;
///
/// let layout = KvLayout::new(0x1000, 4096, 4096).unwrap();
/// let mut mem = VecMem::new();
/// let mut kv = KvStore::format(&mut mem, layout, 4).unwrap();
/// kv.put(&mut mem, b"paper", b"supermem").unwrap();
/// assert_eq!(kv.get(b"paper"), Some(&b"supermem"[..]));
/// kv.delete(&mut mem, b"paper").unwrap();
/// assert_eq!(kv.get(b"paper"), None);
/// ```
#[derive(Debug, Clone)]
pub struct KvStore {
    layout: KvLayout,
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    wal_seq: u64,
    wal_off: u64,
    snap_seq: u64,
    active_slot: u32,
    snapshot_every: u64,
    ops_since_snapshot: u64,
    needs_wal_reinit: bool,
    stats: KvStats,
}

impl KvStore {
    /// Formats the region and returns an empty store: fresh WAL epoch
    /// 1, a genesis snapshot in slot 0, and the manifest pointing at
    /// it. `snapshot_every` is the number of mutations between
    /// automatic light checkpoints (0 disables them; rotation still
    /// checkpoints when the segment fills).
    ///
    /// # Errors
    ///
    /// [`KvError::Layout`] via an invalid [`KvLayout`] is pre-empted by
    /// the layout constructor; formatting itself cannot fail on a valid
    /// layout.
    pub fn format<M: PMem>(
        mem: &mut M,
        layout: KvLayout,
        snapshot_every: u64,
    ) -> Result<Self, KvError> {
        WalHeader { seq: 1 }.persist_fresh(mem, &layout);
        write_snapshot(mem, &layout, 0, 1, 1, 0, &BTreeMap::new()).map_err(|e| {
            KvError::SnapshotOverflow {
                need: e.need,
                cap: e.cap,
            }
        })?;
        Manifest {
            active_slot: 0,
            seq: 1,
        }
        .persist(mem, &layout);
        Ok(Self {
            layout,
            map: BTreeMap::new(),
            wal_seq: 1,
            wal_off: 0,
            snap_seq: 1,
            active_slot: 0,
            snapshot_every,
            ops_since_snapshot: 0,
            needs_wal_reinit: false,
            stats: KvStats::default(),
        })
    }

    /// Rebuilds a store handle from recovered state (used by
    /// [`crate::recovery::recover`]; not public API).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn resume(
        layout: KvLayout,
        map: BTreeMap<Vec<u8>, Vec<u8>>,
        wal_seq: u64,
        wal_off: u64,
        snap_seq: u64,
        active_slot: u32,
        snapshot_every: u64,
        needs_wal_reinit: bool,
    ) -> Self {
        Self {
            layout,
            map,
            wal_seq,
            wal_off,
            snap_seq,
            active_slot,
            snapshot_every,
            ops_since_snapshot: 0,
            needs_wal_reinit,
            stats: KvStats::default(),
        }
    }

    /// Inserts or overwrites `key`.
    ///
    /// # Errors
    ///
    /// Typed [`KvError`] on over-long operands or an exhausted layout;
    /// the store state is unchanged on error.
    pub fn put<M: PMem>(&mut self, mem: &mut M, key: &[u8], value: &[u8]) -> Result<(), KvError> {
        if key.len() > MAX_KEY {
            return Err(KvError::KeyTooLong { len: key.len() });
        }
        if value.len() > MAX_VAL {
            return Err(KvError::ValueTooLong { len: value.len() });
        }
        self.log(mem, KvOp::Put(key.to_vec(), value.to_vec()))?;
        self.stats.puts += 1;
        Ok(())
    }

    /// Removes `key` (logged even when absent — a delete is an
    /// acknowledged operation either way).
    ///
    /// # Errors
    ///
    /// Typed [`KvError`] on an over-long key or an exhausted layout.
    pub fn delete<M: PMem>(&mut self, mem: &mut M, key: &[u8]) -> Result<(), KvError> {
        if key.len() > MAX_KEY {
            return Err(KvError::KeyTooLong { len: key.len() });
        }
        self.log(mem, KvOp::Del(key.to_vec()))?;
        self.stats.dels += 1;
        Ok(())
    }

    /// Reads `key` from the volatile index.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(Vec::as_slice)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no keys are live.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The full volatile index (sorted).
    pub fn entries(&self) -> &BTreeMap<Vec<u8>, Vec<u8>> {
        &self.map
    }

    /// Operation counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Current WAL epoch.
    pub fn wal_seq(&self) -> u64 {
        self.wal_seq
    }

    /// Next WAL body append offset.
    pub fn wal_offset(&self) -> u64 {
        self.wal_off
    }

    /// Latest checkpoint sequence.
    pub fn snapshot_seq(&self) -> u64 {
        self.snap_seq
    }

    /// The layout this store runs over.
    pub fn layout(&self) -> KvLayout {
        self.layout
    }

    /// Order- and representation-independent digest of the live state
    /// (CRC-32 of the canonical sorted serialization) — what the
    /// recovery invariants compare.
    pub fn state_digest(&self) -> u32 {
        crc32(&crate::snapshot::encode_payload(&self.map))
    }

    /// Takes a light checkpoint now: snapshot + manifest flip, WAL
    /// untouched (replay will resume from the recorded offset).
    ///
    /// # Errors
    ///
    /// [`KvError::SnapshotOverflow`] when the state outgrew the slot.
    pub fn checkpoint<M: PMem>(&mut self, mem: &mut M) -> Result<(), KvError> {
        self.snapshot_and_flip(mem, false)
    }

    /// The write-ahead path every mutation takes: optional automatic
    /// checkpoint, capacity check (rotating if the segment is full),
    /// then append-persist-acknowledge.
    fn log<M: PMem>(&mut self, mem: &mut M, op: KvOp) -> Result<(), KvError> {
        if self.snapshot_every > 0 && self.ops_since_snapshot >= self.snapshot_every {
            self.snapshot_and_flip(mem, false)?;
        }
        // Reserve room for the record plus its 4-byte terminator.
        let need = record_len(&op) + 4;
        if self.wal_off + need > self.layout.wal_body {
            self.snapshot_and_flip(mem, true)?;
            if need > self.layout.wal_body {
                return Err(KvError::WalFull {
                    need,
                    cap: self.layout.wal_body,
                });
            }
        }
        if self.needs_wal_reinit {
            // Recovery found the segment header unreadable (crash cut a
            // rotation between manifest flip and header persist); the
            // snapshot carried the full state, and the first mutation
            // re-seals the header before any record lands.
            WalHeader { seq: self.wal_seq }.persist_fresh(mem, &self.layout);
            self.needs_wal_reinit = false;
        }
        let mut rec = encode_record(self.wal_seq, self.wal_off, &op);
        let rec_len = rec.len() as u64;
        rec.extend_from_slice(&0u32.to_le_bytes()); // terminator
        mem.persist(self.layout.wal_body_addr() + self.wal_off, &rec);
        // The record is durable: acknowledge.
        self.wal_off += rec_len;
        self.stats.wal_bytes += rec_len;
        self.stats.acked += 1;
        self.ops_since_snapshot += 1;
        op.apply(&mut self.map);
        Ok(())
    }

    /// Checkpoint: snapshot into the standby slot, flip the manifest,
    /// and (for `rotate`) re-initialize the WAL under the next epoch.
    fn snapshot_and_flip<M: PMem>(&mut self, mem: &mut M, rotate: bool) -> Result<(), KvError> {
        let seq = self.snap_seq + 1;
        let slot = 1 - self.active_slot;
        let (wal_seq, wal_off) = if rotate {
            (self.wal_seq + 1, 0)
        } else {
            (self.wal_seq, self.wal_off)
        };
        write_snapshot(mem, &self.layout, slot, seq, wal_seq, wal_off, &self.map).map_err(|e| {
            KvError::SnapshotOverflow {
                need: e.need,
                cap: e.cap,
            }
        })?;
        Manifest {
            active_slot: slot,
            seq,
        }
        .persist(mem, &self.layout);
        if rotate {
            WalHeader { seq: wal_seq }.persist_fresh(mem, &self.layout);
            self.wal_seq = wal_seq;
            self.wal_off = 0;
            self.stats.rotations += 1;
        }
        self.snap_seq = seq;
        self.active_slot = slot;
        self.ops_since_snapshot = 0;
        self.stats.snapshots += 1;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    fn small_layout() -> KvLayout {
        // A WAL body barely above the minimum, to force rotations.
        KvLayout::new(0x1000, 352, 4096).unwrap()
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut mem = VecMem::new();
        let mut kv = KvStore::format(&mut mem, small_layout(), 0).unwrap();
        kv.put(&mut mem, b"a", b"1").unwrap();
        kv.put(&mut mem, b"b", b"2").unwrap();
        kv.put(&mut mem, b"a", b"3").unwrap();
        assert_eq!(kv.get(b"a"), Some(&b"3"[..]));
        kv.delete(&mut mem, b"a").unwrap();
        assert_eq!(kv.get(b"a"), None);
        assert_eq!(kv.len(), 1);
        assert_eq!(kv.stats().acked, 4);
    }

    #[test]
    fn oversize_operands_are_typed_and_leave_state_untouched() {
        let mut mem = VecMem::new();
        let mut kv = KvStore::format(&mut mem, small_layout(), 0).unwrap();
        let digest = kv.state_digest();
        assert!(matches!(
            kv.put(&mut mem, &[0u8; MAX_KEY + 1], b"v"),
            Err(KvError::KeyTooLong { .. })
        ));
        assert!(matches!(
            kv.put(&mut mem, b"k", &vec![0u8; MAX_VAL + 1]),
            Err(KvError::ValueTooLong { .. })
        ));
        assert!(matches!(
            kv.delete(&mut mem, &[0u8; MAX_KEY + 1]),
            Err(KvError::KeyTooLong { .. })
        ));
        assert_eq!(kv.state_digest(), digest);
        assert_eq!(kv.stats().acked, 0);
    }

    #[test]
    fn filling_the_segment_rotates_the_epoch() {
        let mut mem = VecMem::new();
        let mut kv = KvStore::format(&mut mem, small_layout(), 0).unwrap();
        assert_eq!(kv.wal_seq(), 1);
        for i in 0u64..40 {
            kv.put(&mut mem, &i.to_le_bytes(), &[i as u8; 16]).unwrap();
        }
        assert!(kv.stats().rotations >= 2, "{:?}", kv.stats());
        assert!(kv.wal_seq() > 1);
        // The live index survived every rotation.
        assert_eq!(kv.len(), 40);
    }

    #[test]
    fn snapshot_every_takes_light_checkpoints() {
        let mut mem = VecMem::new();
        let layout = KvLayout::new(0x1000, 1 << 16, 1 << 16).unwrap();
        let mut kv = KvStore::format(&mut mem, layout, 3).unwrap();
        for i in 0u64..10 {
            kv.put(&mut mem, &i.to_le_bytes(), b"v").unwrap();
        }
        assert!(kv.stats().snapshots >= 3, "{:?}", kv.stats());
        assert_eq!(kv.stats().rotations, 0, "big segment never rotates");
        assert!(kv.snapshot_seq() > 1);
    }

    #[test]
    fn state_digest_tracks_content_not_history() {
        let mut mem = VecMem::new();
        let layout = KvLayout::new(0x1000, 1 << 16, 1 << 16).unwrap();
        let mut a = KvStore::format(&mut mem, layout, 0).unwrap();
        a.put(&mut mem, b"x", b"1").unwrap();
        a.put(&mut mem, b"y", b"2").unwrap();
        a.delete(&mut mem, b"y").unwrap();

        let mut mem2 = VecMem::new();
        let mut b = KvStore::format(&mut mem2, layout, 0).unwrap();
        b.put(&mut mem2, b"x", b"1").unwrap();
        assert_eq!(a.state_digest(), b.state_digest());
    }
}
