//! Differential crash torture for the KV store: every WAL append,
//! snapshot write, and checkpoint-pointer flip is a crash point;
//! every crash point is crossed with the media fault classes of
//! [`supermem::torture`]; every recovered store is checked against the
//! shadow oracle of acknowledged operations.
//!
//! A case is classified ([`KvClassification`]):
//!
//! * **recovered-committed** — every operation issued before the crash
//!   survived (possibly including the unacknowledged in-flight one).
//! * **lost-unacked-tail** — all *acknowledged* operations survived;
//!   the in-flight tail did not. This is the contract working as
//!   designed.
//! * **detected** — the recovered state is degraded, but honestly:
//!   recovery refused with a typed [`RecoveryError`], or the damage is
//!   visible in [`RecoveryResult`] (skipped records, rejected
//!   snapshots) or in a hardware signal (ECC detection, poisoned read,
//!   dirty-shutdown latch).
//! * **SILENT** — acknowledged data is wrong and *nothing* noticed.
//!   One of these fails the campaign; [`kv_shrink_point`] produces a
//!   minimal reproducer.
//!
//! Crash points are enumerated exactly as in the PR 4 engine: a dry
//! run counts machine-wide write-queue appends, and the campaign arms
//! a crash after each count 1..=total. Because the KV workload's
//! persists *are* its WAL appends, snapshot payload/header writes, and
//! manifest flips, this sweep hits every durability edge of the store.
//!
//! [`RecoveryError`]: crate::recovery::RecoveryError
//! [`RecoveryResult`]: crate::recovery::RecoveryResult

use supermem::memctrl::MachineCrashImage;
use supermem::nvm::{FaultClass, FaultSpec};
use supermem::persist::{DirectMem, RecoveredMemory};
use supermem::sim::Config;
use supermem::{sweep, Scheme};

use crate::invariants::{r3_prefix_consistent, r6_bounded_skip};
use crate::oracle::{op_stream, Legality, ShadowOracle};
use crate::recovery::{recover, RecoveryOptions};
use crate::store::KvStore;
use crate::wal::KvOp;
use crate::KvLayout;

/// Region base of the tortured store.
pub const KV_TORTURE_BASE: u64 = 0x8000;
/// WAL body bytes — deliberately tight so the op stream crosses at
/// least one rotating checkpoint.
pub const KV_TORTURE_WAL_BODY: u64 = 384;
/// Snapshot slot bytes.
pub const KV_TORTURE_SNAP_CAP: u64 = 1024;
/// Mutations between automatic light checkpoints.
pub const KV_TORTURE_SNAPSHOT_EVERY: u64 = 3;
/// Distinct keys in the tortured working set.
pub const KV_TORTURE_KEYSPACE: u64 = 6;
/// Maximum value bytes in the tortured op stream.
pub const KV_TORTURE_MAX_VAL: usize = 20;

/// Schemes the KV campaign sweeps by default: the paper's scheme and
/// the strongest baseline. (Any scheme the PR 4 campaign certifies can
/// be requested explicitly; these two keep the default grid dense but
/// affordable.)
pub const KV_TORTURE_SCHEMES: [Scheme; 2] = [Scheme::SuperMem, Scheme::WriteThrough];

/// The tortured store's layout.
///
/// # Panics
///
/// Never: the constants above satisfy [`KvLayout::new`] by
/// construction (checked in tests).
pub fn kv_torture_layout() -> KvLayout {
    #[allow(clippy::disallowed_methods)]
    // Justified panic: compile-time constants; the layout test pins them.
    KvLayout::new(KV_TORTURE_BASE, KV_TORTURE_WAL_BODY, KV_TORTURE_SNAP_CAP)
        .expect("torture layout constants are valid")
}

/// What one KV torture case amounted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvClassification {
    /// Everything issued before the crash survived.
    RecoveredCommitted,
    /// Acknowledged data survived; the unacknowledged tail did not.
    LostUnackedTail,
    /// Degraded but honest: a typed refusal or a visible damage signal.
    Detected,
    /// Acknowledged data wrong with no signal: the unacceptable one.
    Silent,
}

impl KvClassification {
    /// Stable display spelling.
    pub fn name(self) -> &'static str {
        match self {
            KvClassification::RecoveredCommitted => "recovered-committed",
            KvClassification::LostUnackedTail => "lost-unacked-tail",
            KvClassification::Detected => "detected",
            KvClassification::Silent => "SILENT",
        }
    }
}

impl std::fmt::Display for KvClassification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully determined case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvTortureCase {
    /// Scheme under torture.
    pub scheme: Scheme,
    /// Fault class, or `None` for the crash-only baseline.
    pub class: Option<FaultClass>,
    /// Crash after this many write-queue appends (1-based).
    pub point: u64,
    /// Seed fixing the op stream and every injection choice.
    pub seed: u64,
    /// Interleaved memory channels.
    pub channels: usize,
}

impl KvTortureCase {
    /// The CLI invocation reproducing exactly this case.
    pub fn repro(&self) -> String {
        let mut line = format!(
            "supermem kv torture --scheme {} --fault {} --point {} --seed {}",
            self.scheme.name().to_ascii_lowercase(),
            self.class.map_or("none", FaultClass::name),
            self.point,
            self.seed
        );
        if self.channels != 1 {
            line.push_str(&format!(" --channels {}", self.channels));
        }
        line
    }
}

/// The outcome of one executed case.
#[derive(Debug, Clone)]
pub struct KvCaseResult {
    /// The case that ran.
    pub case: KvTortureCase,
    /// How it was classified.
    pub classification: KvClassification,
    /// Human-readable evidence.
    pub detail: String,
    /// The typed recovery report, when KV recovery returned one (a
    /// refusal with a [`RecoveryError`](crate::recovery::RecoveryError)
    /// leaves this `None`).
    pub recovery: Option<crate::recovery::RecoveryResult>,
}

/// Per-scheme tally.
#[derive(Debug, Clone, Copy)]
pub struct KvSchemeSummary {
    /// The scheme being summarized.
    pub scheme: Scheme,
    /// Total cases.
    pub cases: u64,
    /// Cases classified recovered-committed.
    pub committed: u64,
    /// Cases classified lost-unacked-tail.
    pub lost_tail: u64,
    /// Cases classified detected.
    pub detected: u64,
    /// Cases classified SILENT.
    pub silent: u64,
}

impl KvSchemeSummary {
    /// One-word verdict.
    pub fn verdict(&self) -> &'static str {
        if self.silent > 0 {
            "SILENT CORRUPTION"
        } else {
            "fail-safe"
        }
    }
}

/// Everything a campaign produced.
#[derive(Debug, Clone)]
pub struct KvTortureReport {
    /// Every executed case, in sweep (input) order.
    pub results: Vec<KvCaseResult>,
}

impl KvTortureReport {
    /// Total injections executed.
    pub fn total(&self) -> u64 {
        self.results.len() as u64
    }

    /// The silent-corruption cases (a passing campaign has none).
    pub fn silent(&self) -> Vec<&KvCaseResult> {
        self.results
            .iter()
            .filter(|r| r.classification == KvClassification::Silent)
            .collect()
    }

    /// Count of cases with the given classification.
    pub fn count(&self, c: KvClassification) -> u64 {
        self.results
            .iter()
            .filter(|r| r.classification == c)
            .count() as u64
    }

    /// Count restricted to one (scheme, class) cell of the matrix.
    pub fn count_cell(
        &self,
        scheme: Scheme,
        class: Option<FaultClass>,
        c: KvClassification,
    ) -> u64 {
        self.results
            .iter()
            .filter(|r| r.case.scheme == scheme && r.case.class == class && r.classification == c)
            .count() as u64
    }

    /// Per-scheme tallies, in first-seen order.
    pub fn by_scheme(&self) -> Vec<KvSchemeSummary> {
        let mut out: Vec<KvSchemeSummary> = Vec::new();
        for r in &self.results {
            if !out.iter().any(|s| s.scheme == r.case.scheme) {
                out.push(KvSchemeSummary {
                    scheme: r.case.scheme,
                    cases: 0,
                    committed: 0,
                    lost_tail: 0,
                    detected: 0,
                    silent: 0,
                });
            }
            let Some(entry) = out.iter_mut().find(|s| s.scheme == r.case.scheme) else {
                continue; // unreachable: pushed just above
            };
            entry.cases += 1;
            match r.classification {
                KvClassification::RecoveredCommitted => entry.committed += 1,
                KvClassification::LostUnackedTail => entry.lost_tail += 1,
                KvClassification::Detected => entry.detected += 1,
                KvClassification::Silent => entry.silent += 1,
            }
        }
        out
    }
}

/// Campaign shape.
#[derive(Debug, Clone)]
pub struct KvTortureConfig {
    /// Schemes to torture.
    pub schemes: Vec<Scheme>,
    /// Fault classes; `None` entries run the crash-only baseline.
    pub classes: Vec<Option<FaultClass>>,
    /// Seeds; each fixes one op stream plus every injection choice.
    pub seeds: Vec<u64>,
    /// Restrict to a single crash point, if set.
    pub point: Option<u64>,
    /// Channel counts to sweep.
    pub channels: Vec<usize>,
    /// Operations per tortured run.
    pub ops: u64,
}

impl Default for KvTortureConfig {
    fn default() -> Self {
        let mut classes: Vec<Option<FaultClass>> = vec![None];
        classes.extend(FaultClass::ALL.into_iter().map(Some));
        Self {
            schemes: KV_TORTURE_SCHEMES.to_vec(),
            classes,
            seeds: vec![1, 2, 3, 4],
            point: None,
            channels: vec![1],
            ops: 10,
        }
    }
}

/// The formatted, durably shut-down starting state every case clones.
fn base_system(cfg: &Config) -> (DirectMem, KvStore) {
    let mut mem = DirectMem::new(cfg);
    // Justified panic: the torture layout is statically sized for the
    // op stream; formatting it cannot fail and a failure here would be
    // a harness bug, not a media event.
    #[allow(clippy::disallowed_methods)]
    let store = KvStore::format(&mut mem, kv_torture_layout(), KV_TORTURE_SNAPSHOT_EVERY)
        .expect("format torture store");
    mem.shutdown();
    (mem, store)
}

/// Runs one operation against the store.
fn apply_op(store: &mut KvStore, mem: &mut DirectMem, op: &KvOp) {
    // Justified panic: see `base_system` — the layout admits the whole
    // stream by construction.
    #[allow(clippy::disallowed_methods)]
    match op {
        KvOp::Put(k, v) => store.put(mem, k, v).expect("torture put"),
        KvOp::Del(k) => store.delete(mem, k).expect("torture delete"),
    }
}

/// The tortured op stream for `seed`.
fn stream(seed: u64, ops: u64) -> Vec<KvOp> {
    op_stream(seed, ops, KV_TORTURE_KEYSPACE, KV_TORTURE_MAX_VAL)
}

/// Dry-runs the workload to build the shadow oracle (acknowledged ops
/// with their append counts) and count the crash points the sweep must
/// visit (including the final shutdown drain).
fn build_oracle(
    cfg: &Config,
    base: &(DirectMem, KvStore),
    seed: u64,
    ops: u64,
) -> (ShadowOracle, u64) {
    let _ = cfg;
    let mut mem = base.0.clone();
    let mut store = base.1.clone();
    let before = mem.controller().append_events();
    let mut oracle = ShadowOracle::new();
    for op in stream(seed, ops) {
        apply_op(&mut store, &mut mem, &op);
        oracle.record(op, mem.controller().append_events() - before);
    }
    mem.shutdown();
    (oracle, mem.controller().append_events() - before)
}

/// Number of crash points the workload crosses under `scheme` with
/// `channels` controllers and the op stream of `seed` — every WAL
/// append, snapshot write, and manifest flip lands in this count.
pub fn kv_crash_points(scheme: Scheme, channels: usize, seed: u64, ops: u64) -> u64 {
    let cfg = scheme.apply(Config::default()).with_channels(channels);
    let base = base_system(&cfg);
    build_oracle(&cfg, &base, seed, ops).1
}

/// Executes one case end to end: establish the base, arm the crash,
/// inject the fault, run the op stream, image the machine, recover,
/// and classify against the shadow oracle.
pub fn kv_run_case(tc: &KvTortureCase) -> KvCaseResult {
    let cfg = tc
        .scheme
        .apply(Config::default())
        .with_channels(tc.channels);
    let spec = tc.class.map(|class| FaultSpec {
        class,
        seed: tc.seed,
    });

    let base = base_system(&cfg);
    let (oracle, _) = build_oracle(&cfg, &base, tc.seed, KvTortureConfig::default().ops);

    let (mut mem, mut store) = base;
    mem.controller_mut().arm_crash_after_appends(tc.point);
    if let Some(spec) = spec {
        if spec.class.is_power_event() {
            mem.controller_mut().set_fault_plan(spec);
        }
    }
    for op in stream(tc.seed, oracle.len() as u64) {
        apply_op(&mut store, &mut mem, &op);
    }

    let mut machine = if let Some(m) = mem.controller_mut().take_machine_crash_image() {
        m
    } else {
        // The armed point lies in (or beyond) the shutdown drain: the
        // workload completed; finish cleanly and image that.
        mem.shutdown();
        mem.machine_crash_now()
    };
    if let Some(spec) = spec {
        if !spec.class.is_power_event() {
            let ch = (tc.seed as usize) % machine.channels.len();
            machine.channels[ch].store.strike_faults(spec);
        }
    }

    classify(tc, &cfg, machine, &oracle)
}

fn classify(
    tc: &KvTortureCase,
    cfg: &Config,
    machine: MachineCrashImage,
    oracle: &ShadowOracle,
) -> KvCaseResult {
    let done = |classification, detail| KvCaseResult {
        case: *tc,
        classification,
        detail,
        recovery: None,
    };

    // Counters and integrity first (Osiris trial decryption where the
    // scheme relaxes counter persistence), exactly as in the PR 4
    // engine.
    let (mut rec, osiris_unrecoverable) = if cfg.osiris_window.is_some() {
        match supermem::persist::recover_osiris(cfg, machine.merged()) {
            Ok((rec, report)) => (rec, report.unrecoverable_lines),
            Err(e) => {
                return done(
                    KvClassification::Detected,
                    format!("osiris counter recovery refused: {e}"),
                )
            }
        }
    } else {
        match RecoveredMemory::from_machine_image_checked(cfg, machine) {
            Ok(rec) => (rec, 0),
            Err(e) => {
                return done(
                    KvClassification::Detected,
                    format!("image rebuild refused: {e}"),
                )
            }
        }
    };

    let opts = RecoveryOptions {
        paranoid: true,
        ..RecoveryOptions::default()
    };
    let recovered = match recover(&mut rec, kv_torture_layout(), &opts) {
        Ok(r) => r,
        Err(e) => {
            return done(
                KvClassification::Detected,
                format!("kv recovery refused: {e}"),
            )
        }
    };

    let report = recovered.result;
    let finish = |classification, detail| KvCaseResult {
        case: *tc,
        classification,
        detail,
        recovery: Some(report),
    };

    // R6 is recovery's own contract; a breach is a store bug the
    // campaign must fail on, not a media outcome.
    if let Err(msg) = r6_bounded_skip(&recovered.result, &opts) {
        return finish(KvClassification::Silent, msg);
    }

    // R3: differential check against the acknowledged history.
    match r3_prefix_consistent(oracle, tc.point, recovered.store.entries()) {
        Ok(Legality::Committed) => finish(
            KvClassification::RecoveredCommitted,
            format!(
                "all issued ops durable ({} replayed from snapshot {})",
                recovered.result.records_replayed, recovered.result.snapshot_seq
            ),
        ),
        Ok(Legality::LostUnackedTail) => finish(
            KvClassification::LostUnackedTail,
            format!(
                "acked prefix intact; unacked tail cut ({})",
                recovered.result.torn_tail_at.map_or(
                    "no torn record; tail never reached the queue".to_owned(),
                    |o| { format!("torn record truncated at offset {o}") }
                )
            ),
        ),
        Ok(Legality::Illegal) | Err(_) => {
            // Wrong data: acceptable only if something noticed.
            let fc = rec.store().fault_counters();
            let dirty_shutdown = fc.torn_entries > 0 || fc.dropped_writes > 0;
            let report_damage = recovered.result.damaged();
            if fc.any_detected()
                || dirty_shutdown
                || rec.media_failures() > 0
                || osiris_unrecoverable > 0
                || report_damage
            {
                finish(
                    KvClassification::Detected,
                    format!(
                        "degraded data with detection signals: ecc_detections={} lost_reads={} \
                         transient_failures={} torn_entries={} dropped_writes={} \
                         media_failures={} osiris_unrecoverable={} report_damaged={} \
                         (skipped={} snapshots_rejected={})",
                        fc.ecc_detections,
                        fc.lost_reads,
                        fc.transient_failures,
                        fc.torn_entries,
                        fc.dropped_writes,
                        rec.media_failures(),
                        osiris_unrecoverable,
                        report_damage,
                        recovered.result.corrupt_entries_skipped,
                        recovered.result.snapshots_rejected,
                    ),
                )
            } else {
                finish(
                    KvClassification::Silent,
                    format!(
                        "recovered state matches no acknowledged prefix and nothing detected it \
                         ({} entries, digest {:#010x})",
                        recovered.result.entries, recovered.result.state_digest
                    ),
                )
            }
        }
    }
}

/// Shrinks a failing case to the smallest crash point that still
/// reproduces its classification.
pub fn kv_shrink_point(tc: &KvTortureCase) -> u64 {
    let target = kv_run_case(tc).classification;
    let mut best = tc.point;
    let mut probe = tc.point / 2;
    while probe >= 1 {
        let mut smaller = *tc;
        smaller.point = probe;
        if kv_run_case(&smaller).classification == target {
            best = probe;
            probe /= 2;
        } else {
            break;
        }
    }
    best
}

/// Runs the full campaign: per (scheme, channels, seed) the crash
/// points are counted with a dry run, then every (class, point)
/// combination fans out over the parallel sweep engine. Results come
/// back in input order.
pub fn kv_run_torture(cfg: &KvTortureConfig) -> KvTortureReport {
    let mut cases: Vec<KvTortureCase> = Vec::new();
    for &channels in &cfg.channels {
        for &scheme in &cfg.schemes {
            for &seed in &cfg.seeds {
                let total = kv_crash_points(scheme, channels, seed, cfg.ops);
                let points: Vec<u64> = match cfg.point {
                    Some(p) => vec![p.clamp(1, total)],
                    None => (1..=total).collect(),
                };
                for &class in &cfg.classes {
                    for &point in &points {
                        cases.push(KvTortureCase {
                            scheme,
                            class,
                            point,
                            seed,
                            channels,
                        });
                    }
                }
            }
        }
    }
    let results = sweep(&cases, kv_run_case);
    KvTortureReport { results }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;

    #[test]
    fn torture_layout_constants_are_valid() {
        let l = kv_torture_layout();
        assert_eq!(l.base, KV_TORTURE_BASE);
    }

    #[test]
    fn crash_points_are_deterministic_and_plentiful() {
        let a = kv_crash_points(Scheme::SuperMem, 1, 1, 10);
        let b = kv_crash_points(Scheme::SuperMem, 1, 1, 10);
        assert_eq!(a, b);
        // The stream crosses WAL appends, light checkpoints, and a
        // rotation: well over one append per op.
        assert!(a > 10, "only {a} crash points");
    }

    #[test]
    fn unfaulted_crashes_never_lose_acked_data() {
        // The crash-only baseline at every point, one scheme, one seed:
        // every case must land in a legal (non-detected) bucket.
        let cfg = KvTortureConfig {
            schemes: vec![Scheme::SuperMem],
            classes: vec![None],
            seeds: vec![1],
            ..KvTortureConfig::default()
        };
        let report = kv_run_torture(&cfg);
        assert!(report.total() > 10);
        for r in &report.results {
            assert!(
                matches!(
                    r.classification,
                    KvClassification::RecoveredCommitted | KvClassification::LostUnackedTail
                ),
                "{}: un-faulted case must recover cleanly, got {} ({})",
                r.case.repro(),
                r.classification,
                r.detail
            );
        }
    }

    #[test]
    fn faulted_smoke_grid_has_no_silent_corruption() {
        let cfg = KvTortureConfig {
            schemes: vec![Scheme::SuperMem],
            seeds: vec![1],
            ..KvTortureConfig::default()
        };
        let report = kv_run_torture(&cfg);
        let silent = report.silent();
        assert!(
            silent.is_empty(),
            "SILENT: {}",
            silent
                .iter()
                .map(|r| format!("{} ({})", r.case.repro(), r.detail))
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}
