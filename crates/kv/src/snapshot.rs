//! Snapshot slots: CRC-sealed full-state checkpoints with
//! validation-before-load and latest-valid discovery.
//!
//! A snapshot is written to the slot *not* currently active (the two
//! slots alternate generations), payload first, header second, so a
//! crash mid-write can only damage the older generation. The header
//! records the WAL epoch (`wal_seq`) and body offset (`wal_off`) from
//! which replay resumes — a snapshot plus its WAL suffix is the whole
//! store.
//!
//! Discovery ([`discover`]) validates every slot's header *and* payload
//! checksum before a single byte is parsed, picks the highest valid
//! sequence, and falls back to the older slot when the newest is
//! corrupt — the newest snapshot is an optimization, never a single
//! point of failure.

use std::collections::BTreeMap;

use supermem_persist::PMem;

use crate::crc32::crc32;
use crate::layout::{
    read4, read8, KvLayout, FORMAT_VERSION, MAX_KEY, MAX_VAL, SNAP_HEADER_LEN, SNAP_MAGIC,
    SNAP_SLOTS,
};

/// A snapshot payload that does not fit its slot (the working set
/// outgrew the configured layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotOverflow {
    /// Bytes the serialized state needs.
    pub need: u64,
    /// Bytes the slot payload area holds.
    pub cap: u64,
}

/// A validated, parsed snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadedSnapshot {
    /// Slot the snapshot was read from.
    pub slot: u32,
    /// Checkpoint sequence number.
    pub seq: u64,
    /// WAL epoch replay must run against.
    pub wal_seq: u64,
    /// WAL body offset replay starts from.
    pub wal_off: u64,
    /// The key-value state at checkpoint time.
    pub map: BTreeMap<Vec<u8>, Vec<u8>>,
}

/// Serializes a state map (sorted entries: `klen, vlen, key, value`).
pub fn encode_payload(map: &BTreeMap<Vec<u8>, Vec<u8>>) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in map {
        out.extend_from_slice(&(k.len() as u32).to_le_bytes());
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(k);
        out.extend_from_slice(v);
    }
    out
}

/// Writes and persists a snapshot into `slot`: payload first, then the
/// CRC-sealed header. Does *not* flip the manifest — that is the
/// caller's separate, later persist.
///
/// # Errors
///
/// [`SnapshotOverflow`] when the serialized state exceeds the slot.
pub fn write_snapshot<M: PMem>(
    mem: &mut M,
    layout: &KvLayout,
    slot: u32,
    seq: u64,
    wal_seq: u64,
    wal_off: u64,
    map: &BTreeMap<Vec<u8>, Vec<u8>>,
) -> Result<(), SnapshotOverflow> {
    let payload = encode_payload(map);
    let cap = layout.snap_payload_cap();
    if payload.len() as u64 > cap {
        return Err(SnapshotOverflow {
            need: payload.len() as u64,
            cap,
        });
    }
    let base = layout.slot_addr(u64::from(slot));
    if !payload.is_empty() {
        mem.persist(base + SNAP_HEADER_LEN, &payload);
    }
    let mut h = [0u8; 64];
    h[0..8].copy_from_slice(&SNAP_MAGIC.to_le_bytes());
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&seq.to_le_bytes());
    h[20..28].copy_from_slice(&wal_seq.to_le_bytes());
    h[28..36].copy_from_slice(&wal_off.to_le_bytes());
    h[36..44].copy_from_slice(&(map.len() as u64).to_le_bytes());
    h[44..52].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    h[52..56].copy_from_slice(&crc32(&payload).to_le_bytes());
    let hcrc = crc32(&h[0..56]);
    h[56..60].copy_from_slice(&hcrc.to_le_bytes());
    mem.persist(base, &h);
    Ok(())
}

/// Validates slot `slot` end to end — header magic/version/CRC, then
/// payload CRC — and only then parses entries. `None` on any
/// disagreement.
pub fn load_slot<M: PMem>(mem: &mut M, layout: &KvLayout, slot: u32) -> Option<LoadedSnapshot> {
    let base = layout.slot_addr(u64::from(slot));
    let mut h = [0u8; 64];
    mem.read(base, &mut h);
    let magic = u64::from_le_bytes(read8(&h, 0)?);
    let version = u32::from_le_bytes(read4(&h, 8)?);
    let seq = u64::from_le_bytes(read8(&h, 12)?);
    let wal_seq = u64::from_le_bytes(read8(&h, 20)?);
    let wal_off = u64::from_le_bytes(read8(&h, 28)?);
    let count = u64::from_le_bytes(read8(&h, 36)?);
    let payload_len = u64::from_le_bytes(read8(&h, 44)?);
    let payload_crc = u32::from_le_bytes(read4(&h, 52)?);
    let header_crc = u32::from_le_bytes(read4(&h, 56)?);
    if magic != SNAP_MAGIC
        || version != FORMAT_VERSION
        || header_crc != crc32(&h[0..56])
        || wal_seq == 0
        || payload_len > layout.snap_payload_cap()
        || count > payload_len / 8 + 1
    {
        return None;
    }
    let mut payload = vec![0u8; payload_len as usize];
    mem.read(base + SNAP_HEADER_LEN, &mut payload);
    if crc32(&payload) != payload_crc {
        return None;
    }
    // Checksum verified; now (and only now) parse.
    let mut map = BTreeMap::new();
    let mut pos = 0usize;
    for _ in 0..count {
        let klen = u32::from_le_bytes(read4(&payload, pos)?) as usize;
        let vlen = u32::from_le_bytes(read4(&payload, pos + 4)?) as usize;
        if klen > MAX_KEY || vlen > MAX_VAL {
            return None;
        }
        pos += 8;
        let key = payload.get(pos..pos + klen)?.to_vec();
        let val = payload.get(pos + klen..pos + klen + vlen)?.to_vec();
        pos += klen + vlen;
        map.insert(key, val);
    }
    if pos != payload.len() || map.len() as u64 != count {
        return None;
    }
    Some(LoadedSnapshot {
        slot,
        seq,
        wal_seq,
        wal_off,
        map,
    })
}

/// True when the slot's header is still all-zero — never written, as
/// opposed to written and damaged. A store that has not yet rotated
/// into its second slot is healthy, not degraded.
fn slot_is_vacant<M: PMem>(mem: &mut M, layout: &KvLayout, slot: u32) -> bool {
    let mut h = [0u8; SNAP_HEADER_LEN as usize];
    mem.read(layout.slot_addr(u64::from(slot)), &mut h);
    h.iter().all(|&b| b == 0)
}

/// Latest-valid-snapshot discovery: validates every slot and returns
/// the highest-sequence survivor plus how many slots were rejected.
/// Vacant (never-written) slots are neither survivors nor rejections.
pub fn discover<M: PMem>(mem: &mut M, layout: &KvLayout) -> (Option<LoadedSnapshot>, u32) {
    let mut best: Option<LoadedSnapshot> = None;
    let mut rejected = 0;
    for slot in 0..SNAP_SLOTS as u32 {
        match load_slot(mem, layout, slot) {
            Some(s) => {
                if best.as_ref().is_none_or(|b| s.seq > b.seq) {
                    best = Some(s);
                }
            }
            None if slot_is_vacant(mem, layout, slot) => {}
            None => rejected += 1,
        }
    }
    (best, rejected)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use supermem_persist::VecMem;

    fn layout() -> KvLayout {
        KvLayout::new(0x1000, 4096, 4096).unwrap()
    }

    fn sample_map(n: u64) -> BTreeMap<Vec<u8>, Vec<u8>> {
        (0..n)
            .map(|i| (i.to_le_bytes().to_vec(), vec![i as u8; 5]))
            .collect()
    }

    #[test]
    fn roundtrip_and_discovery_prefers_newest() {
        let l = layout();
        let mut mem = VecMem::new();
        write_snapshot(&mut mem, &l, 0, 3, 1, 40, &sample_map(4)).unwrap();
        write_snapshot(&mut mem, &l, 1, 4, 2, 0, &sample_map(6)).unwrap();
        let (best, rejected) = discover(&mut mem, &l);
        let best = best.unwrap();
        assert_eq!(
            (best.slot, best.seq, best.wal_seq, best.wal_off),
            (1, 4, 2, 0)
        );
        assert_eq!(best.map, sample_map(6));
        assert_eq!(rejected, 0);
    }

    #[test]
    fn corrupt_newest_falls_back_to_older_slot() {
        let l = layout();
        let mut mem = VecMem::new();
        write_snapshot(&mut mem, &l, 0, 3, 1, 40, &sample_map(4)).unwrap();
        write_snapshot(&mut mem, &l, 1, 4, 1, 96, &sample_map(6)).unwrap();
        // Damage one payload byte of the newest snapshot.
        let addr = l.slot_addr(1) + SNAP_HEADER_LEN + 3;
        let mut b = [0u8; 1];
        mem.read(addr, &mut b);
        b[0] ^= 0x80;
        mem.write(addr, &b);
        let (best, rejected) = discover(&mut mem, &l);
        let best = best.unwrap();
        assert_eq!((best.slot, best.seq), (0, 3), "fell back to the older slot");
        assert_eq!(rejected, 1);
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let l = layout();
        let mut mem = VecMem::new();
        write_snapshot(&mut mem, &l, 0, 1, 1, 0, &BTreeMap::new()).unwrap();
        let s = load_slot(&mut mem, &l, 0).unwrap();
        assert!(s.map.is_empty());
    }

    #[test]
    fn overflow_is_typed() {
        let l = KvLayout::new(0x1000, 4096, 512).unwrap();
        let mut mem = VecMem::new();
        let big = sample_map(60);
        let err = write_snapshot(&mut mem, &l, 0, 1, 1, 0, &big).unwrap_err();
        assert!(err.need > err.cap);
    }

    #[test]
    fn header_bit_flip_rejects_slot() {
        let l = layout();
        let mut mem = VecMem::new();
        write_snapshot(&mut mem, &l, 0, 3, 1, 40, &sample_map(4)).unwrap();
        for at in [0u64, 12, 20, 28, 36, 44, 52] {
            let mut dirty = mem.clone();
            let mut b = [0u8; 1];
            dirty.read(l.slot_addr(0) + at, &mut b);
            b[0] ^= 0x02;
            dirty.write(l.slot_addr(0) + at, &b);
            assert!(load_slot(&mut dirty, &l, 0).is_none(), "header byte {at}");
        }
    }
}
