//! Interleaved multi-channel memory system.
//!
//! [`ChannelSet`] fronts one [`MemoryController`] per channel and routes
//! every read and flush to the channel that owns the target line
//! (pages interleave round-robin: `channel = page % channels`, see
//! `supermem_nvm::addr`). The set owns the *machine-level* shared state
//! — one probe hub, one statistics block, and one armed-crash countdown
//! — and swaps it into whichever controller is executing, so telemetry,
//! statistics, and crash arming behave exactly as they did when the
//! machine had a single controller. With `channels = 1` (the
//! paper-faithful default) the set is a transparent wrapper: routing is
//! the identity and every code path reduces to the single-controller
//! one, cycle for cycle and byte for byte.
//!
//! Crash semantics: a power failure hits *all* channels at once, so a
//! crash produces a [`MachineCrashImage`] holding one per-channel
//! [`CrashImage`]; [`MachineCrashImage::merged`] folds them into the
//! single flat NVM image recovery consumes (channels own disjoint
//! address sets, so the union is conflict-free).

use supermem_nvm::addr::{AddressMap, LineAddr, PageId};
use supermem_nvm::fault::FaultSpec;
use supermem_nvm::{LineData, NvmStore, WearReport};
use supermem_sim::{Config, Cycle, EventTape, Observer, Probes, Stats};

use crate::controller::{CrashImage, MemoryController};

/// The persistent state every channel leaves behind at a simultaneous
/// power failure: one [`CrashImage`] per channel, in channel order.
#[derive(Debug, Clone)]
pub struct MachineCrashImage {
    /// Per-channel crash images, indexed by channel.
    pub channels: Vec<CrashImage>,
}

impl MachineCrashImage {
    /// Folds the per-channel images into the single flat NVM image that
    /// recovery consumes. Channels own disjoint line/page sets, so the
    /// union is conflict-free; the RSR comes from whichever channel had
    /// a re-encryption in flight (at most one page machine-wide per
    /// paper §3.4.4 — each channel has its own register, and recovery
    /// completes them one at a time). The integrity-tree root only
    /// survives the merge for a single-channel machine: with several
    /// per-channel trees there is no one root to hand over.
    ///
    /// # Panics
    ///
    /// Panics if the image holds no channels.
    #[must_use]
    pub fn merged(self) -> CrashImage {
        let n = self.channels.len();
        assert!(n > 0, "machine crash image must hold at least one channel");
        let mut it = self.channels.into_iter();
        let Some(mut out) = it.next() else {
            unreachable!("asserted non-empty above")
        };
        for img in it {
            out.store.absorb(img.store);
            if out.rsr.is_none() {
                out.rsr = img.rsr;
            }
        }
        if n > 1 {
            out.bmt_root = None;
        }
        out
    }
}

/// One memory controller per channel behind a single-controller
/// interface.
///
/// All machine-global state (probes, statistics, the armed-crash
/// countdown) lives here and is lent to the executing controller for
/// the duration of each call, so cross-channel aggregates need no
/// merging: there is only ever one [`Stats`] and one [`Probes`].
///
/// # Examples
///
/// ```
/// use supermem_memctrl::ChannelSet;
/// use supermem_nvm::addr::LineAddr;
/// use supermem_sim::Config;
///
/// let mut set = ChannelSet::new(&Config::default().with_channels(2));
/// let retire = set.flush_line(LineAddr(0x1000), [1u8; 64], 100);
/// let (data, _) = set.read_line(LineAddr(0x1000), retire);
/// assert_eq!(data, [1u8; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct ChannelSet {
    channels: Vec<MemoryController>,
    probes: Probes,
    stats: Stats,
    armed: Option<u64>,
    machine_image: Option<MachineCrashImage>,
    banks_per_channel: usize,
    /// Host worker threads for sibling-channel drains between barriers
    /// (`Config::run_threads`; 1 = fully sequential). Results are
    /// identical at every setting — see [`ChannelSet::drain_others`].
    run_threads: usize,
}

impl ChannelSet {
    /// Builds one controller per configured channel over fresh NVM.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`Config::validate`].
    pub fn new(cfg: &Config) -> Self {
        let channels: Vec<MemoryController> = (0..cfg.channels)
            .map(|ch| MemoryController::for_channel(cfg, ch))
            .collect();
        Self {
            probes: Probes::default(),
            stats: Stats::new(cfg.banks * cfg.channels),
            armed: None,
            machine_image: None,
            banks_per_channel: cfg.banks,
            run_threads: cfg.run_threads.max(1),
            channels,
        }
    }

    /// Wraps a single existing controller (e.g. one restarted on a
    /// recovered store). The controller's accumulated statistics carry
    /// over as the machine statistics.
    ///
    /// # Panics
    ///
    /// Panics if the controller was built for a multi-channel
    /// configuration: a lone channel cannot stand in for the machine.
    pub fn from_single(mut mc: MemoryController) -> Self {
        let cfg = mc.config().clone();
        assert_eq!(
            cfg.channels, 1,
            "from_single requires a single-channel configuration"
        );
        let mut stats = Stats::new(cfg.banks);
        std::mem::swap(&mut stats, mc.stats_mut());
        let mut probes = Probes::default();
        std::mem::swap(&mut probes, mc.probes_mut());
        Self {
            probes,
            stats,
            armed: None,
            machine_image: None,
            banks_per_channel: cfg.banks,
            run_threads: 1,
            channels: vec![mc],
        }
    }

    /// Worker threads used for sibling-channel drains (diagnostics).
    pub fn run_threads(&self) -> usize {
        self.run_threads
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The per-channel controllers, in channel order (diagnostics).
    pub fn channels(&self) -> &[MemoryController] {
        &self.channels
    }

    /// The shared address map (every channel decodes addresses
    /// identically).
    pub fn map(&self) -> &AddressMap {
        self.channels[0].map()
    }

    /// Machine statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable machine statistics (the system layer records transaction
    /// latencies here).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// The machine probe hub (the system layer emits core-level events
    /// here).
    pub fn probes_mut(&mut self) -> &mut Probes {
        &mut self.probes
    }

    /// Attaches an [`Observer`] to the machine's event stream.
    pub fn attach_observer(&mut self, obs: Box<dyn Observer>) {
        self.probes.attach(obs);
    }

    /// Detaches and returns all attached observers.
    pub fn take_observers(&mut self) -> Vec<Box<dyn Observer>> {
        self.probes.take()
    }

    /// Total append events across all channels (an atomic data+counter
    /// pair counts as one). The crash experiments sweep their injection
    /// point over this count.
    pub fn append_events(&self) -> u64 {
        self.channels
            .iter()
            .map(MemoryController::append_events)
            .sum()
    }

    /// Total pending write-queue entries across all channels.
    pub fn wq_len(&self) -> usize {
        self.channels.iter().map(MemoryController::wq_len).sum()
    }

    /// Direct view of the persistent byte store (verification only).
    ///
    /// # Panics
    ///
    /// Panics on a multi-channel set: there is no single flat store —
    /// merge a crash image or aggregate [`ChannelSet::wear_report`]
    /// instead.
    pub fn store(&self) -> &NvmStore {
        assert_eq!(
            self.channels.len(),
            1,
            "store() is only meaningful on a single-channel set"
        );
        self.channels[0].store()
    }

    /// Endurance summary across every channel: per-line maxima are the
    /// machine maxima, totals are summed.
    pub fn wear_report(&self) -> WearReport {
        let mut out = WearReport::default();
        for mc in &self.channels {
            let w = mc.store().wear_report();
            out.max_data_wear = out.max_data_wear.max(w.max_data_wear);
            out.max_counter_wear = out.max_counter_wear.max(w.max_counter_wear);
            out.total_data_writes += w.total_data_writes;
            out.total_counter_writes += w.total_counter_writes;
        }
        out
    }

    /// Lends the shared probe hub, statistics, and armed-crash countdown
    /// to channel `ch` for one call. If the call trips the armed crash,
    /// the sibling channels are snapshotted immediately after it returns
    /// — exact, because calls are serialized on the machine clock.
    fn with_channel<R>(&mut self, ch: usize, f: impl FnOnce(&mut MemoryController) -> R) -> R {
        self.swap_shared(ch);
        let r = f(&mut self.channels[ch]);
        self.swap_shared(ch);
        if let Some(img) = self.channels[ch].take_crash_image() {
            self.machine_image = Some(self.machine_image_with(ch, img));
        }
        r
    }

    fn swap_shared(&mut self, ch: usize) {
        let mc = &mut self.channels[ch];
        std::mem::swap(&mut self.probes, mc.probes_mut());
        std::mem::swap(&mut self.stats, mc.stats_mut());
        std::mem::swap(&mut self.armed, mc.armed_crash_mut());
    }

    /// A machine image in which channel `ch` contributes the frozen
    /// `img` and every sibling is snapshotted as of now.
    fn machine_image_with(&self, ch: usize, img: CrashImage) -> MachineCrashImage {
        MachineCrashImage {
            channels: self
                .channels
                .iter()
                .enumerate()
                .map(|(i, mc)| if i == ch { img.clone() } else { mc.crash_now() })
                .collect(),
        }
    }

    /// Advances every channel but `target` to `at`, so the banks of the
    /// whole machine share one clock. A no-op on a single channel.
    ///
    /// This call is the cross-channel *barrier* of the intra-run
    /// parallel engine. Two exact shortcuts apply at every
    /// `run_threads` setting:
    ///
    /// * channels whose write queue provably cannot issue by `at`
    ///   ([`MemoryController::would_drain`]) are skipped outright — the
    ///   skipped drain would have had no side effects;
    /// * with `run_threads > 1`, the remaining sibling drains run on
    ///   worker threads. A drain touches only channel-local state
    ///   (pages interleave `channel = page % channels`, so banks,
    ///   store, and queue are disjoint per channel), never appends
    ///   (the armed-crash countdown cannot trip), and never records
    ///   transactions, so each channel accumulates into a private
    ///   [`Stats`] and a private event tape; after the join the stats
    ///   merge additively and the tapes replay into the shared hub in
    ///   ascending channel order — byte-for-byte the sequential
    ///   stream.
    fn drain_others(&mut self, target: usize, at: Cycle) {
        if self.channels.len() == 1 {
            return;
        }
        if self.run_threads > 1 {
            self.drain_others_threaded(target, at);
            return;
        }
        for ch in 0..self.channels.len() {
            if ch != target && self.channels[ch].would_drain(at) {
                self.with_channel(ch, |mc| mc.drain_until(at));
            }
        }
    }

    /// The `run_threads > 1` body of [`ChannelSet::drain_others`]:
    /// fork-join over the sibling channels that have work, merging
    /// deterministically afterwards.
    fn drain_others_threaded(&mut self, target: usize, at: Cycle) {
        let record_events = self.probes.is_active();
        let mut pending: Vec<(usize, &mut MemoryController)> = self
            .channels
            .iter_mut()
            .enumerate()
            .filter(|(ch, mc)| *ch != target && mc.would_drain(at))
            .collect();
        if pending.is_empty() {
            return;
        }
        if record_events {
            for (_, mc) in &mut pending {
                mc.attach_observer(Box::new(EventTape::default()));
            }
        }
        let workers = self.run_threads.min(pending.len());
        if workers > 1 {
            let chunk = pending.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for batch in pending.chunks_mut(chunk) {
                    scope.spawn(move || {
                        for (_, mc) in batch {
                            mc.drain_until(at);
                        }
                    });
                }
            });
        } else {
            for (_, mc) in &mut pending {
                mc.drain_until(at);
            }
        }
        // Deterministic merge, in ascending channel order (`pending`
        // preserves it): fold each channel's private stats delta into
        // the machine stats — drains only bump additive counters, so
        // the sums equal the sequential path's — and replay each
        // channel's event tape into the shared hub.
        for (_, mc) in &mut pending {
            let delta = std::mem::take(mc.stats_mut());
            self.stats.merge(&delta);
            if record_events {
                for mut obs in mc.take_observers() {
                    // Justified panic: sibling drains attach only EventTape
                    // observers (see the attach sites in this fn's callers),
                    // so the downcast cannot fail.
                    #[allow(clippy::disallowed_methods)]
                    let tape = obs
                        .as_any_mut()
                        .downcast_mut::<EventTape>()
                        .map(std::mem::take)
                        .expect("sibling drains attach only EventTape observers");
                    for ev in tape.into_events() {
                        self.probes.emit_with(move || ev);
                    }
                }
            }
        }
    }

    /// Routes a cache-line flush to the owning channel (Figure 7 write
    /// sequence). Returns the retire cycle.
    pub fn flush_line(&mut self, line: LineAddr, plaintext: LineData, at: Cycle) -> Cycle {
        let ch = self.channels[0].map().line_channel(line);
        self.drain_others(ch, at);
        self.with_channel(ch, |mc| mc.flush_line(line, plaintext, at))
    }

    /// Routes a demand read to the owning channel; returns the plaintext
    /// and the completion cycle.
    pub fn read_line(&mut self, line: LineAddr, at: Cycle) -> (LineData, Cycle) {
        let ch = self.channels[0].map().line_channel(line);
        self.drain_others(ch, at);
        self.with_channel(ch, |mc| mc.read_line(line, at))
    }

    /// Lets every channel's write queue issue what can start by `now`.
    pub fn drain_until(&mut self, now: Cycle) {
        for ch in 0..self.channels.len() {
            if self.channels[ch].would_drain(now) {
                self.with_channel(ch, |mc| mc.drain_until(now));
            }
        }
    }

    /// Explicitly writes back one page's dirty counter line from the
    /// owning channel's write-back counter cache. Returns the retire
    /// cycle, or `at` if the page's counters are clean or absent.
    pub fn writeback_page_counters(&mut self, page: PageId, at: Cycle) -> Cycle {
        let ch = self.channels[0].map().page_channel(page);
        self.with_channel(ch, |mc| mc.writeback_page_counters(page, at))
    }

    /// Propagates every channel's armed streaming-tree updates into its
    /// write queue (the persistence fence of the lazy tree). A no-op in
    /// eager mode, so fences cost nothing there.
    pub fn fence_tree_flush(&mut self, at: Cycle) {
        if !self.channels[0].config().streaming_tree() {
            return;
        }
        for ch in 0..self.channels.len() {
            self.with_channel(ch, |mc| mc.fence_tree_flush(at));
        }
    }

    /// Clean shutdown of every channel. Returns the cycle the last write
    /// of the machine began service.
    pub fn finish(&mut self, from: Cycle) -> Cycle {
        let mut done = from;
        for ch in 0..self.channels.len() {
            done = done.max(self.with_channel(ch, |mc| mc.finish(from)));
        }
        done
    }

    /// Arms a crash that triggers after `appends` more append events on
    /// any channel (the countdown is machine-global). The frozen image
    /// is retrievable with [`ChannelSet::take_crash_image`] or
    /// [`ChannelSet::take_machine_crash_image`].
    ///
    /// # Panics
    ///
    /// Panics if `appends` is zero.
    pub fn arm_crash_after_appends(&mut self, appends: u64) {
        assert!(appends > 0, "crash countdown must be positive");
        self.armed = Some(appends);
        self.machine_image = None;
    }

    /// The merged image frozen by an armed crash, if it has triggered.
    pub fn take_crash_image(&mut self) -> Option<CrashImage> {
        self.machine_image.take().map(MachineCrashImage::merged)
    }

    /// The per-channel image frozen by an armed crash, if it has
    /// triggered.
    pub fn take_machine_crash_image(&mut self) -> Option<MachineCrashImage> {
        self.machine_image.take()
    }

    /// Simulates an immediate power failure across all channels and
    /// returns the merged surviving NVM image.
    pub fn crash_now(&self) -> CrashImage {
        self.machine_crash_now().merged()
    }

    /// Simulates an immediate power failure across all channels,
    /// keeping the per-channel images separate.
    pub fn machine_crash_now(&self) -> MachineCrashImage {
        MachineCrashImage {
            channels: self
                .channels
                .iter()
                .map(MemoryController::crash_now)
                .collect(),
        }
    }

    /// Makes the next power event go wrong per `spec` on the channel the
    /// spec's seed selects (a media fault strikes one DIMM; the others
    /// drain cleanly).
    pub fn set_fault_plan(&mut self, spec: FaultSpec) {
        let ch = (spec.seed as usize) % self.channels.len();
        self.channels[ch].set_fault_plan(spec);
    }

    /// Fail-stops a bank by machine-global index: channel
    /// `bank / banks_per_channel`, local bank `bank % banks_per_channel`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn mark_bank_failed(&mut self, bank: usize) {
        let ch = bank / self.banks_per_channel;
        assert!(ch < self.channels.len(), "bank {bank} out of range");
        self.channels[ch].mark_bank_failed(bank % self.banks_per_channel);
    }

    /// True when any bank of any channel has fail-stopped.
    pub fn is_degraded(&self) -> bool {
        self.channels.iter().any(MemoryController::is_degraded)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use supermem_crypto::{CounterLine, EncryptionEngine};
    use supermem_nvm::fault::FaultClass;

    fn cfg(channels: usize) -> Config {
        Config::default().with_channels(channels)
    }

    #[test]
    fn single_channel_matches_bare_controller_exactly() {
        // The wrapper must be transparent at channels = 1: same retire
        // cycles, same statistics, same crash image contents.
        let mut set = ChannelSet::new(&cfg(1));
        let mut mc = MemoryController::new(&cfg(1));
        let mut t_set = 0;
        let mut t_mc = 0;
        for i in 0..32u64 {
            let line = LineAddr(i * 4096);
            t_set = set.flush_line(line, [i as u8; 64], t_set);
            t_mc = mc.flush_line(line, [i as u8; 64], t_mc);
            assert_eq!(t_set, t_mc, "retire cycle diverged at flush {i}");
        }
        assert_eq!(set.finish(t_set), mc.finish(t_mc));
        assert_eq!(set.stats().nvm_data_writes, mc.stats().nvm_data_writes);
        assert_eq!(set.stats().bank_writes, mc.stats().bank_writes);
        let a = set.crash_now();
        let b = mc.crash_now();
        for line in b.store.data_lines() {
            assert_eq!(a.store.read_data(line), b.store.read_data(line));
        }
    }

    #[test]
    fn writes_route_to_owning_channel() {
        let mut set = ChannelSet::new(&cfg(4));
        let mut t = 0;
        for p in 0..8u64 {
            t = set.flush_line(LineAddr(p * 4096), [p as u8; 64], t);
        }
        set.finish(t);
        for (ch, mc) in set.channels().iter().enumerate() {
            let lines = mc.store().data_lines();
            assert!(!lines.is_empty(), "channel {ch} got no writes");
            for line in lines {
                assert_eq!(
                    set.map().line_channel(line),
                    ch,
                    "line {line:?} landed on the wrong channel"
                );
            }
        }
    }

    #[test]
    fn round_trips_across_channels() {
        let mut set = ChannelSet::new(&cfg(2));
        let mut t = 0;
        for p in 0..16u64 {
            t = set.flush_line(LineAddr(p * 4096 + 128), [0xA0 + p as u8; 64], t);
        }
        for p in 0..16u64 {
            let (data, done) = set.read_line(LineAddr(p * 4096 + 128), t);
            assert_eq!(data, [0xA0 + p as u8; 64]);
            t = done;
        }
    }

    #[test]
    fn merged_crash_image_unions_all_channels() {
        let mut set = ChannelSet::new(&cfg(2));
        let mut t = 0;
        for p in 0..4u64 {
            t = set.flush_line(LineAddr(p * 4096), [0x10 + p as u8; 64], t);
        }
        let image = set.crash_now();
        let key = cfg(2).encryption_key();
        let engine = EncryptionEngine::new(key);
        for p in 0..4u64 {
            let line = LineAddr(p * 4096);
            let ctr = CounterLine::decode(&image.store.read_counter(PageId(p)));
            assert_eq!(ctr.minor(0), 1, "page {p} counter persisted");
            let plain = engine.decrypt_line(&image.store.read_data(line), line.0, 0, 1);
            assert_eq!(plain, [0x10 + p as u8; 64], "page {p} data persisted");
        }
        let _ = t;
    }

    #[test]
    fn armed_crash_counts_appends_machine_wide() {
        // Pages 0 and 1 live on different channels at channels = 2; the
        // countdown must tick for both.
        let mut set = ChannelSet::new(&cfg(2));
        set.arm_crash_after_appends(2);
        let t = set.flush_line(LineAddr(0), [1; 64], 0);
        assert!(
            set.take_machine_crash_image().is_none(),
            "one append so far"
        );
        set.flush_line(LineAddr(4096), [2; 64], t);
        let image = set.take_machine_crash_image().expect("second append fires");
        assert_eq!(image.channels.len(), 2);
        let merged = image.merged();
        assert_eq!(merged.store.counter_lines().len(), 2);
    }

    #[test]
    fn global_bank_ids_span_channels() {
        let mut set = ChannelSet::new(&cfg(2));
        let mut t = 0;
        // Page 1 lives on channel 1 bank 0 -> global bank 8.
        for p in 0..2u64 {
            t = set.flush_line(LineAddr(p * 4096), [1; 64], t);
        }
        set.finish(t);
        assert_eq!(set.stats().bank_writes.len(), 16);
        assert!(set.stats().bank_writes[0] > 0, "channel 0 bank 0 wrote");
        assert!(set.stats().bank_writes[8] > 0, "channel 1 bank 0 wrote");
    }

    #[test]
    fn fault_plan_routes_by_seed_and_merge_carries_it() {
        let mut set = ChannelSet::new(&cfg(2));
        let mut t = 0;
        for p in 0..4u64 {
            t = set.flush_line(LineAddr(p * 4096), [3; 64], t);
        }
        set.finish(t);
        set.set_fault_plan(FaultSpec {
            class: FaultClass::Torn,
            seed: 1,
        });
        let image = set.machine_crash_now();
        assert!(image.channels[1].store.faults().is_some());
        assert!(image.channels[0].store.faults().is_none());
        let merged = image.merged();
        assert!(
            merged.store.faults().is_some(),
            "merge keeps the fault plan"
        );
    }

    #[test]
    fn worker_threads_preserve_stats_and_event_stream() {
        // Queue work on every channel at small cycles, then force one
        // sibling drain at a far-future cycle: with run_threads > 1
        // that drain takes the fork-join path (3 pending siblings), so
        // this exercises the scoped-thread barrier, the private-stats
        // merge, and the event-tape replay. Also the test the CI miri
        // job interprets to check the barrier for UB and races.
        let run = |threads: usize| {
            let mut set = ChannelSet::new(&cfg(4).with_run_threads(threads));
            set.attach_observer(Box::new(EventTape::default()));
            for i in 0..24u64 {
                let line = LineAddr((i % 4) * 4096 + (i / 4) * 64);
                set.flush_line(line, [i as u8; 64], i);
            }
            let pending = (1..4)
                .filter(|&ch| set.channels()[ch].would_drain(100_000))
                .count();
            assert!(pending >= 2, "barrier must have siblings to fork over");
            let (_, done) = set.read_line(LineAddr(0), 100_000);
            set.finish(done);
            let mut events = Vec::new();
            for mut obs in set.take_observers() {
                if let Some(tape) = obs.as_any_mut().downcast_mut::<EventTape>() {
                    events = std::mem::take(tape).into_events();
                }
            }
            (set.stats().clone(), events)
        };
        let (seq_stats, seq_events) = run(1);
        assert!(!seq_events.is_empty(), "the run must emit events");
        for threads in [2, 4] {
            let (stats, events) = run(threads);
            assert_eq!(stats, seq_stats, "threads={threads}");
            assert_eq!(events, seq_events, "threads={threads}");
        }
    }

    #[test]
    fn global_bank_failure_degrades_only_owning_channel() {
        let mut set = ChannelSet::new(&cfg(2));
        assert!(!set.is_degraded());
        set.mark_bank_failed(8); // channel 1, local bank 0
        assert!(set.is_degraded());
        assert!(!set.channels()[0].is_degraded());
        assert!(set.channels()[1].is_degraded());
    }

    #[test]
    fn wear_report_aggregates_channels() {
        let mut set = ChannelSet::new(&cfg(2));
        let mut t = 0;
        for p in 0..4u64 {
            t = set.flush_line(LineAddr(p * 4096), [1; 64], t);
        }
        set.finish(t);
        let w = set.wear_report();
        assert_eq!(w.total_data_writes, 4);
        assert!(w.max_data_wear >= 1);
    }

    #[test]
    #[should_panic(expected = "single-channel")]
    fn store_rejects_multi_channel_access() {
        let _ = ChannelSet::new(&cfg(2)).store();
    }
}
