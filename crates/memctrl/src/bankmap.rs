//! Counter-line bank placement (paper §3.3, Figure 8).
//!
//! Given the bank holding a data page, decide which bank holds that
//! page's counter line:
//!
//! * **SingleBank** — all counters in one dedicated bank (the last one,
//!   as in Figure 8a). Every data write anywhere funnels a counter write
//!   into that bank, which becomes the bottleneck under write-through.
//! * **SameBank** — counters co-located with their data (Figure 8b). The
//!   same bank then serves two serialized writes per data write.
//! * **CrossBank (XBank)** — the counter of data in bank `X` lives in
//!   bank `(X + N/2) mod N` (Figure 8c), maximizing the distance so
//!   OS-contiguous allocations in adjacent banks don't collide with
//!   their own counters.

use supermem_sim::CounterPlacement;

/// Returns the bank that stores the counter line for data in `data_bank`.
///
/// # Panics
///
/// Panics if `data_bank >= banks`, or if `banks` is odd with
/// [`CounterPlacement::CrossBank`] (the N/2 offset needs an even count).
///
/// # Examples
///
/// ```
/// use supermem_memctrl::counter_bank;
/// use supermem_sim::CounterPlacement;
///
/// // Figure 8c: with 8 banks, data in bank 0 keeps its counters in bank 4.
/// assert_eq!(counter_bank(CounterPlacement::CrossBank, 0, 8), 4);
/// assert_eq!(counter_bank(CounterPlacement::CrossBank, 5, 8), 1);
/// assert_eq!(counter_bank(CounterPlacement::SingleBank, 5, 8), 7);
/// assert_eq!(counter_bank(CounterPlacement::SameBank, 5, 8), 5);
/// ```
pub fn counter_bank(placement: CounterPlacement, data_bank: usize, banks: usize) -> usize {
    assert!(
        data_bank < banks,
        "bank {data_bank} out of range ({banks} banks)"
    );
    match placement {
        CounterPlacement::SingleBank => banks - 1,
        CounterPlacement::SameBank => data_bank,
        CounterPlacement::CrossBank => {
            assert!(banks.is_multiple_of(2), "XBank requires an even bank count");
            (data_bank + banks / 2) % banks
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8c_mapping_for_8_banks() {
        // The full one-to-one mapping of Figure 8c.
        let expect = [4, 5, 6, 7, 0, 1, 2, 3];
        for (data, &ctr) in expect.iter().enumerate() {
            assert_eq!(counter_bank(CounterPlacement::CrossBank, data, 8), ctr);
        }
    }

    #[test]
    fn xbank_is_a_bijection() {
        for banks in [2usize, 4, 8, 16] {
            let mut seen = vec![false; banks];
            for b in 0..banks {
                let c = counter_bank(CounterPlacement::CrossBank, b, banks);
                assert!(!seen[c], "counter bank {c} reused");
                seen[c] = true;
                // XBank never maps a counter onto its own data bank.
                assert_ne!(c, b);
            }
        }
    }

    #[test]
    fn single_bank_always_last() {
        for b in 0..8 {
            assert_eq!(counter_bank(CounterPlacement::SingleBank, b, 8), 7);
        }
    }

    #[test]
    fn same_bank_is_identity() {
        for b in 0..8 {
            assert_eq!(counter_bank(CounterPlacement::SameBank, b, 8), b);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_bank() {
        counter_bank(CounterPlacement::SameBank, 8, 8);
    }

    #[test]
    #[should_panic(expected = "even bank count")]
    fn xbank_rejects_odd_banks() {
        counter_bank(CounterPlacement::CrossBank, 0, 3);
    }
}
