//! The SuperMem memory controller.
//!
//! This crate is the paper's hardware contribution: the modified memory
//! controller that makes counter-mode encrypted NVM crash consistent with
//! a write-through counter cache, and fast again via counter write
//! coalescing (CWC) and cross-bank counter storage (XBank).
//!
//! * [`bankmap`] — counter-line bank placement: SingleBank, SameBank, or
//!   the paper's XBank `(X + N/2) mod N` (§3.3, Figure 8).
//! * [`wqueue`] — the ADR-protected write queue with the per-entry
//!   "from counter cache" flag bit and CWC coalescing (§3.4.3,
//!   Figures 10–11).
//! * [`rsr`] — the re-encryption status register that makes
//!   minor-counter-overflow page re-encryption crash consistent (§3.4.4).
//! * [`controller`] — the controller proper: the Figure 7 write sequence
//!   as a staged pipeline (drain → counter update → encrypt → append),
//!   the decrypt-overlapped read path, crash snapshots with ADR drain,
//!   and page re-encryption.
//! * [`channel`] — the interleaved multi-channel front end: one
//!   controller per channel behind a single-controller interface, with
//!   machine-wide statistics, probes, and crash arming.
//!
//! # Examples
//!
//! ```
//! use supermem_memctrl::MemoryController;
//! use supermem_nvm::addr::LineAddr;
//! use supermem_sim::Config;
//!
//! let mut mc = MemoryController::new(&Config::default());
//! let retire = mc.flush_line(LineAddr(0x40), [42u8; 64], 0);
//! assert!(retire > 0);
//! let (data, _done) = mc.read_line(LineAddr(0x40), retire);
//! assert_eq!(data, [42u8; 64]);
//! ```
#![warn(missing_docs)]

pub mod bankmap;
pub mod channel;
pub mod controller;
pub mod rsr;
pub mod wqueue;

pub use bankmap::counter_bank;
pub use channel::{ChannelSet, MachineCrashImage};
pub use controller::{CrashImage, MemoryController};
pub use rsr::Rsr;
pub use wqueue::{WqEntry, WqTarget, WriteQueue};
