//! The re-encryption status register (paper §3.4.4).
//!
//! When a 7-bit minor counter overflows, the whole page is re-encrypted
//! under `major + 1` with zeroed minors. A crash in the middle would
//! leave some lines under the old counters and some under the new, with
//! no way to tell which — unless the 20-byte RSR (page number, old major
//! counter, 64 done bits) sits inside the ADR battery domain and survives
//! the crash. Recovery then finishes exactly the missing lines.
//!
//! Crucially, the page's *counter line in NVM keeps its old contents*
//! until every data line is re-encrypted, so the not-yet-done lines stay
//! decryptable from NVM state alone (old major and old minors), while
//! done lines decrypt with `(old_major + 1, 0)` — both derivable from
//! NVM + RSR.

use supermem_nvm::addr::PageId;

/// The ADR-protected re-encryption status register.
///
/// # Examples
///
/// ```
/// use supermem_memctrl::Rsr;
/// use supermem_nvm::addr::PageId;
///
/// let mut rsr = Rsr::new(PageId(9), 3);
/// assert!(!rsr.is_done(0));
/// rsr.set_done(0);
/// assert!(rsr.is_done(0));
/// assert!(!rsr.all_done());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rsr {
    page: PageId,
    old_major: u64,
    done: u64,
}

impl Rsr {
    /// Starts tracking re-encryption of `page`, which was encrypted under
    /// `old_major` before the overflow.
    pub fn new(page: PageId, old_major: u64) -> Self {
        Self {
            page,
            old_major,
            done: 0,
        }
    }

    /// The page being re-encrypted.
    pub fn page(&self) -> PageId {
        self.page
    }

    /// The page's major counter before the overflow.
    pub fn old_major(&self) -> u64 {
        self.old_major
    }

    /// Marks line `idx` of the page as re-encrypted.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 64`.
    pub fn set_done(&mut self, idx: usize) {
        assert!(idx < 64, "line index {idx} out of page");
        self.done |= 1 << idx;
    }

    /// Whether line `idx` has been re-encrypted.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 64`.
    pub fn is_done(&self, idx: usize) -> bool {
        assert!(idx < 64, "line index {idx} out of page");
        self.done & (1 << idx) != 0
    }

    /// Whether all 64 lines are done (the RSR can be freed once the new
    /// counter line is durable).
    pub fn all_done(&self) -> bool {
        self.done == u64::MAX
    }

    /// Number of lines already re-encrypted.
    pub fn done_count(&self) -> u32 {
        self.done.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_progress_bit_per_line() {
        let mut r = Rsr::new(PageId(1), 7);
        assert_eq!(r.done_count(), 0);
        r.set_done(0);
        r.set_done(63);
        assert!(r.is_done(0));
        assert!(r.is_done(63));
        assert!(!r.is_done(32));
        assert_eq!(r.done_count(), 2);
    }

    #[test]
    fn all_done_only_with_all_64_bits() {
        let mut r = Rsr::new(PageId(0), 0);
        for i in 0..63 {
            r.set_done(i);
        }
        assert!(!r.all_done());
        r.set_done(63);
        assert!(r.all_done());
    }

    #[test]
    fn set_done_is_idempotent() {
        let mut r = Rsr::new(PageId(0), 0);
        r.set_done(5);
        r.set_done(5);
        assert_eq!(r.done_count(), 1);
    }

    #[test]
    fn preserves_identity_fields() {
        let r = Rsr::new(PageId(42), 0xDEAD);
        assert_eq!(r.page(), PageId(42));
        assert_eq!(r.old_major(), 0xDEAD);
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn rejects_out_of_range_index() {
        Rsr::new(PageId(0), 0).set_done(64);
    }
}
