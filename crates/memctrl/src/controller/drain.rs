//! Drain stage of the write path: write-queue issue, slot
//! backpressure, and clean shutdown.
//!
//! Everything here is about *emptying* the ADR write queue into the NVM
//! banks — the opposite end of the pipeline from the append stage. The
//! queue itself owns the issue scheduling; this stage decides when it
//! runs and how flushes block on a full queue.

use supermem_sim::Cycle;

use super::MemoryController;

impl MemoryController {
    /// Lets the write queue issue everything that can start by `now`.
    pub fn drain_until(&mut self, now: Cycle) {
        self.wq.drain_until(
            now,
            &mut self.banks,
            &mut self.store,
            &mut self.stats,
            &mut self.probes,
        );
    }

    /// Whether [`MemoryController::drain_until`]`(now)` could issue
    /// anything. A `false` is exact (empty queue, or every pending
    /// entry provably starts after `now`), so callers may skip the
    /// drain — and in particular skip the cross-channel state swap the
    /// [`ChannelSet`](crate::ChannelSet) performs around sibling drains.
    pub fn would_drain(&self, now: Cycle) -> bool {
        self.wq.may_issue_by(now)
    }

    /// Blocks (in simulated time) until `needed` queue slots are free,
    /// draining entries as banks become available. Returns the cycle at
    /// which the slots are guaranteed.
    pub(super) fn wait_slots(&mut self, needed: usize, from: Cycle) -> Cycle {
        self.wq.wait_for_slots(
            needed,
            from,
            &mut self.banks,
            &mut self.store,
            &mut self.stats,
            &mut self.probes,
        )
    }

    /// Clean shutdown: flushes dirty write-back counters, propagates any
    /// armed streaming-tree updates, and drains the write queue. Returns
    /// the cycle the last write began service.
    pub fn finish(&mut self, from: Cycle) -> Cycle {
        let mut t = from;
        for (page, ctr) in self.cc.drain_dirty() {
            self.stats.counter_cache_writebacks += 1;
            let t_app = self.wait_slots(1, t);
            self.append_counter(page, ctr.encode(), t_app);
            t = t_app;
        }
        // Unconditional (not the mutation-gated fence hook): even the
        // tree-late mutant persists its tree at clean shutdown.
        self.flush_tree_pending(t);
        self.wq.drain_all(
            t,
            &mut self.banks,
            &mut self.store,
            &mut self.stats,
            &mut self.probes,
        )
    }
}
