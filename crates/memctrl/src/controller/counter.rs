//! Counter-update stage of the write path.
//!
//! Owns every interaction with the split-counter metadata: fetching the
//! authoritative counter line (counter cache, forwarded write-queue
//! entry, or NVM), incrementing minors, resolving a minor overflow via
//! whole-page re-encryption (§3.4.4), and pushing counter lines back
//! toward NVM from the write-back cache.

use supermem_crypto::counter::IncrementOutcome;
use supermem_crypto::CounterLine;
use supermem_integrity::Propagation;
use supermem_nvm::addr::PageId;
use supermem_nvm::bank::OpKind;
use supermem_sim::{Cycle, Event, Mutation};

use crate::wqueue::WqTarget;

use super::{MemoryController, FORWARD_LATENCY};

impl MemoryController {
    /// Fetches the counter, increments the target minor, and resolves a
    /// minor overflow by re-encrypting the whole page before retrying
    /// the increment. Returns the post-increment counters and the cycle
    /// at which they are ready.
    pub(super) fn counter_update(
        &mut self,
        page: PageId,
        idx: usize,
        at: Cycle,
    ) -> (CounterLine, Cycle) {
        let (mut ctr, mut t_ctr) = self.fetch_counter(page, at);
        if ctr.increment(idx) == IncrementOutcome::Overflow {
            t_ctr = self.reencrypt_page(page, &mut ctr, t_ctr);
            match ctr.increment(idx) {
                IncrementOutcome::Incremented(_) => {}
                IncrementOutcome::Overflow => unreachable!("fresh minors cannot overflow"),
            }
        }
        (ctr, t_ctr)
    }

    /// Fetches the authoritative counters for `page`: counter cache, then
    /// a pending write-queue entry (the NVM copy may lag it), then NVM.
    /// Returns the counters and the cycle at which they are available.
    pub(super) fn fetch_counter(&mut self, page: PageId, at: Cycle) -> (CounterLine, Cycle) {
        let t = at + self.cfg.counter_cache_latency;
        if let Some(ctr) = self.cc.get(page) {
            let ctr = ctr.clone();
            self.stats.counter_cache_hits += 1;
            self.probes.emit_with(|| Event::CounterCacheHit {
                page: page.0,
                at: t,
            });
            return (ctr, t);
        }
        self.stats.counter_cache_misses += 1;
        self.probes.emit_with(|| Event::CounterCacheMiss {
            page: page.0,
            at: t,
        });
        if let Some(entry) = self.wq.forward_counter(page) {
            self.stats.wq_read_forwards += 1;
            let ctr = CounterLine::decode(&entry.payload);
            self.fill_counter_cache(page, ctr.clone(), t + FORWARD_LATENCY);
            return (ctr, t + FORWARD_LATENCY);
        }
        let bank = self.ctr_bank(page);
        if self.banks[bank].is_failed() {
            // Degraded mode: poison (fresh, all-zero) counters; skip
            // the cache fill so later reads can see a repaired bank.
            self.stats.poisoned_reads += 1;
            return (CounterLine::decode(&[0; 64]), t + 1);
        }
        let mut done = self.banks[bank].issue(OpKind::Read, t);
        self.stats.nvm_counter_reads += 1;
        let read_service = self.cfg.nvm_read_service_cycles();
        let gbank = self.bank_base + bank;
        self.probes.emit_with(|| Event::BankBusy {
            bank: gbank,
            start: done - read_service,
            end: done,
            write: false,
        });
        let (raw, done_media) = self.media_read_counter(page, bank, done);
        done = done_media;
        let Some(raw) = raw else {
            self.stats.poisoned_reads += 1;
            return (CounterLine::decode(&[0; 64]), done);
        };
        // Counters arriving from (attacker-writable) NVM are verified
        // against the trusted root before use. In streaming mode any
        // armed update for this page must propagate first, or the leaf
        // digest would lag the line the write queue already drained.
        if self.bmt.is_some() && page.0 < self.cfg.integrity_pages {
            if self.cfg.streaming_tree() {
                let prop = match &mut self.bmt {
                    Some(bmt) => bmt.propagate_page(page.0),
                    None => None,
                };
                if let Some(prop) = prop {
                    self.apply_tree_propagation(&prop, done);
                }
            }
            if let Some(bmt) = &self.bmt {
                self.stats.integrity_verifications += 1;
                done += self.cfg.hash_latency * bmt.height() as Cycle;
                if !bmt.verify(page.0, &raw) {
                    self.stats.integrity_violations += 1;
                }
            }
        }
        let ctr = CounterLine::decode(&raw);
        self.fill_counter_cache(page, ctr.clone(), done);
        (ctr, done)
    }

    /// Inserts counters into the counter cache; a dirty write-back
    /// eviction becomes a counter write to NVM.
    fn fill_counter_cache(&mut self, page: PageId, ctr: CounterLine, at: Cycle) {
        if let Some((evicted_page, evicted_ctr, dirty)) = self.cc.fill(page, ctr) {
            if dirty {
                self.stats.counter_cache_writebacks += 1;
                let t = self.wait_slots(1, at);
                self.append_counter(evicted_page, evicted_ctr.encode(), t);
                self.note_append_event();
            }
        }
    }

    /// Folds a counter write into the integrity tree (the hash engine
    /// runs alongside the write path; its latency is off the retire
    /// critical path because the tree root is an on-chip register).
    ///
    /// Eager mode recomputes the whole path to the root synchronously.
    /// Streaming mode instead *arms* the leaf digest in the bounded
    /// pending-update cache; repeat writes to the same page coalesce in
    /// place, and a full cache evicts its oldest entry, whose
    /// persisted-level node updates enter the write queue as
    /// first-class traffic.
    pub(super) fn note_counter_write(&mut self, page: PageId, encoded: &[u8; 64], at: Cycle) {
        if self.bmt.is_none() || page.0 >= self.cfg.integrity_pages {
            return;
        }
        if !self.cfg.streaming_tree() {
            if let Some(bmt) = &mut self.bmt {
                bmt.update(page.0, encoded);
            }
            return;
        }
        // Injected defect (tree-skip): the counter line enqueues but
        // the tree is never armed — its data can drain uncovered (T2).
        if self.cfg.mutation == Some(Mutation::TreeSkip) {
            return;
        }
        self.stats.tree_updates_enqueued += 1;
        self.probes
            .emit_with(|| Event::TreeArm { page: page.0, at });
        let outcome = match &mut self.bmt {
            Some(bmt) => bmt.enqueue_update(page.0, encoded),
            None => return, // unreachable: bmt presence checked above
        };
        if outcome.coalesced {
            self.stats.tree_updates_coalesced += 1;
        }
        if let Some(prop) = outcome.eviction {
            self.stats.tree_evictions += 1;
            self.apply_tree_propagation(&prop, at);
        }
    }

    /// Lands a finished propagation: per-leaf accounting and root
    /// latching, then one write-queue append per touched persisted-level
    /// node-group line (visible to stats, probes, and bank scheduling
    /// like any other write).
    pub(super) fn apply_tree_propagation(&mut self, prop: &Propagation, at: Cycle) {
        for &page in &prop.pages {
            self.stats.tree_propagations += 1;
            self.probes.emit_with(|| Event::TreePropagate { page, at });
            // The on-chip root register latches exactly once per
            // propagated leaf.
            self.probes.emit_with(|| Event::TreeRootUpdate { at });
            if self.cfg.mutation == Some(Mutation::TreeDoubleRoot) {
                // Injected defect: a second spurious latch per leaf —
                // T3's exactly-once audit must notice.
                self.probes.emit_with(|| Event::TreeRootUpdate { at });
            }
        }
        for w in &prop.node_writes {
            let id = w.line_id();
            let bank = self.tree_bank(id);
            // Three slots: this append plus headroom for a staged
            // data+counter pair the caller may already have reserved
            // (Config::validate guarantees capacity >= 4 in streaming
            // mode).
            let t = self.wait_slots(3, at);
            let seq = self.wq.append(WqTarget::Tree(id), bank, w.payload, None, t);
            let level = w.level;
            self.probes.emit_with(|| Event::TreeNodeEnqueue {
                level,
                line: id,
                seq,
                at: t,
            });
        }
    }

    /// Flushes every armed leaf update out of the streaming pending
    /// cache. After this call the persisted-level node updates are in
    /// the ADR write queue and the root register is current. No-op in
    /// eager mode (the tree is always current there).
    pub(super) fn flush_tree_pending(&mut self, at: Cycle) {
        if !self.cfg.streaming_tree() {
            return;
        }
        let prop = match &mut self.bmt {
            Some(bmt) if bmt.pending_len() > 0 => bmt.propagate_pending(),
            _ => return,
        };
        self.apply_tree_propagation(&prop, at);
    }

    /// The fence hook of the streaming tree: an `sfence` must not retire
    /// with armed leaf updates still pending (T1), so the fence drains
    /// the pending cache.
    pub fn fence_tree_flush(&mut self, at: Cycle) {
        // Injected defect (tree-late): the fence "forgets" the tree —
        // armed updates stay pending across the retire.
        if self.cfg.mutation == Some(Mutation::TreeLate) {
            return;
        }
        self.flush_tree_pending(at);
    }

    /// Destination bank of a tree node-group line (hashed over the
    /// packed line id; tree metadata interleaves across all banks).
    pub(super) fn tree_bank(&self, id: u64) -> usize {
        (id % self.cfg.banks as u64) as usize
    }

    /// Dirty counter-cache entries (crash snapshots of a battery-backed
    /// write-back cache persist these).
    pub(super) fn cc_dirty_entries(&self) -> Vec<(PageId, CounterLine)> {
        self.cc.dirty_entries()
    }

    /// Re-encrypts `page` after a minor-counter overflow (§3.4.4):
    /// reads all 64 lines, decrypts under the old counters, re-encrypts
    /// under `major + 1` with zeroed minors, and appends the rewrites.
    /// `ctr` is updated in place. The caller persists the new counter
    /// line through its normal path.
    fn reencrypt_page(&mut self, page: PageId, ctr: &mut CounterLine, at: Cycle) -> Cycle {
        self.stats.pages_reencrypted += 1;
        self.probes
            .emit_with(|| Event::ReencryptStart { page: page.0, at });
        // No stale ciphertext for this page may drain after the rewrite:
        // push out everything pending first.
        let t0 = self.wq.drain_all(
            at,
            &mut self.banks,
            &mut self.store,
            &mut self.stats,
            &mut self.probes,
        );
        let old = ctr.clone();
        self.rsr = Some(crate::rsr::Rsr::new(page, old.major()));
        ctr.bump_major();
        let data_bank = self.map.page_bank(page);
        let gbank = self.bank_base + data_bank;
        let mut t = t0;
        for idx in 0..self.map.lines_per_page() as usize {
            let line = self.map.line_in_page(page, idx);
            let done_read = self.banks[data_bank].issue(OpKind::Read, t);
            self.stats.nvm_data_reads += 1;
            let read_service = self.cfg.nvm_read_service_cycles();
            self.probes.emit_with(|| Event::BankBusy {
                bank: gbank,
                start: done_read - read_service,
                end: done_read,
                write: false,
            });
            let cipher_old = self.store.read_data(line);
            let plain = self
                .engine
                .decrypt_line(&cipher_old, line.0, old.major(), old.minor(idx));
            let cipher_new = self.engine.encrypt_line(&plain, line.0, ctr.major(), 0);
            let tag = self
                .cfg
                .osiris_window
                .map(|_| supermem_crypto::line_tag(&plain));
            let t_app = self.wait_slots(1, done_read + self.cfg.aes_latency);
            let seq = self.wq.append_tagged(
                WqTarget::Data(line),
                data_bank,
                cipher_new,
                Some((ctr.major(), 0)),
                tag,
                t_app,
            );
            self.note_enqueue(WqTarget::Data(line), data_bank, t_app, seq);
            // Injected defect (rsr-skip): line 0's done-bit is never set,
            // so the RSR can never retire and a crash after this rewrite
            // replays the line under an ambiguous epoch.
            let skip_done = self.cfg.mutation == Some(supermem_sim::Mutation::RsrSkip) && idx == 0;
            if !skip_done {
                if let Some(r) = self.rsr.as_mut() {
                    r.set_done(idx);
                    self.probes.emit_with(|| Event::RsrMarkDone {
                        page: page.0,
                        idx: idx as u32,
                        at: t_app,
                    });
                }
            }
            self.note_append_event();
            t = t_app;
        }
        let lines = self.map.lines_per_page() as u32;
        self.probes.emit_with(|| Event::ReencryptDone {
            page: page.0,
            lines,
            at: t,
        });
        t
    }

    /// Explicitly writes back one page's dirty counter line from the
    /// write-back counter cache (the `counter_cache_writeback()`
    /// primitive of Liu et al.'s selective counter-atomicity, discussed
    /// in the paper's §2.3/§6). Returns the retire cycle, or `at` if the
    /// page's counters are clean or absent.
    pub fn writeback_page_counters(&mut self, page: PageId, at: Cycle) -> Cycle {
        // Only dirty entries need persisting; `is_dirty` tests this
        // without LRU side effects (and, unlike snapshotting the full
        // dirty set, without cloning every dirty counter line).
        if !self.cc.is_dirty(page) {
            return at;
        }
        // Justified panic: `is_dirty` returned true just above, and only
        // resident pages can be dirty.
        #[allow(clippy::disallowed_methods)]
        let encoded = self
            .cc
            .peek(page)
            .expect("dirty page must be resident")
            .encode();
        let t = self.wait_slots(1, at + self.cfg.counter_cache_latency);
        self.append_counter(page, encoded, t);
        self.note_append_event();
        self.cc.clear_dirty(page);
        t
    }
}
