//! Encrypt stage of the write path (`AES` + `Sto` in Figure 7).
//!
//! Seals a plaintext line under its freshly incremented counter and
//! stamps the cycle at which the ciphertext has cleared the AES
//! pipeline and the staging-register store. The output bundle is the
//! only thing the append stage needs to know about the line's contents.

use supermem_crypto::CounterLine;
use supermem_nvm::addr::LineAddr;
use supermem_nvm::LineData;
use supermem_sim::Cycle;

use super::{MemoryController, REGISTER_LATENCY};

/// Output of the encrypt stage: one ciphertext line ready for staging,
/// with the counter values it was sealed under.
#[derive(Debug)]
pub(super) struct EncryptedWrite {
    /// Ciphertext bound for NVM.
    pub(super) cipher: LineData,
    /// Major counter the OTP was derived from.
    pub(super) major: u64,
    /// Minor counter the OTP was derived from.
    pub(super) minor: u8,
    /// Osiris plaintext tag, when trial-decryption recovery is on.
    pub(super) tag: Option<u64>,
    /// Cycle at which the line has cleared the AES pipeline and the
    /// staging-register store (`Sto` in Figure 7).
    pub(super) ready: Cycle,
}

impl MemoryController {
    /// Runs the AES pipeline over `plaintext` under the (already
    /// incremented) counters in `ctr` for line `idx` of its page.
    pub(super) fn encrypt_stage(
        &mut self,
        line: LineAddr,
        plaintext: &LineData,
        ctr: &CounterLine,
        idx: usize,
        t_ctr: Cycle,
    ) -> EncryptedWrite {
        let major = ctr.major();
        let minor = ctr.minor(idx);
        let cipher = self.engine.encrypt_line(plaintext, line.0, major, minor);
        // In Osiris mode every data line carries an ECC-derived plaintext
        // tag so post-crash recovery can re-derive stale counters.
        let tag = self
            .cfg
            .osiris_window
            .map(|_| supermem_crypto::line_tag(plaintext));
        EncryptedWrite {
            cipher,
            major,
            minor,
            tag,
            ready: t_ctr + self.cfg.aes_latency + REGISTER_LATENCY,
        }
    }
}
