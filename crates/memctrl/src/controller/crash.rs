//! Crash machinery: power-failure snapshots, armed mid-run crashes,
//! fault-plan injection, and degraded mode.
//!
//! The snapshot logic models what the ADR battery does at power loss —
//! drain the write queue into the array (and, for a battery-backed
//! write-back counter cache, persist the dirty counters) — optionally
//! corrupted by a [`FaultSpec`] describing a torn drain or fail-stopped
//! bank.

use supermem_nvm::bank::BankTimer;
use supermem_nvm::fault::{FaultPlan, FaultSpec};
use supermem_nvm::NvmStore;
use supermem_sim::CounterCacheBacking;

use super::{CrashImage, MemoryController};

impl MemoryController {
    /// Counts one append event against any armed crash; freezes the
    /// image when the countdown hits zero.
    pub(super) fn note_append_event(&mut self) {
        self.append_events += 1;
        if let Some(n) = self.armed_crash.as_mut() {
            *n -= 1;
            if *n == 0 {
                self.armed_crash = None;
                self.crash_image = Some(self.snapshot());
            }
        }
    }

    fn snapshot(&self) -> CrashImage {
        let mut store = self.store.clone();
        match self.fault_spec {
            None => {
                self.wq.flush_into(&mut store);
                if self.cfg.counter_cache_backing == CounterCacheBacking::Battery {
                    for (page, ctr) in self.cc_dirty_entries() {
                        store.write_counter(page, ctr.encode());
                    }
                }
            }
            Some(spec) => self.snapshot_faulted(&mut store, spec),
        }
        let bmt_root = self.tree_root_after_adr_flush(&mut store);
        CrashImage {
            store,
            rsr: self.rsr,
            bmt_root,
        }
    }

    /// The ADR domain includes the streaming pending-update cache: at
    /// power loss the battery propagates the armed leaves, landing the
    /// persisted-level node lines next to the drained write queue, and
    /// the root register keeps the post-flush value. In eager mode (or
    /// with nothing pending) this is just the live root. A fault plan
    /// already attached to `store` governs the node-line writes, so
    /// lines lost with a failed bank stay lost.
    fn tree_root_after_adr_flush(&self, store: &mut NvmStore) -> Option<u64> {
        let bmt = self.bmt.as_ref()?;
        if !self.cfg.streaming_tree() || bmt.pending_len() == 0 {
            return Some(bmt.root());
        }
        let mut flushed = bmt.clone();
        let prop = flushed.propagate_pending();
        for w in &prop.node_writes {
            store.write_tree(w.line_id(), w.payload);
        }
        Some(flushed.root())
    }

    /// The power event goes wrong: the ADR drain tears mid-flush and/or
    /// a bank fail-stops, per `spec`. Everything the media loses or
    /// mangles is recorded in a [`FaultPlan`] attached to the image's
    /// store, so recovery's checked reads see the damage.
    fn snapshot_faulted(&self, store: &mut NvmStore, spec: FaultSpec) {
        let mut plan = FaultPlan::new(spec);
        let failed = plan.failed_bank(self.banks.len());
        if let Some(fb) = failed {
            // Settled lines on the failed bank are gone with it.
            for line in store.data_lines() {
                if self.map.data_bank(line) == fb {
                    plan.note_lost_data(line);
                }
            }
            for page in store.counter_lines() {
                if self.ctr_bank(page) == fb {
                    plan.note_lost_counter(page);
                }
            }
            for line in store.tree_lines() {
                if self.tree_bank(line) == fb {
                    plan.note_lost_tree(line);
                }
            }
        }
        let tear = plan.drain_tear(self.wq.len());
        self.wq.flush_into_faulted(store, failed, tear, &mut plan);
        if self.cfg.counter_cache_backing == CounterCacheBacking::Battery {
            for (page, ctr) in self.cc_dirty_entries() {
                if failed == Some(self.ctr_bank(page)) {
                    plan.note_lost_counter(page);
                } else {
                    store.write_counter(page, ctr.encode());
                }
            }
        }
        store.attach_faults(plan);
    }

    /// Arms a crash that triggers after `appends` more append events
    /// (an atomic data+counter pair counts as one event; with
    /// `atomic_pair_append` disabled the counter and data appends are
    /// separate events). The frozen image is retrievable with
    /// [`MemoryController::take_crash_image`].
    ///
    /// # Panics
    ///
    /// Panics if `appends` is zero.
    pub fn arm_crash_after_appends(&mut self, appends: u64) {
        assert!(appends > 0, "crash countdown must be positive");
        self.armed_crash = Some(appends);
        self.crash_image = None;
    }

    /// The image frozen by an armed crash, if it has triggered.
    pub fn take_crash_image(&mut self) -> Option<CrashImage> {
        self.crash_image.take()
    }

    /// Whether an armed crash countdown is still pending (i.e. armed
    /// but not yet triggered).
    pub fn crash_armed(&self) -> bool {
        self.armed_crash.is_some()
    }

    /// Simulates an immediate power failure and returns the surviving
    /// NVM image.
    pub fn crash_now(&self) -> CrashImage {
        self.snapshot()
    }

    /// Direct access to the armed-crash countdown. The multi-channel
    /// wrapper swaps a machine-global countdown in and out around each
    /// delegated call so appends on every channel tick the same fuse.
    pub(crate) fn armed_crash_mut(&mut self) -> &mut Option<u64> {
        &mut self.armed_crash
    }

    /// Makes the next power event go wrong per `spec`: the crash image
    /// produced by [`MemoryController::crash_now`] or an armed crash
    /// will carry the spec's torn drain or failed bank, recorded in a
    /// [`FaultPlan`] attached to the image store. The live system is
    /// unaffected until then.
    pub fn set_fault_plan(&mut self, spec: FaultSpec) {
        self.fault_spec = Some(spec);
    }

    /// Attaches a fault plan to the *live* store, so demand reads hit
    /// the media model (tests of the retry/poison path use this).
    pub fn attach_store_faults(&mut self, plan: FaultPlan) {
        self.store.attach_faults(plan);
    }

    /// Fail-stops a bank (channel-local index): the controller enters
    /// degraded mode, dropping writes headed there and poisoning reads
    /// instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn mark_bank_failed(&mut self, bank: usize) {
        self.banks[bank].mark_failed();
    }

    /// True when any bank has fail-stopped.
    pub fn is_degraded(&self) -> bool {
        self.banks.iter().any(BankTimer::is_failed)
    }
}
