//! Append stage of the write path: staging-register release disciplines
//! and write-queue admission.
//!
//! This stage decides *how* an encrypted line and its counter enter the
//! ADR domain: coalesced against a pending counter write (CWC), as an
//! atomic 2-line register pair (the paper's staging register), split or
//! non-atomically for the vulnerable baselines, or data-only under a
//! write-back counter cache. Everything upstream (counter fetch, AES)
//! has already happened; everything downstream (bank issue) is the
//! drain stage's business.

use supermem_cache::CounterCacheOutcome;
use supermem_crypto::CounterLine;
use supermem_nvm::addr::{LineAddr, PageId};
use supermem_nvm::LineData;
use supermem_sim::{Cycle, Event, Mutation};

use crate::wqueue::WqTarget;

use super::encrypt::EncryptedWrite;
use super::MemoryController;

impl MemoryController {
    /// Notes a completed write-queue append on the probe stream. `bank`
    /// is channel-local; the emitted event carries the machine-global
    /// bank id.
    pub(super) fn note_enqueue(&mut self, target: WqTarget, bank: usize, at: Cycle, seq: u64) {
        let occupancy = self.wq.len();
        let gbank = self.bank_base + bank;
        let (counter, addr) = match target {
            WqTarget::Counter(page) => (true, page.0),
            WqTarget::Data(line) => (false, line.0),
            // Tree appends are announced via TreeNodeEnqueue by the
            // propagation applier, never through the WqEnqueue stream.
            WqTarget::Tree(_) => return,
        };
        self.probes.emit_with(|| Event::WqEnqueue {
            counter,
            addr,
            seq,
            bank: gbank,
            at,
            occupancy,
        });
    }

    /// Appends the encrypted data line at `t_app`.
    pub(super) fn append_data(&mut self, line: LineAddr, enc: &EncryptedWrite, t_app: Cycle) {
        let data_bank = self.map.data_bank(line);
        let seq = self.wq.append_tagged(
            WqTarget::Data(line),
            data_bank,
            enc.cipher,
            Some((enc.major, enc.minor)),
            enc.tag,
            t_app,
        );
        self.note_enqueue(WqTarget::Data(line), data_bank, t_app, seq);
    }

    /// Appends `page`'s encoded counter line at `t_app`, folding it into
    /// the integrity tree.
    pub(super) fn append_counter(&mut self, page: PageId, encoded: [u8; 64], t_app: Cycle) {
        let ctr_bank = self.ctr_bank(page);
        self.note_counter_write(page, &encoded, t_app);
        let seq = self
            .wq
            .append(WqTarget::Counter(page), ctr_bank, encoded, None, t_app);
        self.note_enqueue(WqTarget::Counter(page), ctr_bank, t_app, seq);
    }

    /// The unencrypted write path: the plaintext line enqueues alone.
    pub(super) fn flush_unsec(&mut self, line: LineAddr, plaintext: LineData, at: Cycle) -> Cycle {
        let data_bank = self.map.data_bank(line);
        let t = self.wait_slots(1, at);
        let seq = self
            .wq
            .append(WqTarget::Data(line), data_bank, plaintext, None, t);
        self.note_enqueue(WqTarget::Data(line), data_bank, t, seq);
        self.note_append_event();
        self.probes.emit_with(|| Event::FlushRetired {
            line: line.0,
            issued: at,
            counter_ready: at,
            encrypted: at,
            retired: t,
        });
        t
    }

    /// Routes an encrypted line to the release discipline the counter
    /// cache's update outcome (and any injected defect) selects. Returns
    /// the retire cycle.
    pub(super) fn dispatch_append(
        &mut self,
        line: LineAddr,
        page: PageId,
        ctr: &CounterLine,
        enc: &EncryptedWrite,
        action: CounterCacheOutcome,
    ) -> Cycle {
        match action {
            CounterCacheOutcome::WriteThrough
                if self.cfg.mutation == Some(Mutation::CwcNewest)
                    && self.wq.forward_counter(page).is_some() =>
            {
                self.append_cwc_newest(line, page, enc)
            }
            CounterCacheOutcome::WriteThrough => self.append_write_through(line, page, ctr, enc),
            CounterCacheOutcome::Deferred => self.append_deferred(line, page, ctr, enc),
        }
    }

    /// Injected defect: "coalescing" keeps the stale pending counter
    /// entry and drops the incoming (newest) update, so the data line
    /// enqueues alone under an old counter.
    fn append_cwc_newest(&mut self, line: LineAddr, page: PageId, enc: &EncryptedWrite) -> Cycle {
        // Justified panic: the caller dispatches here only after
        // `forward_counter` found a pending entry.
        #[allow(clippy::disallowed_methods)]
        let victim = self
            .wq
            .forward_counter(page)
            .map(|e| e.seq)
            .expect("pending counter checked above");
        self.stats.counter_writes_coalesced += 1;
        let t_enc = enc.ready;
        self.probes.emit_with(|| Event::WqCoalesce {
            page: page.0,
            victim_seq: victim,
            at: t_enc,
        });
        let t_app = self.wait_slots(1, t_enc);
        self.append_data(line, enc, t_app);
        self.note_append_event();
        t_app
    }

    /// Write-through counter update: coalesce any pending counter write
    /// for the page (CWC keeps the newest), then release the counter and
    /// data lines per the configured staging discipline.
    fn append_write_through(
        &mut self,
        line: LineAddr,
        page: PageId,
        ctr: &CounterLine,
        enc: &EncryptedWrite,
    ) -> Cycle {
        let t_enc = enc.ready;
        if let Some(victim) = self.wq.coalesce_counter(page, &mut self.stats) {
            self.probes.emit_with(|| Event::WqCoalesce {
                page: page.0,
                victim_seq: victim,
                at: t_enc,
            });
        }
        let t_app = self.wait_slots(2, t_enc);
        let encoded = ctr.encode();
        if self.cfg.atomic_pair_append && self.cfg.mutation != Some(Mutation::PairSplit) {
            self.append_pair_atomic(line, page, encoded, enc, t_app)
        } else if self.cfg.atomic_pair_append {
            self.append_pair_split(line, page, encoded, enc, t_app)
        } else {
            self.append_nonatomic(line, page, encoded, enc, t_app)
        }
    }

    /// Emits the staging-register occupancy event for an (allegedly)
    /// atomic counter+data pair.
    fn stage_pair(&mut self, line: LineAddr, page: PageId, at: Cycle) {
        self.probes.emit_with(|| Event::RegisterStage {
            line: line.0,
            page: page.0,
            at,
        });
    }

    /// Both lines leave the staging register together: they enter the
    /// ADR domain as one event.
    fn append_pair_atomic(
        &mut self,
        line: LineAddr,
        page: PageId,
        encoded: [u8; 64],
        enc: &EncryptedWrite,
        t_app: Cycle,
    ) -> Cycle {
        self.stage_pair(line, page, t_app);
        self.append_counter(page, encoded, t_app);
        self.append_data(line, enc, t_app);
        self.note_append_event();
        t_app
    }

    /// Injected defect (pair-split): the controller still stages the
    /// pair — claiming atomicity — but releases the two lines
    /// separately, with the queue free to issue in between (the Figure 6
    /// window reopened).
    fn append_pair_split(
        &mut self,
        line: LineAddr,
        page: PageId,
        encoded: [u8; 64],
        enc: &EncryptedWrite,
        t_app: Cycle,
    ) -> Cycle {
        self.stage_pair(line, page, t_app);
        self.append_counter(page, encoded, t_app);
        self.note_append_event();
        let t_late = self.wait_slots(1, t_app + 1);
        self.append_data(line, enc, t_late);
        self.note_append_event();
        t_late
    }

    /// Vulnerable baseline (Figure 6): counter first, data second,
    /// separately interruptible.
    fn append_nonatomic(
        &mut self,
        line: LineAddr,
        page: PageId,
        encoded: [u8; 64],
        enc: &EncryptedWrite,
        t_app: Cycle,
    ) -> Cycle {
        self.append_counter(page, encoded, t_app);
        self.note_append_event();
        self.append_data(line, enc, t_app);
        self.note_append_event();
        t_app
    }

    /// Write-back counter cache: only the data line enqueues now; the
    /// dirty counter stays resident. Osiris additionally persists the
    /// counter line every `window`-th minor increment so recovery's
    /// trial-decryption search stays within the window.
    fn append_deferred(
        &mut self,
        line: LineAddr,
        page: PageId,
        ctr: &CounterLine,
        enc: &EncryptedWrite,
    ) -> Cycle {
        let mut t_app = self.wait_slots(1, enc.ready);
        self.append_data(line, enc, t_app);
        self.note_append_event();
        if let Some(window) = self.cfg.osiris_window {
            if enc.minor.is_multiple_of(window) {
                t_app = self.wait_slots(1, t_app);
                self.append_counter(page, ctr.encode(), t_app);
                self.note_append_event();
            }
        }
        t_app
    }
}
