//! The secure-PM memory controller.
//!
//! Implements the paper's Figure 7 write sequence with a write-through
//! counter cache and the 2-line staging register: fetch the counter
//! (counter cache, forwarding from pending writes, or NVM), increment the
//! minor counter, run the AES pipeline, then append the encrypted data
//! line *and* its counter line to the ADR-protected write queue in one
//! atomic step. Counter write coalescing and XBank placement are applied
//! at append time. The read path overlaps OTP generation with the NVM
//! array read (Figure 2b).
//!
//! Crash behavior: [`MemoryController::crash_now`] produces the NVM image
//! a real power failure would leave behind — the byte store plus the
//! ADR-drained write queue (and, for a battery-backed write-back counter
//! cache, the dirty counters). [`MemoryController::arm_crash_after_appends`]
//! freezes such an image mid-run at a chosen append boundary, which is how
//! the Table 1 experiments land a failure *between* the counter append and
//! the data append when the atomic register is disabled (Figure 6).

use supermem_cache::CounterCache;
use supermem_crypto::EncryptionEngine;
use supermem_integrity::Bmt;
use supermem_nvm::addr::{AddressMap, LineAddr, PageId};
use supermem_nvm::bank::{BankTimer, OpKind};
use supermem_nvm::fault::{FaultSpec, MediaError};
use supermem_nvm::{LineData, NvmStore};
use supermem_sim::{Config, Cycle, Event, Mutation, Observer, Probes, Stats};

use crate::bankmap::counter_bank;
use crate::rsr::Rsr;
use crate::wqueue::WriteQueue;

mod append;
mod counter;
mod crash;
mod drain;
mod encrypt;

/// Latency of forwarding a read from a pending write-queue entry.
const FORWARD_LATENCY: Cycle = 4;

/// Latency of the staging-register store step (`Sto` in Figure 7).
const REGISTER_LATENCY: Cycle = 1;

/// Bounded retries for transiently failing NVM array reads.
const READ_RETRY_LIMIT: u32 = 3;

/// Base backoff (cycles) before re-issuing a transiently failed read;
/// doubles on every retry.
const RETRY_BACKOFF: Cycle = 8;

/// The persistent state left behind by a (simulated) power failure:
/// the NVM byte store after the ADR battery drained the write queue,
/// plus the ADR-protected re-encryption status register.
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// NVM contents after the ADR drain.
    pub store: NvmStore,
    /// RSR contents if a page re-encryption was in flight.
    pub rsr: Option<Rsr>,
    /// The integrity tree's trusted root register, if authentication is
    /// on (the register survives power loss like the processor key).
    pub bmt_root: Option<u64>,
}

/// The memory controller of the simulated secure NVM system.
///
/// # Examples
///
/// ```
/// use supermem_memctrl::MemoryController;
/// use supermem_nvm::addr::LineAddr;
/// use supermem_sim::Config;
///
/// let mut mc = MemoryController::new(&Config::default());
/// let retire = mc.flush_line(LineAddr(0x1000), [1u8; 64], 100);
/// let (data, _) = mc.read_line(LineAddr(0x1000), retire);
/// assert_eq!(data, [1u8; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: Config,
    map: AddressMap,
    banks: Vec<BankTimer>,
    store: NvmStore,
    wq: WriteQueue,
    cc: CounterCache,
    engine: EncryptionEngine,
    stats: Stats,
    rsr: Option<Rsr>,
    armed_crash: Option<u64>,
    crash_image: Option<CrashImage>,
    append_events: u64,
    bmt: Option<Bmt>,
    probes: Probes,
    fault_spec: Option<FaultSpec>,
    /// Offset of this controller's bank 0 in the machine-global bank
    /// numbering (`channel_index * cfg.banks`; 0 for a single channel).
    /// Bank timers and write-queue entries stay channel-local; only
    /// stats and emitted events carry global bank ids.
    bank_base: usize,
}

impl MemoryController {
    /// Builds a controller over a fresh (all-zero) NVM DIMM.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`Config::validate`].
    pub fn new(cfg: &Config) -> Self {
        Self::with_store(cfg, NvmStore::new())
    }

    /// Builds a controller over existing NVM contents — how a system
    /// restarts after a crash, with the DIMM retaining its bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`Config::validate`].
    pub fn with_store(cfg: &Config, store: NvmStore) -> Self {
        Self::with_store_for_channel(cfg, store, 0)
    }

    /// Builds the controller of channel `channel` over a fresh DIMM
    /// slice. Stats and events report machine-global bank ids offset by
    /// `channel * cfg.banks`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`Config::validate`] or `channel` is out of
    /// range.
    pub fn for_channel(cfg: &Config, channel: usize) -> Self {
        Self::with_store_for_channel(cfg, NvmStore::new(), channel)
    }

    /// [`MemoryController::for_channel`] over existing NVM contents.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`Config::validate`] or `channel` is out of
    /// range.
    pub fn with_store_for_channel(cfg: &Config, mut store: NvmStore, channel: usize) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid configuration: {e}");
        }
        assert!(channel < cfg.channels, "channel {channel} out of range");
        if let Some(psi) = cfg.wear_psi {
            store.enable_wear_leveling(cfg.nvm_bytes / cfg.line_bytes, psi);
        }
        let map = AddressMap::with_channels(
            cfg.nvm_bytes,
            cfg.line_bytes,
            cfg.page_bytes,
            cfg.banks,
            cfg.channels,
        );
        let read = cfg.nvm_read_service_cycles();
        let write = cfg.nvm_write_service_cycles();
        let wtr = cfg.nvm_wtr_cycles();
        let mut cc = CounterCache::new(
            cfg.counter_cache_bytes,
            cfg.line_bytes,
            cfg.counter_cache_ways,
            cfg.counter_cache_mode,
        );
        if cfg.mutation == Some(Mutation::WtOff) {
            cc.inject_drop_write_through();
        }
        let bank_base = channel * cfg.banks;
        let mut wq = WriteQueue::new(cfg.write_queue_entries, cfg.cwc);
        wq.set_bank_base(bank_base);
        wq.set_fast_forward(cfg.fast_forward);
        let bmt = cfg.integrity_tree.then(|| {
            let built = match cfg.persisted_levels {
                // Streaming mode: only levels below the frontier persist
                // through the write queue; the rest stay volatile.
                Some(levels) if cfg.streaming_tree() => {
                    Bmt::with_frontier(cfg.encryption_key(), cfg.integrity_pages, levels as usize)
                }
                // Eager/legacy mode (also `persisted_levels = height`).
                _ => Bmt::new(cfg.encryption_key(), cfg.integrity_pages),
            };
            match built {
                Ok(b) => b,
                // Unreachable in practice: Config::validate rejects the
                // zero-page and out-of-range-frontier shapes first.
                Err(e) => panic!("invalid configuration: {e}"),
            }
        });
        Self {
            map,
            banks: (0..cfg.banks)
                .map(|_| BankTimer::new(read, write, wtr))
                .collect(),
            store,
            wq,
            cc,
            engine: EncryptionEngine::new(cfg.encryption_key()),
            stats: Stats::new(cfg.banks * cfg.channels),
            rsr: None,
            armed_crash: None,
            crash_image: None,
            append_events: 0,
            bmt,
            probes: Probes::default(),
            fault_spec: None,
            bank_base,
            cfg: cfg.clone(),
        }
    }

    /// Attaches an [`Observer`] to the controller's event stream. With no
    /// observer attached the probe layer is a single branch per emission
    /// site and event payloads are never constructed.
    pub fn attach_observer(&mut self, obs: Box<dyn Observer>) {
        self.probes.attach(obs);
    }

    /// Detaches and returns all attached observers.
    pub fn take_observers(&mut self) -> Vec<Box<dyn Observer>> {
        self.probes.take()
    }

    /// The probe hub (the system layer emits core-level events here).
    pub fn probes_mut(&mut self) -> &mut Probes {
        &mut self.probes
    }

    /// The address map in use.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable statistics (the system layer records transaction
    /// latencies here).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Direct view of the persistent byte store (verification only).
    pub fn store(&self) -> &NvmStore {
        &self.store
    }

    /// Pending write-queue entries (diagnostics).
    pub fn wq_len(&self) -> usize {
        self.wq.len()
    }

    /// Total append events so far (an atomic data+counter pair counts as
    /// one). The crash experiments sweep their injection point over this
    /// count.
    pub fn append_events(&self) -> u64 {
        self.append_events
    }

    /// Pending write-queue entries in age order (diagnostics).
    ///
    /// Allocation-free: yields straight from the queue's slot slab, so
    /// per-event inspection (the checker probes this on its hot path)
    /// does not clone the queue into a `Vec`.
    pub fn wq_pending(&self) -> impl Iterator<Item = (crate::wqueue::WqTarget, u64)> + '_ {
        self.wq.pending()
    }

    /// Number of leaf updates armed in the streaming tree's pending
    /// cache (0 in eager mode or without an integrity tree).
    pub fn tree_pending_len(&self) -> usize {
        self.bmt.as_ref().map_or(0, Bmt::pending_len)
    }

    /// This controller's channel index (0 for a single-channel machine).
    pub fn channel(&self) -> usize {
        self.bank_base / self.cfg.banks.max(1)
    }

    fn ctr_bank(&self, page: PageId) -> usize {
        counter_bank(
            self.cfg.counter_placement,
            self.map.page_bank(page),
            self.cfg.banks,
        )
    }

    /// Services a demand read of `line` issued at cycle `at`; returns the
    /// plaintext and the completion cycle. OTP generation overlaps the
    /// array read (Figure 2b), so the counter fetch usually hides behind
    /// tRCD + tCL.
    pub fn read_line(&mut self, line: LineAddr, at: Cycle) -> (LineData, Cycle) {
        self.drain_until(at);
        if let Some(entry) = self.wq.forward_data(line) {
            self.stats.wq_read_forwards += 1;
            let payload = entry.payload;
            let enc = entry.enc_counter;
            let done = at + FORWARD_LATENCY;
            let data = match enc {
                Some((major, minor)) if self.cfg.encryption => {
                    self.engine.decrypt_line(&payload, line.0, major, minor)
                }
                _ => payload,
            };
            self.probes.emit_with(|| Event::ReadServed {
                line: line.0,
                issued: at,
                done,
                forwarded: true,
            });
            return (data, done);
        }
        let bank = self.map.data_bank(line);
        if self.banks[bank].is_failed() {
            // Degraded mode: the bank is gone; answer with poison
            // rather than wedging behind dead hardware.
            self.stats.poisoned_reads += 1;
            let done = at + 1;
            self.probes.emit_with(|| Event::ReadServed {
                line: line.0,
                issued: at,
                done,
                forwarded: false,
            });
            return ([0; 64], done);
        }
        let done_data = self.banks[bank].issue(OpKind::Read, at);
        self.stats.nvm_data_reads += 1;
        let read_service = self.cfg.nvm_read_service_cycles();
        let gbank = self.bank_base + bank;
        self.probes.emit_with(|| Event::BankBusy {
            bank: gbank,
            start: done_data - read_service,
            end: done_data,
            write: false,
        });
        let (cipher, done_data) = self.media_read_data(line, bank, done_data);
        let Some(cipher) = cipher else {
            self.stats.poisoned_reads += 1;
            self.probes.emit_with(|| Event::ReadServed {
                line: line.0,
                issued: at,
                done: done_data,
                forwarded: false,
            });
            return ([0; 64], done_data);
        };
        if !self.cfg.encryption {
            self.probes.emit_with(|| Event::ReadServed {
                line: line.0,
                issued: at,
                done: done_data,
                forwarded: false,
            });
            return (cipher, done_data);
        }
        let page = self.map.page_of_line(line);
        let idx = self.map.line_index_in_page(line);
        let (ctr, t_ctr) = self.fetch_counter(page, at);
        let otp_ready = t_ctr + self.cfg.aes_latency;
        let plain = self
            .engine
            .decrypt_line(&cipher, line.0, ctr.major(), ctr.minor(idx));
        let done = done_data.max(otp_ready) + 1;
        self.probes.emit_with(|| Event::ReadServed {
            line: line.0,
            issued: at,
            done,
            forwarded: false,
        });
        (plain, done)
    }

    /// Handles a cache-line flush arriving at cycle `at` (Figure 7) by
    /// running the staged write-path pipeline: drain what the banks can
    /// take, update the counter (overflow triggers a page
    /// re-encryption), run the AES pipeline, then hand the sealed line
    /// to the append stage, which releases it into the ADR write queue
    /// per the configured staging discipline. Returns the retire cycle —
    /// the moment the entries are accepted into the ADR domain, which is
    /// when the flush is architecturally durable (§2.1).
    pub fn flush_line(&mut self, line: LineAddr, plaintext: LineData, at: Cycle) -> Cycle {
        self.drain_until(at);
        if !self.cfg.encryption {
            return self.flush_unsec(line, plaintext, at);
        }
        let page = self.map.page_of_line(line);
        let idx = self.map.line_index_in_page(line);
        let (ctr, t_ctr) = self.counter_update(page, idx, at);
        let enc = self.encrypt_stage(line, &plaintext, &ctr, idx, t_ctr);
        // The counter cache entry is resident (the counter stage filled
        // it); its update outcome picks the append discipline.
        let action = self.cc.update(page, ctr.clone());
        let retire = self.dispatch_append(line, page, &ctr, &enc, action);
        // The re-encryption's new counters are durable now (write queue in
        // write-through mode, battery-backed counter cache in write-back):
        // free the RSR.
        if self
            .rsr
            .as_ref()
            .is_some_and(|r| r.page() == page && r.all_done())
        {
            self.rsr = None;
            self.probes.emit_with(|| Event::RsrRetired {
                page: page.0,
                at: retire,
            });
        }
        let t_enc = enc.ready;
        self.probes.emit_with(|| Event::FlushRetired {
            line: line.0,
            issued: at,
            counter_ready: t_ctr,
            encrypted: t_enc,
            retired: retire,
        });
        retire
    }

    /// Reads a data line through the media model with bounded
    /// retry-with-backoff on transient failures. Returns `None` (and
    /// the final completion cycle) when the line is unreadable — the
    /// caller poisons the response instead of panicking.
    fn media_read_data(
        &mut self,
        line: LineAddr,
        bank: usize,
        done: Cycle,
    ) -> (Option<LineData>, Cycle) {
        let before = self.store.fault_counters().ecc_corrections;
        let mut done = done;
        let mut backoff = RETRY_BACKOFF;
        let mut out = None;
        for attempt in 0..=READ_RETRY_LIMIT {
            match self.store.read_data_checked(line) {
                Ok(d) => {
                    out = Some(d);
                    break;
                }
                Err(MediaError::Transient) if attempt < READ_RETRY_LIMIT => {
                    self.stats.read_retries += 1;
                    done = self.banks[bank].issue(OpKind::Read, done + backoff);
                    backoff *= 2;
                }
                Err(_) => break,
            }
        }
        self.stats.ecc_corrections += self.store.fault_counters().ecc_corrections - before;
        (out, done)
    }

    /// [`Self::media_read_data`] for a counter line.
    fn media_read_counter(
        &mut self,
        page: PageId,
        bank: usize,
        done: Cycle,
    ) -> (Option<LineData>, Cycle) {
        let before = self.store.fault_counters().ecc_corrections;
        let mut done = done;
        let mut backoff = RETRY_BACKOFF;
        let mut out = None;
        for attempt in 0..=READ_RETRY_LIMIT {
            match self.store.read_counter_checked(page) {
                Ok(d) => {
                    out = Some(d);
                    break;
                }
                Err(MediaError::Transient) if attempt < READ_RETRY_LIMIT => {
                    self.stats.read_retries += 1;
                    done = self.banks[bank].issue(OpKind::Read, done + backoff);
                    backoff *= 2;
                }
                Err(_) => break,
            }
        }
        self.stats.ecc_corrections += self.store.fault_counters().ecc_corrections - before;
        (out, done)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;
    use supermem_crypto::CounterLine;
    use supermem_nvm::fault::FaultPlan;
    use supermem_sim::{CounterCacheBacking, CounterCacheMode, CounterPlacement};

    fn cfg() -> Config {
        Config::default()
    }

    fn unsec() -> Config {
        let mut c = cfg();
        c.encryption = false;
        c
    }

    #[test]
    fn write_then_read_roundtrips_plaintext() {
        let mut mc = MemoryController::new(&cfg());
        let line = LineAddr(0x4000);
        let retire = mc.flush_line(line, [0x5A; 64], 0);
        let (data, done) = mc.read_line(line, retire);
        assert_eq!(data, [0x5A; 64]);
        assert!(done > retire);
    }

    #[test]
    fn store_holds_ciphertext_not_plaintext() {
        let mut mc = MemoryController::new(&cfg());
        let line = LineAddr(0x4000);
        let retire = mc.flush_line(line, [0x5A; 64], 0);
        mc.finish(retire);
        assert_ne!(
            mc.store().read_data(line),
            [0x5A; 64],
            "NVM must hold ciphertext"
        );
    }

    #[test]
    fn unsec_store_holds_plaintext() {
        let mut mc = MemoryController::new(&unsec());
        let line = LineAddr(0x4000);
        let retire = mc.flush_line(line, [0x5A; 64], 0);
        mc.finish(retire);
        assert_eq!(mc.store().read_data(line), [0x5A; 64]);
    }

    #[test]
    fn write_through_doubles_write_requests() {
        let mut c = cfg();
        c.cwc = false;
        let mut mc = MemoryController::new(&c);
        let mut t = 0;
        for i in 0..16u64 {
            // Distinct pages so CWC (even if on) could not merge.
            t = mc.flush_line(LineAddr(i * 4096), [i as u8; 64], t);
        }
        mc.finish(t);
        assert_eq!(mc.stats().nvm_data_writes, 16);
        assert_eq!(mc.stats().nvm_counter_writes, 16);
    }

    #[test]
    fn cwc_coalesces_same_page_counter_writes() {
        let mut c = cfg();
        c.cwc = true;
        let mut mc = MemoryController::new(&c);
        let mut t = 0;
        // 16 lines of ONE page flushed back-to-back: counters share one
        // line, so pending counter writes merge.
        for i in 0..16u64 {
            t = mc.flush_line(LineAddr(i * 64), [i as u8; 64], t);
        }
        mc.finish(t);
        assert_eq!(mc.stats().nvm_data_writes, 16);
        assert!(
            mc.stats().counter_writes_coalesced >= 8,
            "expected heavy coalescing, got {}",
            mc.stats().counter_writes_coalesced
        );
        assert_eq!(
            mc.stats().nvm_counter_writes + mc.stats().counter_writes_coalesced,
            16
        );
    }

    #[test]
    fn write_back_defers_counter_writes() {
        let mut c = cfg();
        c.counter_cache_mode = CounterCacheMode::WriteBack;
        c.counter_cache_backing = CounterCacheBacking::Battery;
        let mut mc = MemoryController::new(&c);
        let mut t = 0;
        for i in 0..16u64 {
            t = mc.flush_line(LineAddr(i * 64), [1; 64], t);
        }
        // Before finish: only data writes reach NVM.
        assert_eq!(mc.stats().nvm_counter_writes, 0);
        mc.finish(t);
        // One page -> one dirty counter line at shutdown.
        assert_eq!(mc.stats().nvm_counter_writes, 1);
        assert_eq!(mc.stats().counter_cache_writebacks, 1);
    }

    #[test]
    fn xbank_separates_data_and_counter_banks() {
        let mut c = cfg();
        c.counter_placement = CounterPlacement::CrossBank;
        c.cwc = false;
        let mut mc = MemoryController::new(&c);
        // Page 0 -> bank 0; its counters must land in bank 4.
        let t = mc.flush_line(LineAddr(0), [1; 64], 0);
        mc.finish(t);
        assert_eq!(mc.stats().bank_writes[0], 1);
        assert_eq!(mc.stats().bank_writes[4], 1);
    }

    #[test]
    fn single_bank_funnels_counters_to_last_bank() {
        let mut c = cfg();
        c.counter_placement = CounterPlacement::SingleBank;
        c.cwc = false;
        let mut mc = MemoryController::new(&c);
        let mut t = 0;
        for p in 0..4u64 {
            t = mc.flush_line(LineAddr(p * 4096), [1; 64], t);
        }
        mc.finish(t);
        assert_eq!(mc.stats().bank_writes[7], 4, "all counters in bank 7");
    }

    #[test]
    fn read_forwards_from_pending_write() {
        let mut c = cfg();
        // Huge queue so nothing drains at t=0.
        c.write_queue_entries = 128;
        let mut mc = MemoryController::new(&c);
        let line = LineAddr(0x2000);
        let retire = mc.flush_line(line, [7; 64], 0);
        // Read while the entry is still pending (one cycle before it
        // becomes issuable): it must be forwarded from the queue.
        let (data, done) = mc.read_line(line, retire - 1);
        assert_eq!(data, [7; 64]);
        assert!(mc.stats().wq_read_forwards >= 1);
        assert_eq!(done, retire - 1 + FORWARD_LATENCY);
    }

    #[test]
    fn crash_preserves_adr_write_queue() {
        let mut mc = MemoryController::new(&cfg());
        let line = LineAddr(0x8000);
        let retire = mc.flush_line(line, [3; 64], 0);
        // Crash immediately: entries are still queued but in the ADR
        // domain, so they survive.
        let image = mc.crash_now();
        let page = mc.map().page_of_line(line);
        let idx = mc.map().line_index_in_page(line);
        let ctr = CounterLine::decode(&image.store.read_counter(page));
        assert_eq!(ctr.minor(idx), 1);
        let engine = EncryptionEngine::new(cfg().encryption_key());
        let plain = engine.decrypt_line(&image.store.read_data(line), line.0, ctr.major(), 1);
        assert_eq!(plain, [3; 64]);
        let _ = retire;
    }

    #[test]
    fn atomic_append_keeps_pairs_together_across_crash() {
        // With the register, any armed crash point sees counter and data
        // either both present or both absent.
        for crash_at in 1..=4u64 {
            let mut mc = MemoryController::new(&cfg());
            mc.arm_crash_after_appends(crash_at);
            let mut t = 0;
            for i in 0..4u64 {
                t = mc.flush_line(LineAddr(i * 4096), [0xC0 + i as u8; 64], t);
            }
            let image = mc.take_crash_image().expect("crash must trigger");
            let engine = EncryptionEngine::new(cfg().encryption_key());
            for i in 0..crash_at {
                let line = LineAddr((i) * 4096);
                let page = PageId(i);
                let ctr = CounterLine::decode(&image.store.read_counter(page));
                if i < crash_at {
                    assert_eq!(ctr.minor(0), 1, "counter persisted for flush {i}");
                    let plain = engine.decrypt_line(&image.store.read_data(line), line.0, 0, 1);
                    assert_eq!(plain, [0xC0 + i as u8; 64], "data persisted for flush {i}");
                }
            }
        }
    }

    #[test]
    fn nonatomic_append_exposes_figure6_window() {
        // Without the register, a crash can land after the counter append
        // but before the data append: the new counter is durable, the old
        // data is still in place, and decryption fails (Figure 6).
        let mut c = cfg();
        c.atomic_pair_append = false;
        let line = LineAddr(0x6000);
        // First write the line once so it holds real old data.
        let mut mc = MemoryController::with_store(&c, NvmStore::new());
        let t = mc.flush_line(line, [0x01; 64], 0);
        mc.finish(t);
        let base = mc.store().clone();

        let mut mc = MemoryController::with_store(&c, base);
        mc.arm_crash_after_appends(1); // right between counter and data
        mc.flush_line(line, [0x02; 64], 0);
        let image = mc.take_crash_image().expect("crash armed");
        let page = PageId(line.0 / 4096);
        let idx = (line.0 % 4096) / 64;
        let ctr = CounterLine::decode(&image.store.read_counter(page));
        assert_eq!(ctr.minor(idx as usize), 2, "new counter persisted");
        let engine = EncryptionEngine::new(c.encryption_key());
        let plain = engine.decrypt_line(
            &image.store.read_data(line),
            line.0,
            ctr.major(),
            ctr.minor(idx as usize),
        );
        assert_ne!(plain, [0x01; 64], "old data no longer decryptable");
        assert_ne!(plain, [0x02; 64], "new data never became durable");
    }

    #[test]
    fn battery_backed_write_back_survives_crash() {
        let mut c = cfg();
        c.counter_cache_mode = CounterCacheMode::WriteBack;
        c.counter_cache_backing = CounterCacheBacking::Battery;
        let mut mc = MemoryController::new(&c);
        let line = LineAddr(0x3000);
        mc.flush_line(line, [9; 64], 0);
        let image = mc.crash_now();
        let page = PageId(line.0 / 4096);
        let ctr = CounterLine::decode(&image.store.read_counter(page));
        assert_eq!(ctr.minor(((line.0 % 4096) / 64) as usize), 1);
    }

    #[test]
    fn unbacked_write_back_loses_counters_on_crash() {
        let mut c = cfg();
        c.counter_cache_mode = CounterCacheMode::WriteBack;
        c.counter_cache_backing = CounterCacheBacking::None;
        let mut mc = MemoryController::new(&c);
        let line = LineAddr(0x3000);
        mc.flush_line(line, [9; 64], 0);
        let image = mc.crash_now();
        let page = PageId(line.0 / 4096);
        let ctr = CounterLine::decode(&image.store.read_counter(page));
        assert_eq!(ctr.minor(12), 0, "counter lost: stale zero in NVM");
    }

    #[test]
    fn minor_overflow_triggers_reencryption_and_stays_readable() {
        let mut mc = MemoryController::new(&cfg());
        let line = LineAddr(0);
        let mut t = 0;
        for i in 0..128u64 {
            t = mc.flush_line(line, [i as u8; 64], t);
        }
        assert_eq!(mc.stats().pages_reencrypted, 1);
        let (data, _) = mc.read_line(line, t);
        assert_eq!(data, [127; 64]);
        // Another line of the same page must also still decrypt.
        let other = LineAddr(64);
        let t2 = mc.flush_line(other, [0xEE; 64], t);
        let (data, _) = mc.read_line(other, t2);
        assert_eq!(data, [0xEE; 64]);
    }

    #[test]
    fn reencryption_preserves_other_lines() {
        let mut mc = MemoryController::new(&cfg());
        let hot = LineAddr(0);
        let cold = LineAddr(64 * 10);
        let mut t = mc.flush_line(cold, [0xAB; 64], 0);
        for i in 0..128u64 {
            t = mc.flush_line(hot, [i as u8; 64], t);
        }
        assert!(mc.stats().pages_reencrypted >= 1);
        let (data, _) = mc.read_line(cold, t);
        assert_eq!(data, [0xAB; 64], "cold line survives page re-encryption");
    }

    #[test]
    fn counter_fetch_forwards_from_pending_queue_entry() {
        // Tiny counter cache: entry evicted while its write is pending.
        let mut c = cfg();
        c.counter_cache_bytes = 64; // one entry
        c.counter_cache_ways = 1;
        c.write_queue_entries = 128;
        let mut mc = MemoryController::new(&c);
        let a = LineAddr(0); // page 0
        let b = LineAddr(4096); // page 1 evicts page 0 from the 1-entry cc
        let t = mc.flush_line(a, [1; 64], 0);
        let t = mc.flush_line(b, [2; 64], t);
        // Flush to page 0 again: cc miss, but the pending WQ entry has
        // minor=1; NVM still has 0. The next minor must be 2.
        let t = mc.flush_line(a, [3; 64], t);
        mc.finish(t);
        let ctr = CounterLine::decode(&mc.store().read_counter(PageId(0)));
        assert_eq!(
            ctr.minor(0),
            2,
            "counter forwarding must see the pending value"
        );
        let (data, _) = mc.read_line(a, t + 10_000);
        assert_eq!(data, [3; 64]);
    }

    #[test]
    fn wq_backpressure_stalls_flushes() {
        let mut c = cfg();
        c.write_queue_entries = 4;
        c.cwc = false;
        c.counter_placement = CounterPlacement::SingleBank;
        let mut mc = MemoryController::new(&c);
        let mut t = 0;
        // All lines in one page: counter-cache hits keep the flush rate
        // high while every write lands in two banks only, so the 4-entry
        // queue must fill.
        for i in 0..32u64 {
            t = mc.flush_line(LineAddr(i % 64 * 64), [1; 64], t);
        }
        assert!(mc.stats().wq_stall_cycles > 0, "tiny queue must stall");
        assert!(mc.stats().wq_full_events > 0);
    }

    #[test]
    fn stats_accessors() {
        let mut mc = MemoryController::new(&cfg());
        mc.stats_mut().record_txn(10);
        assert_eq!(mc.stats().txn_commits, 1);
        assert_eq!(mc.wq_len(), 0);
    }

    /// Writes a line durably and returns the controller plus the retire
    /// cycle, for the media-fault tests below.
    fn settled_line(c: &Config, line: LineAddr, fill: u8) -> (MemoryController, Cycle) {
        let mut mc = MemoryController::new(c);
        let retire = mc.flush_line(line, [fill; 64], 0);
        let t = mc.finish(retire);
        (mc, t)
    }

    #[test]
    fn transient_read_failures_are_retried_through() {
        let line = LineAddr(0x4000);
        let (mut mc, t) = settled_line(&cfg(), line, 0x5A);
        let mut plan = FaultPlan::default();
        plan.fail_data_reads(line, 2);
        mc.attach_store_faults(plan);
        let (data, done) = mc.read_line(line, t);
        assert_eq!(data, [0x5A; 64], "retries must recover the data");
        assert_eq!(mc.stats().read_retries, 2);
        assert_eq!(mc.stats().poisoned_reads, 0);
        assert!(done > t, "backoff costs cycles");
    }

    #[test]
    fn exhausted_retries_poison_instead_of_panicking() {
        let line = LineAddr(0x4000);
        let (mut mc, t) = settled_line(&cfg(), line, 0x5A);
        let mut plan = FaultPlan::default();
        // One more failure than the initial attempt plus its retries.
        plan.fail_data_reads(line, 4);
        mc.attach_store_faults(plan);
        let (data, _) = mc.read_line(line, t);
        assert_eq!(data, [0; 64], "unreadable line answers poison");
        assert_eq!(mc.stats().poisoned_reads, 1);
        assert_eq!(mc.stats().read_retries, 3);
    }

    #[test]
    fn single_bit_flip_is_corrected_and_counted() {
        let line = LineAddr(0x4000);
        let (mut mc, t) = settled_line(&cfg(), line, 0x5A);
        let mut plan = FaultPlan::default();
        plan.flip_data_bit(line, 17);
        mc.attach_store_faults(plan);
        let (data, _) = mc.read_line(line, t);
        assert_eq!(data, [0x5A; 64], "SECDED corrects a single wrong bit");
        assert!(mc.stats().ecc_corrections >= 1);
        assert_eq!(mc.stats().poisoned_reads, 0);
    }

    #[test]
    fn double_bit_flip_is_detected_and_poisoned() {
        let line = LineAddr(0x4000);
        let (mut mc, t) = settled_line(&cfg(), line, 0x5A);
        let mut plan = FaultPlan::default();
        plan.flip_data_bit(line, 3);
        plan.flip_data_bit(line, 100);
        mc.attach_store_faults(plan);
        let (data, _) = mc.read_line(line, t);
        assert_eq!(data, [0; 64], "uncorrectable line answers poison");
        assert_eq!(mc.stats().poisoned_reads, 1);
        assert!(mc.store().fault_counters().ecc_detections >= 1);
    }

    #[test]
    fn failed_bank_degrades_reads_and_writes() {
        let c = cfg();
        let line = LineAddr(0x4000);
        let (mut mc, t) = settled_line(&c, line, 0x5A);
        let map = AddressMap::new(c.nvm_bytes, c.line_bytes, c.page_bytes, c.banks);
        assert!(!mc.is_degraded());
        mc.mark_bank_failed(map.data_bank(line));
        assert!(mc.is_degraded());
        // Reads of the dead bank answer poison, not a wedge or a panic.
        let (data, _) = mc.read_line(line, t);
        assert_eq!(data, [0; 64]);
        assert_eq!(mc.stats().poisoned_reads, 1);
        // Writes headed there are dropped and counted.
        let dropped_before = mc.stats().dropped_writes;
        let retire = mc.flush_line(line, [0x77; 64], t);
        mc.finish(retire);
        assert!(mc.stats().dropped_writes > dropped_before);
    }

    fn streaming_cfg(levels: u32) -> Config {
        let c = cfg()
            .with_integrity_tree(true)
            .with_persisted_levels(Some(levels));
        // Justified panic: a malformed test config is a test bug.
        #[allow(clippy::disallowed_methods)]
        c.validate().expect("streaming test config valid");
        c
    }

    #[test]
    fn streaming_run_arms_updates_and_persists_tree_nodes() {
        let mut mc = MemoryController::new(&streaming_cfg(2));
        let mut t = 0;
        for i in 0..8u64 {
            t = mc.flush_line(LineAddr(i * 4096), [i as u8; 64], t);
        }
        assert!(mc.stats().tree_updates_enqueued > 0);
        assert!(
            mc.tree_pending_len() > 0,
            "updates stay armed until a fence"
        );
        mc.fence_tree_flush(t);
        assert_eq!(mc.tree_pending_len(), 0, "fence drains the pending cache");
        assert!(mc.stats().tree_propagations >= 8);
        mc.finish(t);
        assert!(mc.stats().nvm_tree_writes > 0, "node lines reach the media");
        assert!(!mc.store().tree_lines().is_empty());
    }

    #[test]
    fn streaming_cache_pressure_evicts_oldest_leaf() {
        // More distinct pages than pending-cache slots: the oldest armed
        // leaves must propagate on their own, without any fence.
        let mut mc = MemoryController::new(&streaming_cfg(1));
        let mut t = 0;
        for i in 0..24u64 {
            t = mc.flush_line(LineAddr(i * 4096), [i as u8; 64], t);
        }
        assert!(mc.stats().tree_evictions > 0);
        assert!(mc.stats().tree_propagations > 0);
        let _ = t;
    }

    #[test]
    fn repeated_writes_to_one_page_coalesce_in_tree_cache() {
        let mut mc = MemoryController::new(&streaming_cfg(2));
        let mut t = 0;
        for i in 0..8u64 {
            t = mc.flush_line(LineAddr(i * 64), [i as u8; 64], t);
        }
        assert!(mc.stats().tree_updates_coalesced >= 7);
        assert_eq!(mc.tree_pending_len(), 1);
        let _ = t;
    }

    #[test]
    fn streaming_crash_root_matches_eager_root() {
        // The ADR battery flushes the pending cache at power loss, so a
        // streaming crash image must agree with the eager tree about the
        // root over the same write sequence.
        let eager_cfg = cfg().with_integrity_tree(true);
        let mut eager = MemoryController::new(&eager_cfg);
        let mut lazy = MemoryController::new(&streaming_cfg(2));
        let (mut te, mut tl) = (0, 0);
        for i in 0..12u64 {
            let line = LineAddr((i % 5) * 4096 + (i * 64) % 4096);
            te = eager.flush_line(line, [i as u8; 64], te);
            tl = lazy.flush_line(line, [i as u8; 64], tl);
        }
        let img_e = eager.crash_now();
        let img_l = lazy.crash_now();
        assert!(img_e.bmt_root.is_some());
        assert_eq!(img_e.bmt_root, img_l.bmt_root);
        // And the flushed node lines land in the image's tree region.
        assert!(!img_l.store.tree_lines().is_empty());
    }

    #[test]
    fn eager_mode_never_touches_the_tree_queue_path() {
        // The safety rail: with persisted_levels unset the streaming
        // machinery is dormant — no tree WQ traffic, no armed updates.
        let mut mc = MemoryController::new(&cfg().with_integrity_tree(true));
        let mut t = 0;
        for i in 0..8u64 {
            t = mc.flush_line(LineAddr(i * 4096), [i as u8; 64], t);
        }
        mc.fence_tree_flush(t);
        mc.finish(t);
        assert_eq!(mc.stats().tree_updates_enqueued, 0);
        assert_eq!(mc.stats().nvm_tree_writes, 0);
        assert_eq!(mc.tree_pending_len(), 0);
        assert!(mc.store().tree_lines().is_empty());
    }
}
