//! The secure-PM memory controller.
//!
//! Implements the paper's Figure 7 write sequence with a write-through
//! counter cache and the 2-line staging register: fetch the counter
//! (counter cache, forwarding from pending writes, or NVM), increment the
//! minor counter, run the AES pipeline, then append the encrypted data
//! line *and* its counter line to the ADR-protected write queue in one
//! atomic step. Counter write coalescing and XBank placement are applied
//! at append time. The read path overlaps OTP generation with the NVM
//! array read (Figure 2b).
//!
//! Crash behavior: [`MemoryController::crash_now`] produces the NVM image
//! a real power failure would leave behind — the byte store plus the
//! ADR-drained write queue (and, for a battery-backed write-back counter
//! cache, the dirty counters). [`MemoryController::arm_crash_after_appends`]
//! freezes such an image mid-run at a chosen append boundary, which is how
//! the Table 1 experiments land a failure *between* the counter append and
//! the data append when the atomic register is disabled (Figure 6).

use supermem_cache::{CounterCache, CounterCacheOutcome};
use supermem_crypto::counter::IncrementOutcome;
use supermem_crypto::{CounterLine, EncryptionEngine};
use supermem_integrity::Bmt;
use supermem_nvm::addr::{AddressMap, LineAddr, PageId};
use supermem_nvm::bank::{BankTimer, OpKind};
use supermem_nvm::fault::{FaultPlan, FaultSpec, MediaError};
use supermem_nvm::{LineData, NvmStore};
use supermem_sim::{Config, CounterCacheBacking, Cycle, Event, Mutation, Observer, Probes, Stats};

use crate::bankmap::counter_bank;
use crate::rsr::Rsr;
use crate::wqueue::{WqTarget, WriteQueue};

/// Latency of forwarding a read from a pending write-queue entry.
const FORWARD_LATENCY: Cycle = 4;

/// Latency of the staging-register store step (`Sto` in Figure 7).
const REGISTER_LATENCY: Cycle = 1;

/// Bounded retries for transiently failing NVM array reads.
const READ_RETRY_LIMIT: u32 = 3;

/// Base backoff (cycles) before re-issuing a transiently failed read;
/// doubles on every retry.
const RETRY_BACKOFF: Cycle = 8;

/// The persistent state left behind by a (simulated) power failure:
/// the NVM byte store after the ADR battery drained the write queue,
/// plus the ADR-protected re-encryption status register.
#[derive(Debug, Clone)]
pub struct CrashImage {
    /// NVM contents after the ADR drain.
    pub store: NvmStore,
    /// RSR contents if a page re-encryption was in flight.
    pub rsr: Option<Rsr>,
    /// The integrity tree's trusted root register, if authentication is
    /// on (the register survives power loss like the processor key).
    pub bmt_root: Option<u64>,
}

/// The memory controller of the simulated secure NVM system.
///
/// # Examples
///
/// ```
/// use supermem_memctrl::MemoryController;
/// use supermem_nvm::addr::LineAddr;
/// use supermem_sim::Config;
///
/// let mut mc = MemoryController::new(&Config::default());
/// let retire = mc.flush_line(LineAddr(0x1000), [1u8; 64], 100);
/// let (data, _) = mc.read_line(LineAddr(0x1000), retire);
/// assert_eq!(data, [1u8; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: Config,
    map: AddressMap,
    banks: Vec<BankTimer>,
    store: NvmStore,
    wq: WriteQueue,
    cc: CounterCache,
    engine: EncryptionEngine,
    stats: Stats,
    rsr: Option<Rsr>,
    armed_crash: Option<u64>,
    crash_image: Option<CrashImage>,
    append_events: u64,
    bmt: Option<Bmt>,
    probes: Probes,
    fault_spec: Option<FaultSpec>,
}

impl MemoryController {
    /// Builds a controller over a fresh (all-zero) NVM DIMM.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`Config::validate`].
    pub fn new(cfg: &Config) -> Self {
        Self::with_store(cfg, NvmStore::new())
    }

    /// Builds a controller over existing NVM contents — how a system
    /// restarts after a crash, with the DIMM retaining its bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`Config::validate`].
    pub fn with_store(cfg: &Config, mut store: NvmStore) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid configuration: {e}");
        }
        if let Some(psi) = cfg.wear_psi {
            store.enable_wear_leveling(cfg.nvm_bytes / cfg.line_bytes, psi);
        }
        let map = AddressMap::new(cfg.nvm_bytes, cfg.line_bytes, cfg.page_bytes, cfg.banks);
        let read = cfg.nvm_read_service_cycles();
        let write = cfg.nvm_write_service_cycles();
        let wtr = cfg.nvm_wtr_cycles();
        let mut cc = CounterCache::new(
            cfg.counter_cache_bytes,
            cfg.line_bytes,
            cfg.counter_cache_ways,
            cfg.counter_cache_mode,
        );
        if cfg.mutation == Some(Mutation::WtOff) {
            cc.inject_drop_write_through();
        }
        Self {
            map,
            banks: (0..cfg.banks)
                .map(|_| BankTimer::new(read, write, wtr))
                .collect(),
            store,
            wq: WriteQueue::new(cfg.write_queue_entries, cfg.cwc),
            cc,
            engine: EncryptionEngine::new(cfg.encryption_key()),
            stats: Stats::new(cfg.banks),
            rsr: None,
            armed_crash: None,
            crash_image: None,
            append_events: 0,
            bmt: cfg
                .integrity_tree
                .then(|| Bmt::new(cfg.encryption_key(), cfg.integrity_pages)),
            probes: Probes::default(),
            fault_spec: None,
            cfg: cfg.clone(),
        }
    }

    /// Attaches an [`Observer`] to the controller's event stream. With no
    /// observer attached the probe layer is a single branch per emission
    /// site and event payloads are never constructed.
    pub fn attach_observer(&mut self, obs: Box<dyn Observer>) {
        self.probes.attach(obs);
    }

    /// Detaches and returns all attached observers.
    pub fn take_observers(&mut self) -> Vec<Box<dyn Observer>> {
        self.probes.take()
    }

    /// The probe hub (the system layer emits core-level events here).
    pub fn probes_mut(&mut self) -> &mut Probes {
        &mut self.probes
    }

    /// The address map in use.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable statistics (the system layer records transaction
    /// latencies here).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Direct view of the persistent byte store (verification only).
    pub fn store(&self) -> &NvmStore {
        &self.store
    }

    /// Pending write-queue entries (diagnostics).
    pub fn wq_len(&self) -> usize {
        self.wq.len()
    }

    /// Total append events so far (an atomic data+counter pair counts as
    /// one). The crash experiments sweep their injection point over this
    /// count.
    pub fn append_events(&self) -> u64 {
        self.append_events
    }

    /// Snapshot of pending write-queue entries (diagnostics).
    pub fn wq_pending(&self) -> Vec<(crate::wqueue::WqTarget, u64)> {
        self.wq.pending()
    }

    fn ctr_bank(&self, page: PageId) -> usize {
        counter_bank(
            self.cfg.counter_placement,
            self.map.page_bank(page),
            self.cfg.banks,
        )
    }

    fn note_append_event(&mut self) {
        self.append_events += 1;
        if let Some(n) = self.armed_crash.as_mut() {
            *n -= 1;
            if *n == 0 {
                self.armed_crash = None;
                self.crash_image = Some(self.snapshot());
            }
        }
    }

    fn snapshot(&self) -> CrashImage {
        let mut store = self.store.clone();
        match self.fault_spec {
            None => {
                self.wq.flush_into(&mut store);
                if self.cfg.counter_cache_backing == CounterCacheBacking::Battery {
                    for (page, ctr) in self.cc_dirty_entries() {
                        store.write_counter(page, ctr.encode());
                    }
                }
            }
            Some(spec) => self.snapshot_faulted(&mut store, spec),
        }
        CrashImage {
            store,
            rsr: self.rsr,
            bmt_root: self.bmt.as_ref().map(supermem_integrity::Bmt::root),
        }
    }

    /// The power event goes wrong: the ADR drain tears mid-flush and/or
    /// a bank fail-stops, per `spec`. Everything the media loses or
    /// mangles is recorded in a [`FaultPlan`] attached to the image's
    /// store, so recovery's checked reads see the damage.
    fn snapshot_faulted(&self, store: &mut NvmStore, spec: FaultSpec) {
        let mut plan = FaultPlan::new(spec);
        let failed = plan.failed_bank(self.banks.len());
        if let Some(fb) = failed {
            // Settled lines on the failed bank are gone with it.
            for line in store.data_lines() {
                if self.map.data_bank(line) == fb {
                    plan.note_lost_data(line);
                }
            }
            for page in store.counter_lines() {
                if self.ctr_bank(page) == fb {
                    plan.note_lost_counter(page);
                }
            }
        }
        let tear = plan.drain_tear(self.wq.len());
        self.wq.flush_into_faulted(store, failed, tear, &mut plan);
        if self.cfg.counter_cache_backing == CounterCacheBacking::Battery {
            for (page, ctr) in self.cc_dirty_entries() {
                if failed == Some(self.ctr_bank(page)) {
                    plan.note_lost_counter(page);
                } else {
                    store.write_counter(page, ctr.encode());
                }
            }
        }
        store.attach_faults(plan);
    }

    fn cc_dirty_entries(&self) -> Vec<(PageId, CounterLine)> {
        self.cc.dirty_entries()
    }

    /// Folds a counter write into the integrity tree (the hash engine
    /// runs alongside the write path; its latency is off the retire
    /// critical path because the tree root is an on-chip register).
    fn note_counter_write(&mut self, page: PageId, encoded: &[u8; 64]) {
        if let Some(bmt) = &mut self.bmt {
            if page.0 < self.cfg.integrity_pages {
                bmt.update(page.0, encoded);
            }
        }
    }

    /// Fetches the authoritative counters for `page`: counter cache, then
    /// a pending write-queue entry (the NVM copy may lag it), then NVM.
    /// Returns the counters and the cycle at which they are available.
    fn fetch_counter(&mut self, page: PageId, at: Cycle) -> (CounterLine, Cycle) {
        let t = at + self.cfg.counter_cache_latency;
        if let Some(ctr) = self.cc.get(page) {
            let ctr = ctr.clone();
            self.stats.counter_cache_hits += 1;
            self.probes.emit_with(|| Event::CounterCacheHit {
                page: page.0,
                at: t,
            });
            return (ctr, t);
        }
        self.stats.counter_cache_misses += 1;
        self.probes.emit_with(|| Event::CounterCacheMiss {
            page: page.0,
            at: t,
        });
        if let Some(entry) = self.wq.forward_counter(page) {
            self.stats.wq_read_forwards += 1;
            let ctr = CounterLine::decode(&entry.payload);
            self.fill_counter_cache(page, ctr.clone(), t + FORWARD_LATENCY);
            return (ctr, t + FORWARD_LATENCY);
        }
        let bank = self.ctr_bank(page);
        if self.banks[bank].is_failed() {
            // Degraded mode: poison (fresh, all-zero) counters; skip
            // the cache fill so later reads can see a repaired bank.
            self.stats.poisoned_reads += 1;
            return (CounterLine::decode(&[0; 64]), t + 1);
        }
        let mut done = self.banks[bank].issue(OpKind::Read, t);
        self.stats.nvm_counter_reads += 1;
        let read_service = self.cfg.nvm_read_service_cycles();
        self.probes.emit_with(|| Event::BankBusy {
            bank,
            start: done - read_service,
            end: done,
            write: false,
        });
        let (raw, done_media) = self.media_read_counter(page, bank, done);
        done = done_media;
        let Some(raw) = raw else {
            self.stats.poisoned_reads += 1;
            return (CounterLine::decode(&[0; 64]), done);
        };
        // Counters arriving from (attacker-writable) NVM are verified
        // against the trusted root before use.
        if let Some(bmt) = &self.bmt {
            if page.0 < self.cfg.integrity_pages {
                self.stats.integrity_verifications += 1;
                done += self.cfg.hash_latency * bmt.height() as Cycle;
                if !bmt.verify(page.0, &raw) {
                    self.stats.integrity_violations += 1;
                }
            }
        }
        let ctr = CounterLine::decode(&raw);
        self.fill_counter_cache(page, ctr.clone(), done);
        (ctr, done)
    }

    /// Inserts counters into the counter cache; a dirty write-back
    /// eviction becomes a counter write to NVM.
    fn fill_counter_cache(&mut self, page: PageId, ctr: CounterLine, at: Cycle) {
        if let Some((evicted_page, evicted_ctr, dirty)) = self.cc.fill(page, ctr) {
            if dirty {
                self.stats.counter_cache_writebacks += 1;
                let bank = self.ctr_bank(evicted_page);
                let t = self.wait_slots(1, at);
                let encoded = evicted_ctr.encode();
                let seq = self
                    .wq
                    .append(WqTarget::Counter(evicted_page), bank, encoded, None, t);
                self.note_enqueue(WqTarget::Counter(evicted_page), bank, t, seq);
                self.note_counter_write(evicted_page, &encoded);
                self.note_append_event();
            }
        }
    }

    fn wait_slots(&mut self, needed: usize, from: Cycle) -> Cycle {
        self.wq.wait_for_slots(
            needed,
            from,
            &mut self.banks,
            &mut self.store,
            &mut self.stats,
            &mut self.probes,
        )
    }

    /// Notes a completed write-queue append on the probe stream.
    fn note_enqueue(&mut self, target: WqTarget, bank: usize, at: Cycle, seq: u64) {
        let occupancy = self.wq.len();
        let (counter, addr) = match target {
            WqTarget::Counter(page) => (true, page.0),
            WqTarget::Data(line) => (false, line.0),
        };
        self.probes.emit_with(|| Event::WqEnqueue {
            counter,
            addr,
            seq,
            bank,
            at,
            occupancy,
        });
    }

    /// Lets the write queue issue everything that can start by `now`.
    pub fn drain_until(&mut self, now: Cycle) {
        self.wq.drain_until(
            now,
            &mut self.banks,
            &mut self.store,
            &mut self.stats,
            &mut self.probes,
        );
    }

    /// Services a demand read of `line` issued at cycle `at`; returns the
    /// plaintext and the completion cycle. OTP generation overlaps the
    /// array read (Figure 2b), so the counter fetch usually hides behind
    /// tRCD + tCL.
    pub fn read_line(&mut self, line: LineAddr, at: Cycle) -> (LineData, Cycle) {
        self.drain_until(at);
        if let Some(entry) = self.wq.forward_data(line) {
            self.stats.wq_read_forwards += 1;
            let payload = entry.payload;
            let enc = entry.enc_counter;
            let done = at + FORWARD_LATENCY;
            let data = match enc {
                Some((major, minor)) if self.cfg.encryption => {
                    self.engine.decrypt_line(&payload, line.0, major, minor)
                }
                _ => payload,
            };
            self.probes.emit_with(|| Event::ReadServed {
                line: line.0,
                issued: at,
                done,
                forwarded: true,
            });
            return (data, done);
        }
        let bank = self.map.data_bank(line);
        if self.banks[bank].is_failed() {
            // Degraded mode: the bank is gone; answer with poison
            // rather than wedging behind dead hardware.
            self.stats.poisoned_reads += 1;
            let done = at + 1;
            self.probes.emit_with(|| Event::ReadServed {
                line: line.0,
                issued: at,
                done,
                forwarded: false,
            });
            return ([0; 64], done);
        }
        let done_data = self.banks[bank].issue(OpKind::Read, at);
        self.stats.nvm_data_reads += 1;
        let read_service = self.cfg.nvm_read_service_cycles();
        self.probes.emit_with(|| Event::BankBusy {
            bank,
            start: done_data - read_service,
            end: done_data,
            write: false,
        });
        let (cipher, done_data) = self.media_read_data(line, bank, done_data);
        let Some(cipher) = cipher else {
            self.stats.poisoned_reads += 1;
            self.probes.emit_with(|| Event::ReadServed {
                line: line.0,
                issued: at,
                done: done_data,
                forwarded: false,
            });
            return ([0; 64], done_data);
        };
        if !self.cfg.encryption {
            self.probes.emit_with(|| Event::ReadServed {
                line: line.0,
                issued: at,
                done: done_data,
                forwarded: false,
            });
            return (cipher, done_data);
        }
        let page = self.map.page_of_line(line);
        let idx = self.map.line_index_in_page(line);
        let (ctr, t_ctr) = self.fetch_counter(page, at);
        let otp_ready = t_ctr + self.cfg.aes_latency;
        let plain = self
            .engine
            .decrypt_line(&cipher, line.0, ctr.major(), ctr.minor(idx));
        let done = done_data.max(otp_ready) + 1;
        self.probes.emit_with(|| Event::ReadServed {
            line: line.0,
            issued: at,
            done,
            forwarded: false,
        });
        (plain, done)
    }

    /// Handles a cache-line flush arriving at cycle `at` (Figure 7):
    /// encrypts `plaintext` under the incremented counter and appends the
    /// data and counter writes. Returns the retire cycle — the moment the
    /// entries are accepted into the ADR domain, which is when the flush
    /// is architecturally durable (§2.1).
    pub fn flush_line(&mut self, line: LineAddr, plaintext: LineData, at: Cycle) -> Cycle {
        self.drain_until(at);
        let data_bank = self.map.data_bank(line);
        if !self.cfg.encryption {
            let t = self.wait_slots(1, at);
            let seq = self
                .wq
                .append(WqTarget::Data(line), data_bank, plaintext, None, t);
            self.note_enqueue(WqTarget::Data(line), data_bank, t, seq);
            self.note_append_event();
            self.probes.emit_with(|| Event::FlushRetired {
                line: line.0,
                issued: at,
                counter_ready: at,
                encrypted: at,
                retired: t,
            });
            return t;
        }

        let page = self.map.page_of_line(line);
        let idx = self.map.line_index_in_page(line);
        let (mut ctr, mut t_ctr) = self.fetch_counter(page, at);
        if ctr.increment(idx) == IncrementOutcome::Overflow {
            t_ctr = self.reencrypt_page(page, &mut ctr, t_ctr);
            match ctr.increment(idx) {
                IncrementOutcome::Incremented(_) => {}
                IncrementOutcome::Overflow => unreachable!("fresh minors cannot overflow"),
            }
        }
        let major = ctr.major();
        let minor = ctr.minor(idx);
        let cipher = self.engine.encrypt_line(&plaintext, line.0, major, minor);
        // In Osiris mode every data line carries an ECC-derived plaintext
        // tag so post-crash recovery can re-derive stale counters.
        let tag = self
            .cfg
            .osiris_window
            .map(|_| supermem_crypto::line_tag(&plaintext));
        let t_enc = t_ctr + self.cfg.aes_latency + REGISTER_LATENCY;

        // The counter cache entry is resident (fetch_counter filled it).
        let action = self.cc.update(page, ctr.clone());
        let retire = match action {
            CounterCacheOutcome::WriteThrough
                if self.cfg.mutation == Some(Mutation::CwcNewest)
                    && self.wq.forward_counter(page).is_some() =>
            {
                // Injected defect: "coalescing" keeps the stale pending
                // counter entry and drops the incoming (newest) update,
                // so the data line enqueues alone under an old counter.
                let victim = self
                    .wq
                    .forward_counter(page)
                    .map(|e| e.seq)
                    .expect("pending counter checked above");
                self.stats.counter_writes_coalesced += 1;
                self.probes.emit_with(|| Event::WqCoalesce {
                    page: page.0,
                    victim_seq: victim,
                    at: t_enc,
                });
                let t_app = self.wait_slots(1, t_enc);
                let seq = self.wq.append_tagged(
                    WqTarget::Data(line),
                    data_bank,
                    cipher,
                    Some((major, minor)),
                    tag,
                    t_app,
                );
                self.note_enqueue(WqTarget::Data(line), data_bank, t_app, seq);
                self.note_append_event();
                t_app
            }
            CounterCacheOutcome::WriteThrough => {
                let ctr_bank = self.ctr_bank(page);
                if let Some(victim) = self.wq.coalesce_counter(page, &mut self.stats) {
                    self.probes.emit_with(|| Event::WqCoalesce {
                        page: page.0,
                        victim_seq: victim,
                        at: t_enc,
                    });
                }
                let t_app = self.wait_slots(2, t_enc);
                let encoded = ctr.encode();
                self.note_counter_write(page, &encoded);
                if self.cfg.atomic_pair_append && self.cfg.mutation != Some(Mutation::PairSplit) {
                    // Both lines leave the staging register together: they
                    // enter the ADR domain as one event.
                    self.probes.emit_with(|| Event::RegisterStage {
                        line: line.0,
                        page: page.0,
                        at: t_app,
                    });
                    let seq =
                        self.wq
                            .append(WqTarget::Counter(page), ctr_bank, encoded, None, t_app);
                    self.note_enqueue(WqTarget::Counter(page), ctr_bank, t_app, seq);
                    let seq = self.wq.append_tagged(
                        WqTarget::Data(line),
                        data_bank,
                        cipher,
                        Some((major, minor)),
                        tag,
                        t_app,
                    );
                    self.note_enqueue(WqTarget::Data(line), data_bank, t_app, seq);
                    self.note_append_event();
                    t_app
                } else if self.cfg.atomic_pair_append {
                    // Injected defect (pair-split): the controller still
                    // stages the pair — claiming atomicity — but releases
                    // the two lines separately, with the queue free to
                    // issue in between (the Figure 6 window reopened).
                    self.probes.emit_with(|| Event::RegisterStage {
                        line: line.0,
                        page: page.0,
                        at: t_app,
                    });
                    let seq =
                        self.wq
                            .append(WqTarget::Counter(page), ctr_bank, encoded, None, t_app);
                    self.note_enqueue(WqTarget::Counter(page), ctr_bank, t_app, seq);
                    self.note_append_event();
                    let t_late = self.wait_slots(1, t_app + 1);
                    let seq = self.wq.append_tagged(
                        WqTarget::Data(line),
                        data_bank,
                        cipher,
                        Some((major, minor)),
                        tag,
                        t_late,
                    );
                    self.note_enqueue(WqTarget::Data(line), data_bank, t_late, seq);
                    self.note_append_event();
                    t_late
                } else {
                    // Vulnerable baseline (Figure 6): counter first, data
                    // second, separately interruptible.
                    let seq =
                        self.wq
                            .append(WqTarget::Counter(page), ctr_bank, encoded, None, t_app);
                    self.note_enqueue(WqTarget::Counter(page), ctr_bank, t_app, seq);
                    self.note_append_event();
                    let seq = self.wq.append_tagged(
                        WqTarget::Data(line),
                        data_bank,
                        cipher,
                        Some((major, minor)),
                        tag,
                        t_app,
                    );
                    self.note_enqueue(WqTarget::Data(line), data_bank, t_app, seq);
                    self.note_append_event();
                    t_app
                }
            }
            CounterCacheOutcome::Deferred => {
                let mut t_app = self.wait_slots(1, t_enc);
                let seq = self.wq.append_tagged(
                    WqTarget::Data(line),
                    data_bank,
                    cipher,
                    Some((major, minor)),
                    tag,
                    t_app,
                );
                self.note_enqueue(WqTarget::Data(line), data_bank, t_app, seq);
                self.note_append_event();
                // Osiris bounds counter staleness: every `window`-th
                // increment of a minor persists the counter line, so
                // recovery's trial-decryption search stays within the
                // window.
                if let Some(window) = self.cfg.osiris_window {
                    if minor % window == 0 {
                        let ctr_bank = self.ctr_bank(page);
                        t_app = self.wait_slots(1, t_app);
                        let encoded = ctr.encode();
                        self.note_counter_write(page, &encoded);
                        let seq =
                            self.wq
                                .append(WqTarget::Counter(page), ctr_bank, encoded, None, t_app);
                        self.note_enqueue(WqTarget::Counter(page), ctr_bank, t_app, seq);
                        self.note_append_event();
                    }
                }
                t_app
            }
        };
        // The re-encryption's new counters are durable now (write queue in
        // write-through mode, battery-backed counter cache in write-back):
        // free the RSR.
        if self
            .rsr
            .as_ref()
            .is_some_and(|r| r.page() == page && r.all_done())
        {
            self.rsr = None;
            self.probes.emit_with(|| Event::RsrRetired {
                page: page.0,
                at: retire,
            });
        }
        self.probes.emit_with(|| Event::FlushRetired {
            line: line.0,
            issued: at,
            counter_ready: t_ctr,
            encrypted: t_enc,
            retired: retire,
        });
        retire
    }

    /// Re-encrypts `page` after a minor-counter overflow (§3.4.4):
    /// reads all 64 lines, decrypts under the old counters, re-encrypts
    /// under `major + 1` with zeroed minors, and appends the rewrites.
    /// `ctr` is updated in place. The caller persists the new counter
    /// line through its normal path.
    fn reencrypt_page(&mut self, page: PageId, ctr: &mut CounterLine, at: Cycle) -> Cycle {
        self.stats.pages_reencrypted += 1;
        self.probes
            .emit_with(|| Event::ReencryptStart { page: page.0, at });
        // No stale ciphertext for this page may drain after the rewrite:
        // push out everything pending first.
        let t0 = self.wq.drain_all(
            at,
            &mut self.banks,
            &mut self.store,
            &mut self.stats,
            &mut self.probes,
        );
        let old = ctr.clone();
        self.rsr = Some(Rsr::new(page, old.major()));
        ctr.bump_major();
        let data_bank = self.map.page_bank(page);
        let mut t = t0;
        for idx in 0..self.map.lines_per_page() as usize {
            let line = self.map.line_in_page(page, idx);
            let done_read = self.banks[data_bank].issue(OpKind::Read, t);
            self.stats.nvm_data_reads += 1;
            let read_service = self.cfg.nvm_read_service_cycles();
            self.probes.emit_with(|| Event::BankBusy {
                bank: data_bank,
                start: done_read - read_service,
                end: done_read,
                write: false,
            });
            let cipher_old = self.store.read_data(line);
            let plain = self
                .engine
                .decrypt_line(&cipher_old, line.0, old.major(), old.minor(idx));
            let cipher_new = self.engine.encrypt_line(&plain, line.0, ctr.major(), 0);
            let tag = self
                .cfg
                .osiris_window
                .map(|_| supermem_crypto::line_tag(&plain));
            let t_app = self.wait_slots(1, done_read + self.cfg.aes_latency);
            let seq = self.wq.append_tagged(
                WqTarget::Data(line),
                data_bank,
                cipher_new,
                Some((ctr.major(), 0)),
                tag,
                t_app,
            );
            self.note_enqueue(WqTarget::Data(line), data_bank, t_app, seq);
            // Injected defect (rsr-skip): line 0's done-bit is never set,
            // so the RSR can never retire and a crash after this rewrite
            // replays the line under an ambiguous epoch.
            let skip_done = self.cfg.mutation == Some(Mutation::RsrSkip) && idx == 0;
            if !skip_done {
                if let Some(r) = self.rsr.as_mut() {
                    r.set_done(idx);
                    self.probes.emit_with(|| Event::RsrMarkDone {
                        page: page.0,
                        idx: idx as u32,
                        at: t_app,
                    });
                }
            }
            self.note_append_event();
            t = t_app;
        }
        let lines = self.map.lines_per_page() as u32;
        self.probes.emit_with(|| Event::ReencryptDone {
            page: page.0,
            lines,
            at: t,
        });
        t
    }

    /// Explicitly writes back one page's dirty counter line from the
    /// write-back counter cache (the `counter_cache_writeback()`
    /// primitive of Liu et al.'s selective counter-atomicity, discussed
    /// in the paper's §2.3/§6). Returns the retire cycle, or `at` if the
    /// page's counters are clean or absent.
    pub fn writeback_page_counters(&mut self, page: PageId, at: Cycle) -> Cycle {
        // Only dirty entries need persisting; `is_dirty` tests this
        // without LRU side effects (and, unlike snapshotting the full
        // dirty set, without cloning every dirty counter line).
        if !self.cc.is_dirty(page) {
            return at;
        }
        let encoded = self
            .cc
            .peek(page)
            .expect("dirty page must be resident")
            .encode();
        let bank = self.ctr_bank(page);
        let t = self.wait_slots(1, at + self.cfg.counter_cache_latency);
        self.note_counter_write(page, &encoded);
        let seq = self
            .wq
            .append(WqTarget::Counter(page), bank, encoded, None, t);
        self.note_enqueue(WqTarget::Counter(page), bank, t, seq);
        self.note_append_event();
        self.cc_clear_dirty(page);
        t
    }

    fn cc_clear_dirty(&mut self, page: PageId) {
        self.cc.clear_dirty(page);
    }

    /// Clean shutdown: flushes dirty write-back counters and drains the
    /// write queue. Returns the cycle the last write began service.
    pub fn finish(&mut self, from: Cycle) -> Cycle {
        let mut t = from;
        for (page, ctr) in self.cc.drain_dirty() {
            self.stats.counter_cache_writebacks += 1;
            let bank = self.ctr_bank(page);
            let t_app = self.wait_slots(1, t);
            let encoded = ctr.encode();
            self.note_counter_write(page, &encoded);
            let seq = self
                .wq
                .append(WqTarget::Counter(page), bank, encoded, None, t_app);
            self.note_enqueue(WqTarget::Counter(page), bank, t_app, seq);
            t = t_app;
        }
        self.wq.drain_all(
            t,
            &mut self.banks,
            &mut self.store,
            &mut self.stats,
            &mut self.probes,
        )
    }

    /// Arms a crash that triggers after `appends` more append events
    /// (an atomic data+counter pair counts as one event; with
    /// `atomic_pair_append` disabled the counter and data appends are
    /// separate events). The frozen image is retrievable with
    /// [`MemoryController::take_crash_image`].
    ///
    /// # Panics
    ///
    /// Panics if `appends` is zero.
    pub fn arm_crash_after_appends(&mut self, appends: u64) {
        assert!(appends > 0, "crash countdown must be positive");
        self.armed_crash = Some(appends);
        self.crash_image = None;
    }

    /// The image frozen by an armed crash, if it has triggered.
    pub fn take_crash_image(&mut self) -> Option<CrashImage> {
        self.crash_image.take()
    }

    /// Simulates an immediate power failure and returns the surviving
    /// NVM image.
    pub fn crash_now(&self) -> CrashImage {
        self.snapshot()
    }

    /// Makes the next power event go wrong per `spec`: the crash image
    /// produced by [`MemoryController::crash_now`] or an armed crash
    /// will carry the spec's torn drain or failed bank, recorded in a
    /// [`FaultPlan`] attached to the image store. The live system is
    /// unaffected until then.
    pub fn set_fault_plan(&mut self, spec: FaultSpec) {
        self.fault_spec = Some(spec);
    }

    /// Attaches a fault plan to the *live* store, so demand reads hit
    /// the media model (tests of the retry/poison path use this).
    pub fn attach_store_faults(&mut self, plan: FaultPlan) {
        self.store.attach_faults(plan);
    }

    /// Fail-stops a bank: the controller enters degraded mode, dropping
    /// writes headed there and poisoning reads instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn mark_bank_failed(&mut self, bank: usize) {
        self.banks[bank].mark_failed();
    }

    /// True when any bank has fail-stopped.
    pub fn is_degraded(&self) -> bool {
        self.banks.iter().any(BankTimer::is_failed)
    }

    /// Reads a data line through the media model with bounded
    /// retry-with-backoff on transient failures. Returns `None` (and
    /// the final completion cycle) when the line is unreadable — the
    /// caller poisons the response instead of panicking.
    fn media_read_data(
        &mut self,
        line: LineAddr,
        bank: usize,
        done: Cycle,
    ) -> (Option<LineData>, Cycle) {
        let before = self.store.fault_counters().ecc_corrections;
        let mut done = done;
        let mut backoff = RETRY_BACKOFF;
        let mut out = None;
        for attempt in 0..=READ_RETRY_LIMIT {
            match self.store.read_data_checked(line) {
                Ok(d) => {
                    out = Some(d);
                    break;
                }
                Err(MediaError::Transient) if attempt < READ_RETRY_LIMIT => {
                    self.stats.read_retries += 1;
                    done = self.banks[bank].issue(OpKind::Read, done + backoff);
                    backoff *= 2;
                }
                Err(_) => break,
            }
        }
        self.stats.ecc_corrections += self.store.fault_counters().ecc_corrections - before;
        (out, done)
    }

    /// [`Self::media_read_data`] for a counter line.
    fn media_read_counter(
        &mut self,
        page: PageId,
        bank: usize,
        done: Cycle,
    ) -> (Option<LineData>, Cycle) {
        let before = self.store.fault_counters().ecc_corrections;
        let mut done = done;
        let mut backoff = RETRY_BACKOFF;
        let mut out = None;
        for attempt in 0..=READ_RETRY_LIMIT {
            match self.store.read_counter_checked(page) {
                Ok(d) => {
                    out = Some(d);
                    break;
                }
                Err(MediaError::Transient) if attempt < READ_RETRY_LIMIT => {
                    self.stats.read_retries += 1;
                    done = self.banks[bank].issue(OpKind::Read, done + backoff);
                    backoff *= 2;
                }
                Err(_) => break,
            }
        }
        self.stats.ecc_corrections += self.store.fault_counters().ecc_corrections - before;
        (out, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_sim::{CounterCacheMode, CounterPlacement};

    fn cfg() -> Config {
        Config::default()
    }

    fn unsec() -> Config {
        let mut c = cfg();
        c.encryption = false;
        c
    }

    #[test]
    fn write_then_read_roundtrips_plaintext() {
        let mut mc = MemoryController::new(&cfg());
        let line = LineAddr(0x4000);
        let retire = mc.flush_line(line, [0x5A; 64], 0);
        let (data, done) = mc.read_line(line, retire);
        assert_eq!(data, [0x5A; 64]);
        assert!(done > retire);
    }

    #[test]
    fn store_holds_ciphertext_not_plaintext() {
        let mut mc = MemoryController::new(&cfg());
        let line = LineAddr(0x4000);
        let retire = mc.flush_line(line, [0x5A; 64], 0);
        mc.finish(retire);
        assert_ne!(
            mc.store().read_data(line),
            [0x5A; 64],
            "NVM must hold ciphertext"
        );
    }

    #[test]
    fn unsec_store_holds_plaintext() {
        let mut mc = MemoryController::new(&unsec());
        let line = LineAddr(0x4000);
        let retire = mc.flush_line(line, [0x5A; 64], 0);
        mc.finish(retire);
        assert_eq!(mc.store().read_data(line), [0x5A; 64]);
    }

    #[test]
    fn write_through_doubles_write_requests() {
        let mut c = cfg();
        c.cwc = false;
        let mut mc = MemoryController::new(&c);
        let mut t = 0;
        for i in 0..16u64 {
            // Distinct pages so CWC (even if on) could not merge.
            t = mc.flush_line(LineAddr(i * 4096), [i as u8; 64], t);
        }
        mc.finish(t);
        assert_eq!(mc.stats().nvm_data_writes, 16);
        assert_eq!(mc.stats().nvm_counter_writes, 16);
    }

    #[test]
    fn cwc_coalesces_same_page_counter_writes() {
        let mut c = cfg();
        c.cwc = true;
        let mut mc = MemoryController::new(&c);
        let mut t = 0;
        // 16 lines of ONE page flushed back-to-back: counters share one
        // line, so pending counter writes merge.
        for i in 0..16u64 {
            t = mc.flush_line(LineAddr(i * 64), [i as u8; 64], t);
        }
        mc.finish(t);
        assert_eq!(mc.stats().nvm_data_writes, 16);
        assert!(
            mc.stats().counter_writes_coalesced >= 8,
            "expected heavy coalescing, got {}",
            mc.stats().counter_writes_coalesced
        );
        assert_eq!(
            mc.stats().nvm_counter_writes + mc.stats().counter_writes_coalesced,
            16
        );
    }

    #[test]
    fn write_back_defers_counter_writes() {
        let mut c = cfg();
        c.counter_cache_mode = CounterCacheMode::WriteBack;
        c.counter_cache_backing = CounterCacheBacking::Battery;
        let mut mc = MemoryController::new(&c);
        let mut t = 0;
        for i in 0..16u64 {
            t = mc.flush_line(LineAddr(i * 64), [1; 64], t);
        }
        // Before finish: only data writes reach NVM.
        assert_eq!(mc.stats().nvm_counter_writes, 0);
        mc.finish(t);
        // One page -> one dirty counter line at shutdown.
        assert_eq!(mc.stats().nvm_counter_writes, 1);
        assert_eq!(mc.stats().counter_cache_writebacks, 1);
    }

    #[test]
    fn xbank_separates_data_and_counter_banks() {
        let mut c = cfg();
        c.counter_placement = CounterPlacement::CrossBank;
        c.cwc = false;
        let mut mc = MemoryController::new(&c);
        // Page 0 -> bank 0; its counters must land in bank 4.
        let t = mc.flush_line(LineAddr(0), [1; 64], 0);
        mc.finish(t);
        assert_eq!(mc.stats().bank_writes[0], 1);
        assert_eq!(mc.stats().bank_writes[4], 1);
    }

    #[test]
    fn single_bank_funnels_counters_to_last_bank() {
        let mut c = cfg();
        c.counter_placement = CounterPlacement::SingleBank;
        c.cwc = false;
        let mut mc = MemoryController::new(&c);
        let mut t = 0;
        for p in 0..4u64 {
            t = mc.flush_line(LineAddr(p * 4096), [1; 64], t);
        }
        mc.finish(t);
        assert_eq!(mc.stats().bank_writes[7], 4, "all counters in bank 7");
    }

    #[test]
    fn read_forwards_from_pending_write() {
        let mut c = cfg();
        // Huge queue so nothing drains at t=0.
        c.write_queue_entries = 128;
        let mut mc = MemoryController::new(&c);
        let line = LineAddr(0x2000);
        let retire = mc.flush_line(line, [7; 64], 0);
        // Read while the entry is still pending (one cycle before it
        // becomes issuable): it must be forwarded from the queue.
        let (data, done) = mc.read_line(line, retire - 1);
        assert_eq!(data, [7; 64]);
        assert!(mc.stats().wq_read_forwards >= 1);
        assert_eq!(done, retire - 1 + FORWARD_LATENCY);
    }

    #[test]
    fn crash_preserves_adr_write_queue() {
        let mut mc = MemoryController::new(&cfg());
        let line = LineAddr(0x8000);
        let retire = mc.flush_line(line, [3; 64], 0);
        // Crash immediately: entries are still queued but in the ADR
        // domain, so they survive.
        let image = mc.crash_now();
        let page = mc.map().page_of_line(line);
        let idx = mc.map().line_index_in_page(line);
        let ctr = CounterLine::decode(&image.store.read_counter(page));
        assert_eq!(ctr.minor(idx), 1);
        let engine = EncryptionEngine::new(cfg().encryption_key());
        let plain = engine.decrypt_line(&image.store.read_data(line), line.0, ctr.major(), 1);
        assert_eq!(plain, [3; 64]);
        let _ = retire;
    }

    #[test]
    fn atomic_append_keeps_pairs_together_across_crash() {
        // With the register, any armed crash point sees counter and data
        // either both present or both absent.
        for crash_at in 1..=4u64 {
            let mut mc = MemoryController::new(&cfg());
            mc.arm_crash_after_appends(crash_at);
            let mut t = 0;
            for i in 0..4u64 {
                t = mc.flush_line(LineAddr(i * 4096), [0xC0 + i as u8; 64], t);
            }
            let image = mc.take_crash_image().expect("crash must trigger");
            let engine = EncryptionEngine::new(cfg().encryption_key());
            for i in 0..crash_at {
                let line = LineAddr((i) * 4096);
                let page = PageId(i);
                let ctr = CounterLine::decode(&image.store.read_counter(page));
                if i < crash_at {
                    assert_eq!(ctr.minor(0), 1, "counter persisted for flush {i}");
                    let plain = engine.decrypt_line(&image.store.read_data(line), line.0, 0, 1);
                    assert_eq!(plain, [0xC0 + i as u8; 64], "data persisted for flush {i}");
                }
            }
        }
    }

    #[test]
    fn nonatomic_append_exposes_figure6_window() {
        // Without the register, a crash can land after the counter append
        // but before the data append: the new counter is durable, the old
        // data is still in place, and decryption fails (Figure 6).
        let mut c = cfg();
        c.atomic_pair_append = false;
        let line = LineAddr(0x6000);
        // First write the line once so it holds real old data.
        let mut mc = MemoryController::with_store(&c, NvmStore::new());
        let t = mc.flush_line(line, [0x01; 64], 0);
        mc.finish(t);
        let base = mc.store().clone();

        let mut mc = MemoryController::with_store(&c, base);
        mc.arm_crash_after_appends(1); // right between counter and data
        mc.flush_line(line, [0x02; 64], 0);
        let image = mc.take_crash_image().expect("crash armed");
        let page = PageId(line.0 / 4096);
        let idx = (line.0 % 4096) / 64;
        let ctr = CounterLine::decode(&image.store.read_counter(page));
        assert_eq!(ctr.minor(idx as usize), 2, "new counter persisted");
        let engine = EncryptionEngine::new(c.encryption_key());
        let plain = engine.decrypt_line(
            &image.store.read_data(line),
            line.0,
            ctr.major(),
            ctr.minor(idx as usize),
        );
        assert_ne!(plain, [0x01; 64], "old data no longer decryptable");
        assert_ne!(plain, [0x02; 64], "new data never became durable");
    }

    #[test]
    fn battery_backed_write_back_survives_crash() {
        let mut c = cfg();
        c.counter_cache_mode = CounterCacheMode::WriteBack;
        c.counter_cache_backing = CounterCacheBacking::Battery;
        let mut mc = MemoryController::new(&c);
        let line = LineAddr(0x3000);
        mc.flush_line(line, [9; 64], 0);
        let image = mc.crash_now();
        let page = PageId(line.0 / 4096);
        let ctr = CounterLine::decode(&image.store.read_counter(page));
        assert_eq!(ctr.minor(((line.0 % 4096) / 64) as usize), 1);
    }

    #[test]
    fn unbacked_write_back_loses_counters_on_crash() {
        let mut c = cfg();
        c.counter_cache_mode = CounterCacheMode::WriteBack;
        c.counter_cache_backing = CounterCacheBacking::None;
        let mut mc = MemoryController::new(&c);
        let line = LineAddr(0x3000);
        mc.flush_line(line, [9; 64], 0);
        let image = mc.crash_now();
        let page = PageId(line.0 / 4096);
        let ctr = CounterLine::decode(&image.store.read_counter(page));
        assert_eq!(ctr.minor(12), 0, "counter lost: stale zero in NVM");
    }

    #[test]
    fn minor_overflow_triggers_reencryption_and_stays_readable() {
        let mut mc = MemoryController::new(&cfg());
        let line = LineAddr(0);
        let mut t = 0;
        for i in 0..128u64 {
            t = mc.flush_line(line, [i as u8; 64], t);
        }
        assert_eq!(mc.stats().pages_reencrypted, 1);
        let (data, _) = mc.read_line(line, t);
        assert_eq!(data, [127; 64]);
        // Another line of the same page must also still decrypt.
        let other = LineAddr(64);
        let t2 = mc.flush_line(other, [0xEE; 64], t);
        let (data, _) = mc.read_line(other, t2);
        assert_eq!(data, [0xEE; 64]);
    }

    #[test]
    fn reencryption_preserves_other_lines() {
        let mut mc = MemoryController::new(&cfg());
        let hot = LineAddr(0);
        let cold = LineAddr(64 * 10);
        let mut t = mc.flush_line(cold, [0xAB; 64], 0);
        for i in 0..128u64 {
            t = mc.flush_line(hot, [i as u8; 64], t);
        }
        assert!(mc.stats().pages_reencrypted >= 1);
        let (data, _) = mc.read_line(cold, t);
        assert_eq!(data, [0xAB; 64], "cold line survives page re-encryption");
    }

    #[test]
    fn counter_fetch_forwards_from_pending_queue_entry() {
        // Tiny counter cache: entry evicted while its write is pending.
        let mut c = cfg();
        c.counter_cache_bytes = 64; // one entry
        c.counter_cache_ways = 1;
        c.write_queue_entries = 128;
        let mut mc = MemoryController::new(&c);
        let a = LineAddr(0); // page 0
        let b = LineAddr(4096); // page 1 evicts page 0 from the 1-entry cc
        let t = mc.flush_line(a, [1; 64], 0);
        let t = mc.flush_line(b, [2; 64], t);
        // Flush to page 0 again: cc miss, but the pending WQ entry has
        // minor=1; NVM still has 0. The next minor must be 2.
        let t = mc.flush_line(a, [3; 64], t);
        mc.finish(t);
        let ctr = CounterLine::decode(&mc.store().read_counter(PageId(0)));
        assert_eq!(
            ctr.minor(0),
            2,
            "counter forwarding must see the pending value"
        );
        let (data, _) = mc.read_line(a, t + 10_000);
        assert_eq!(data, [3; 64]);
    }

    #[test]
    fn wq_backpressure_stalls_flushes() {
        let mut c = cfg();
        c.write_queue_entries = 4;
        c.cwc = false;
        c.counter_placement = CounterPlacement::SingleBank;
        let mut mc = MemoryController::new(&c);
        let mut t = 0;
        // All lines in one page: counter-cache hits keep the flush rate
        // high while every write lands in two banks only, so the 4-entry
        // queue must fill.
        for i in 0..32u64 {
            t = mc.flush_line(LineAddr(i % 64 * 64), [1; 64], t);
        }
        assert!(mc.stats().wq_stall_cycles > 0, "tiny queue must stall");
        assert!(mc.stats().wq_full_events > 0);
    }

    #[test]
    fn stats_accessors() {
        let mut mc = MemoryController::new(&cfg());
        mc.stats_mut().record_txn(10);
        assert_eq!(mc.stats().txn_commits, 1);
        assert_eq!(mc.wq_len(), 0);
    }

    /// Writes a line durably and returns the controller plus the retire
    /// cycle, for the media-fault tests below.
    fn settled_line(c: &Config, line: LineAddr, fill: u8) -> (MemoryController, Cycle) {
        let mut mc = MemoryController::new(c);
        let retire = mc.flush_line(line, [fill; 64], 0);
        let t = mc.finish(retire);
        (mc, t)
    }

    #[test]
    fn transient_read_failures_are_retried_through() {
        let line = LineAddr(0x4000);
        let (mut mc, t) = settled_line(&cfg(), line, 0x5A);
        let mut plan = FaultPlan::default();
        plan.fail_data_reads(line, 2);
        mc.attach_store_faults(plan);
        let (data, done) = mc.read_line(line, t);
        assert_eq!(data, [0x5A; 64], "retries must recover the data");
        assert_eq!(mc.stats().read_retries, 2);
        assert_eq!(mc.stats().poisoned_reads, 0);
        assert!(done > t, "backoff costs cycles");
    }

    #[test]
    fn exhausted_retries_poison_instead_of_panicking() {
        let line = LineAddr(0x4000);
        let (mut mc, t) = settled_line(&cfg(), line, 0x5A);
        let mut plan = FaultPlan::default();
        // One more failure than the initial attempt plus its retries.
        plan.fail_data_reads(line, 4);
        mc.attach_store_faults(plan);
        let (data, _) = mc.read_line(line, t);
        assert_eq!(data, [0; 64], "unreadable line answers poison");
        assert_eq!(mc.stats().poisoned_reads, 1);
        assert_eq!(mc.stats().read_retries, 3);
    }

    #[test]
    fn single_bit_flip_is_corrected_and_counted() {
        let line = LineAddr(0x4000);
        let (mut mc, t) = settled_line(&cfg(), line, 0x5A);
        let mut plan = FaultPlan::default();
        plan.flip_data_bit(line, 17);
        mc.attach_store_faults(plan);
        let (data, _) = mc.read_line(line, t);
        assert_eq!(data, [0x5A; 64], "SECDED corrects a single wrong bit");
        assert!(mc.stats().ecc_corrections >= 1);
        assert_eq!(mc.stats().poisoned_reads, 0);
    }

    #[test]
    fn double_bit_flip_is_detected_and_poisoned() {
        let line = LineAddr(0x4000);
        let (mut mc, t) = settled_line(&cfg(), line, 0x5A);
        let mut plan = FaultPlan::default();
        plan.flip_data_bit(line, 3);
        plan.flip_data_bit(line, 100);
        mc.attach_store_faults(plan);
        let (data, _) = mc.read_line(line, t);
        assert_eq!(data, [0; 64], "uncorrectable line answers poison");
        assert_eq!(mc.stats().poisoned_reads, 1);
        assert!(mc.store().fault_counters().ecc_detections >= 1);
    }

    #[test]
    fn failed_bank_degrades_reads_and_writes() {
        let c = cfg();
        let line = LineAddr(0x4000);
        let (mut mc, t) = settled_line(&c, line, 0x5A);
        let map = AddressMap::new(c.nvm_bytes, c.line_bytes, c.page_bytes, c.banks);
        assert!(!mc.is_degraded());
        mc.mark_bank_failed(map.data_bank(line));
        assert!(mc.is_degraded());
        // Reads of the dead bank answer poison, not a wedge or a panic.
        let (data, _) = mc.read_line(line, t);
        assert_eq!(data, [0; 64]);
        assert_eq!(mc.stats().poisoned_reads, 1);
        // Writes headed there are dropped and counted.
        let dropped_before = mc.stats().dropped_writes;
        let retire = mc.flush_line(line, [0x77; 64], t);
        mc.finish(retire);
        assert!(mc.stats().dropped_writes > dropped_before);
    }
}
