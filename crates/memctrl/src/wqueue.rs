//! The ADR-protected write queue with counter write coalescing.
//!
//! Entries reaching this queue are durable (the ADR battery drains them
//! to NVM on a power failure, §2.1), so a cache-line flush *retires* the
//! moment its entry is appended. Each entry carries the paper's one-bit
//! flag distinguishing counter-cache lines from CPU-cache lines, which
//! bounds the CWC search (§3.4.3).
//!
//! CWC: when a new counter line for page `p` arrives and an older counter
//! entry for `p` is still pending, the *older* entry is removed and the
//! new one appended at the tail — the newer line supersedes the older
//! one's contents (split counters are monotone), and keeping the younger
//! entry maximizes further merging (Figure 10/11).
//!
//! Draining: entries issue to banks oldest-first among the entries whose
//! target bank is free — a compact FR-FCFS-like policy. An entry's queue
//! slot is released when its bank begins service.

use supermem_nvm::addr::{LineAddr, PageId};
use supermem_nvm::bank::{BankTimer, OpKind};
use supermem_nvm::fault::{tear_line, DrainTear, FaultPlan};
use supermem_nvm::{LineData, NvmStore};
use supermem_sim::{Cycle, Event, FxHashMap, Probes, Stats};

/// What a write-queue entry targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WqTarget {
    /// An (encrypted) data line.
    Data(LineAddr),
    /// The counter line of a page.
    Counter(PageId),
    /// An integrity-tree node-group line, keyed by the packed
    /// `(level, group)` id ([`supermem_integrity::tree_line_id`]).
    /// Streaming-tree propagation emits these as first-class write-queue
    /// traffic; they are invisible in eager mode.
    Tree(u64),
}

/// One pending write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WqEntry {
    /// Target line.
    pub target: WqTarget,
    /// Destination bank (already resolved by the placement policy).
    pub bank: usize,
    /// The 64 bytes to persist (ciphertext for data, raw for counters).
    pub payload: LineData,
    /// For data entries: the (major, minor) used at encryption time, so
    /// forwarded reads can decrypt without consulting the counter store.
    pub enc_counter: Option<(u64, u8)>,
    /// ECC-derived plaintext tag (Osiris mode); persisted beside the
    /// line at no extra write cost.
    pub tag: Option<u64>,
    /// Cycle at which the entry became eligible to issue.
    pub ready: Cycle,
    /// Monotonic appendage order (FIFO tiebreak).
    pub seq: u64,
}

impl WqEntry {
    /// The paper's flag bit: `true` for entries from the counter cache.
    pub fn is_counter(&self) -> bool {
        matches!(self.target, WqTarget::Counter(_))
    }
}

/// The memory controller's write queue.
///
/// # Examples
///
/// ```
/// use supermem_memctrl::{WriteQueue, WqTarget};
/// use supermem_nvm::addr::LineAddr;
///
/// let mut wq = WriteQueue::new(32, true);
/// assert_eq!(wq.free_slots(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct WriteQueue {
    /// Slab of `capacity` slots; `None` slots are free.
    slots: Vec<Option<WqEntry>>,
    /// Free slot indices (reuse order is irrelevant to results).
    free: Vec<usize>,
    /// Target → occupied slots in age (seq) order. Appends push at the
    /// back, so the front is always the oldest pending write to that
    /// target — which makes CWC, read forwarding, and the same-address
    /// ordering check in [`WriteQueue::next_issuable`] O(1) per entry
    /// instead of a queue scan.
    index: FxHashMap<WqTarget, Vec<usize>>,
    capacity: usize,
    cwc: bool,
    seq: u64,
    /// Offset added to entry bank indices when reporting stats/events, so
    /// a per-channel queue attributes its writes to machine-global bank
    /// ids (`channel * banks_per_channel + local_bank`). Entry `bank`
    /// fields stay channel-local (they index the channel's bank timers).
    bank_base: usize,
    /// Fast-forward cache: a lower bound on the earliest cycle at which
    /// any pending entry could begin service, or `None` when unknown.
    /// Valid because [`BankTimer::earliest_start`] for a write is
    /// `max(ready, busy_until)` and `busy_until` only increases on a
    /// live controller, so the bound can only move later until the
    /// queue itself changes — appends and removals reset it to `None`.
    next_start: Option<Cycle>,
    /// When false, [`WriteQueue::drain_until`] ignores the cache and
    /// rescans the slab on every call (the tick-by-tick reference
    /// behavior the equivalence tests A/B against).
    fast_forward: bool,
}

impl WriteQueue {
    /// Creates an empty queue of `capacity` entries; `cwc` enables
    /// counter write coalescing.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (a data+counter pair must fit).
    pub fn new(capacity: usize, cwc: bool) -> Self {
        assert!(capacity >= 2, "write queue must hold a data+counter pair");
        Self {
            slots: (0..capacity).map(|_| None).collect(),
            free: (0..capacity).rev().collect(),
            index: FxHashMap::default(),
            capacity,
            cwc,
            seq: 0,
            bank_base: 0,
            next_start: None,
            fast_forward: true,
        }
    }

    /// Enables or disables the drain fast path (on by default). The
    /// fast path is exact — it only skips scans that would provably
    /// issue nothing — so this knob exists for A/B equivalence tests
    /// and for ruling the cache out while debugging.
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// The cached lower bound on the next entry's service start, if one
    /// is currently known. `None` means the next drain will rescan.
    pub fn next_issue_bound(&self) -> Option<Cycle> {
        self.next_start
    }

    /// Whether a drain at `now` could issue anything. A `false` answer
    /// is exact (the queue is empty, or every pending entry provably
    /// starts after `now`), so callers may skip the drain outright; a
    /// `true` answer is conservative and merely means "scan needed".
    pub fn may_issue_by(&self, now: Cycle) -> bool {
        if self.is_empty() {
            return false;
        }
        match (self.fast_forward, self.next_start) {
            (true, Some(bound)) => bound <= now,
            _ => true,
        }
    }

    /// Sets the global-bank offset reported in stats and events (a
    /// channel's queue reports `bank_base + local_bank`).
    pub fn set_bank_base(&mut self, bank_base: usize) {
        self.bank_base = bank_base;
    }

    /// Entries currently pending.
    pub fn len(&self) -> usize {
        self.capacity - self.free.len()
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.free.len() == self.capacity
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free slots right now.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Whether CWC is enabled.
    pub fn cwc_enabled(&self) -> bool {
        self.cwc
    }

    /// Occupied entries, any order.
    fn entries(&self) -> impl Iterator<Item = (usize, &WqEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i, e)))
    }

    /// Removes and returns the entry in `slot`, maintaining the index.
    ///
    /// # Panics
    ///
    /// Panics if the slot is free (a queue-internal sequencing bug).
    // Justified panics: the `expect`s below are the documented sequencing
    // invariant above — slot, index, and list entries move together.
    #[allow(clippy::disallowed_methods)]
    fn remove_slot(&mut self, slot: usize) -> WqEntry {
        self.next_start = None;
        let e = self.slots[slot].take().expect("slot occupied");
        self.free.push(slot);
        let list = self
            .index
            .get_mut(&e.target)
            .expect("indexed target for occupied slot");
        let pos = list
            .iter()
            .position(|&s| s == slot)
            .expect("slot present in its target list");
        list.remove(pos);
        if list.is_empty() {
            self.index.remove(&e.target);
        }
        e
    }

    /// Pending entries as `(target, seq)` pairs, in queue (age) order
    /// (diagnostics).
    ///
    /// Allocation-free: each step is a min-scan over the (capacity-bounded,
    /// ≤ ~64-slot) slab for the next sequence number, so per-event probe
    /// inspection does not allocate a `Vec` on the hot path.
    pub fn pending(&self) -> impl Iterator<Item = (WqTarget, u64)> + '_ {
        let mut last_seq = 0u64;
        std::iter::from_fn(move || {
            let next = self
                .entries()
                .filter(|(_, e)| e.seq > last_seq)
                .min_by_key(|(_, e)| e.seq)
                .map(|(_, e)| (e.target, e.seq))?;
            last_seq = next.1;
            Some(next)
        })
    }

    /// Applies CWC for an incoming counter line of `page`: removes an
    /// older pending counter entry with the same address, if any.
    /// Returns the removed entry's sequence number if a merge happened.
    /// No-op when CWC is disabled.
    pub fn coalesce_counter(&mut self, page: PageId, stats: &mut Stats) -> Option<u64> {
        if !self.cwc {
            return None;
        }
        // The flag bit restricts the lookup to counter entries; at most
        // one can be pending because this very rule keeps them unique
        // per page.
        let list = self.index.get(&WqTarget::Counter(page))?;
        let oldest = list[0];
        let victim = self.remove_slot(oldest);
        stats.counter_writes_coalesced += 1;
        Some(victim.seq)
    }

    /// Appends an entry. The caller must have ensured a free slot via
    /// [`WriteQueue::wait_for_slots`].
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — that is a controller sequencing bug.
    pub fn append(
        &mut self,
        target: WqTarget,
        bank: usize,
        payload: LineData,
        enc_counter: Option<(u64, u8)>,
        ready: Cycle,
    ) -> u64 {
        self.append_tagged(target, bank, payload, enc_counter, None, ready)
    }

    /// [`WriteQueue::append`] with an Osiris ECC tag attached.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — that is a controller sequencing bug.
    pub fn append_tagged(
        &mut self,
        target: WqTarget,
        bank: usize,
        payload: LineData,
        enc_counter: Option<(u64, u8)>,
        tag: Option<u64>,
        ready: Cycle,
    ) -> u64 {
        // Justified panic: overflow is the documented contract violation.
        #[allow(clippy::disallowed_methods)]
        let slot = self
            .free
            .pop()
            .expect("write queue overflow: wait_for_slots first");
        self.next_start = None;
        self.seq += 1;
        self.slots[slot] = Some(WqEntry {
            target,
            bank,
            payload,
            enc_counter,
            tag,
            ready,
            seq: self.seq,
        });
        self.index.entry(target).or_default().push(slot);
        self.seq
    }

    /// The newest pending entry for `target` (back of its age-ordered
    /// slot list).
    fn newest(&self, target: WqTarget) -> Option<&WqEntry> {
        let &slot = self.index.get(&target)?.last()?;
        self.slots[slot].as_ref()
    }

    /// The newest pending write to data line `line`, for read forwarding.
    pub fn forward_data(&self, line: LineAddr) -> Option<&WqEntry> {
        self.newest(WqTarget::Data(line))
    }

    /// The newest pending counter write for `page`, for counter-fetch
    /// forwarding (the NVM copy may be stale while an entry is pending).
    pub fn forward_counter(&self, page: PageId) -> Option<&WqEntry> {
        self.newest(WqTarget::Counter(page))
    }

    /// Index and start time of the next entry to issue: the entry with
    /// the earliest possible service start, FIFO order breaking ties.
    ///
    /// Same-address ordering: an entry is eligible only if no *older*
    /// entry targets the same line. Ready times can be non-monotonic
    /// (posted writes queued behind an earlier stall), and issuing two
    /// writes to one line out of order would persist the older payload
    /// last.
    fn next_issuable(&self, banks: &[BankTimer]) -> Option<(usize, Cycle)> {
        let mut best: Option<(usize, Cycle, u64)> = None;
        for (i, e) in self.entries() {
            // An older same-target entry exists iff this slot is not the
            // front of its target's age-ordered list — an O(1) check.
            let blocked = self.index[&e.target][0] != i;
            if blocked {
                continue;
            }
            let start = banks[e.bank].earliest_start(OpKind::Write, e.ready);
            match best {
                Some((_, bs, bseq)) if (bs, bseq) <= (start, e.seq) => {}
                _ => best = Some((i, start, e.seq)),
            }
        }
        best.map(|(i, s, _)| (i, s))
    }

    fn issue_at(
        &mut self,
        idx: usize,
        banks: &mut [BankTimer],
        store: &mut NvmStore,
        stats: &mut Stats,
        probes: &mut Probes,
    ) -> Cycle {
        let e = self.remove_slot(idx);
        if banks[e.bank].is_failed() {
            // Degraded mode: the bank is gone, so the write is dropped
            // rather than wedging the queue behind dead hardware.
            stats.dropped_writes += 1;
            return e.ready;
        }
        let start = banks[e.bank].earliest_start(OpKind::Write, e.ready);
        let end = banks[e.bank].issue(OpKind::Write, e.ready);
        let global_bank = self.bank_base + e.bank;
        if stats.bank_writes.len() <= global_bank {
            stats.bank_writes.resize(global_bank + 1, 0);
        }
        stats.bank_writes[global_bank] += 1;
        // Tree node lines are metadata traffic: they occupy the bank like
        // any write, but they are not part of the WqEnqueue/WqIssue
        // ordering stream the checker audits (the T-rules track them
        // through TreeNodeEnqueue instead).
        if !matches!(e.target, WqTarget::Tree(_)) {
            probes.emit_with(|| Event::WqIssue {
                counter: e.is_counter(),
                addr: match e.target {
                    WqTarget::Data(line) => line.0,
                    WqTarget::Counter(page) => page.0,
                    WqTarget::Tree(id) => id,
                },
                seq: e.seq,
                bank: global_bank,
                ready: e.ready,
                start,
                occupancy: self.capacity - self.free.len(),
            });
        }
        probes.emit_with(|| Event::BankBusy {
            bank: global_bank,
            start,
            end,
            write: true,
        });
        match e.target {
            WqTarget::Data(line) => {
                stats.nvm_data_writes += 1;
                store.write_data(line, e.payload);
                if let Some(tag) = e.tag {
                    store.write_tag(line, tag);
                }
            }
            WqTarget::Counter(page) => {
                stats.nvm_counter_writes += 1;
                store.write_counter(page, e.payload);
            }
            WqTarget::Tree(id) => {
                stats.nvm_tree_writes += 1;
                store.write_tree(id, e.payload);
            }
        }
        start
    }

    /// Issues every entry whose service can start at or before `now`.
    pub fn drain_until(
        &mut self,
        now: Cycle,
        banks: &mut [BankTimer],
        store: &mut NvmStore,
        stats: &mut Stats,
        probes: &mut Probes,
    ) {
        // Fast-forward: an empty queue, or a cached bound proving every
        // pending entry starts after `now`, means the O(capacity) slab
        // scan below would issue nothing — skip it. Exact, not an
        // approximation: the skipped scan has no side effects.
        if self.is_empty() || !self.may_issue_by(now) {
            return;
        }
        while let Some((idx, start)) = self.next_issuable(banks) {
            if start > now {
                // Remember where the scan stopped: until the queue next
                // mutates, no drain before `start` can issue anything.
                self.next_start = Some(start);
                break;
            }
            self.issue_at(idx, banks, store, stats, probes);
        }
    }

    /// Blocks (in simulated time) until `needed` slots are free, issuing
    /// entries as required. Returns the cycle at which the slots are
    /// available, `>= from`. Stall time is charged to
    /// [`Stats::wq_stall_cycles`].
    ///
    /// # Panics
    ///
    /// Panics if `needed > capacity`.
    pub fn wait_for_slots(
        &mut self,
        needed: usize,
        from: Cycle,
        banks: &mut [BankTimer],
        store: &mut NvmStore,
        stats: &mut Stats,
        probes: &mut Probes,
    ) -> Cycle {
        assert!(needed <= self.capacity, "cannot wait for {needed} slots");
        // Opportunistically drain what has already had time to issue.
        self.drain_until(from, banks, store, stats, probes);
        if self.free_slots() >= needed {
            return from;
        }
        stats.wq_full_events += 1;
        let mut t = from;
        while self.free_slots() < needed {
            // Justified panic: a full queue always has an issuable entry
            // (every occupied slot eventually becomes ready).
            #[allow(clippy::disallowed_methods)]
            let (idx, start) = self
                .next_issuable(banks)
                .expect("full queue must have an issuable entry");
            let freed_at = start.max(t);
            self.issue_at(idx, banks, store, stats, probes);
            t = freed_at;
        }
        stats.wq_stall_cycles += t - from;
        probes.emit_with(|| Event::WqStall {
            needed,
            from,
            until: t,
        });
        t
    }

    /// Issues everything (end of run). Returns the cycle the last entry
    /// began service, or `from` if the queue was already empty.
    pub fn drain_all(
        &mut self,
        from: Cycle,
        banks: &mut [BankTimer],
        store: &mut NvmStore,
        stats: &mut Stats,
        probes: &mut Probes,
    ) -> Cycle {
        let mut t = from;
        while let Some((idx, start)) = self.next_issuable(banks) {
            t = t.max(start);
            self.issue_at(idx, banks, store, stats, probes);
        }
        t
    }

    /// Writes all pending entries into `store` in age order without
    /// touching bank timers or statistics — the ADR battery drain
    /// performed at a crash.
    pub fn flush_into(&self, store: &mut NvmStore) {
        let mut ordered: Vec<&WqEntry> = self.entries().map(|(_, e)| e).collect();
        ordered.sort_by_key(|e| e.seq);
        for e in ordered {
            match e.target {
                WqTarget::Data(line) => {
                    store.write_data(line, e.payload);
                    if let Some(tag) = e.tag {
                        store.write_tag(line, tag);
                    }
                }
                WqTarget::Counter(page) => store.write_counter(page, e.payload),
                WqTarget::Tree(id) => store.write_tree(id, e.payload),
            }
        }
    }

    /// [`WriteQueue::flush_into`] under a failing power event: the ADR
    /// drain tears at `tear` (entries past the cut are dropped, the
    /// entry at the cut lands as a seeded old/new word mix) and entries
    /// headed for `failed_bank` are lost with the hardware. Everything
    /// dropped or torn is recorded in `plan` so recovery's checked reads
    /// and the torture classifier can see what the media did.
    pub fn flush_into_faulted(
        &self,
        store: &mut NvmStore,
        failed_bank: Option<usize>,
        tear: Option<DrainTear>,
        plan: &mut FaultPlan,
    ) {
        let mut ordered: Vec<&WqEntry> = self.entries().map(|(_, e)| e).collect();
        ordered.sort_by_key(|e| e.seq);
        for (i, e) in ordered.iter().enumerate() {
            if let Some(t) = tear {
                if i > t.cut {
                    // Power died before this entry drained.
                    plan.note_torn_entry();
                    continue;
                }
            }
            if Some(e.bank) == failed_bank {
                match e.target {
                    WqTarget::Data(line) => plan.note_lost_data(line),
                    WqTarget::Counter(page) => plan.note_lost_counter(page),
                    WqTarget::Tree(id) => plan.note_lost_tree(id),
                }
                continue;
            }
            let torn = tear.filter(|t| t.cut == i);
            match e.target {
                WqTarget::Data(line) => {
                    let payload = match torn {
                        Some(t) => {
                            plan.note_torn_entry();
                            tear_line(&store.read_data(line), &e.payload, t.mask)
                        }
                        None => e.payload,
                    };
                    store.write_data(line, payload);
                    if let Some(tag) = e.tag {
                        store.write_tag(line, tag);
                    }
                }
                WqTarget::Counter(page) => {
                    let payload = match torn {
                        Some(t) => {
                            plan.note_torn_entry();
                            tear_line(&store.read_counter(page), &e.payload, t.mask)
                        }
                        None => e.payload,
                    };
                    store.write_counter(page, payload);
                }
                WqTarget::Tree(id) => {
                    let payload = match torn {
                        Some(t) => {
                            plan.note_torn_entry();
                            tear_line(&store.read_tree(id), &e.payload, t.mask)
                        }
                        None => e.payload,
                    };
                    store.write_tree(id, payload);
                }
            }
        }
    }

    /// Test-only invariant check: the target index must agree with a
    /// linear scan of the slot slab — every occupied slot appears in
    /// exactly its target's list, lists are age (seq) ordered,
    /// free-list accounting matches, and forwarding answers equal the
    /// max-seq entry a scan would find.
    #[cfg(test)]
    pub(crate) fn assert_index_matches_linear_scan(&self) {
        let mut occupied: Vec<(usize, &WqEntry)> = self.entries().collect();
        occupied.sort_by_key(|&(_, e)| e.seq);
        let mut oracle: FxHashMap<WqTarget, Vec<usize>> = FxHashMap::default();
        for &(slot, e) in &occupied {
            oracle.entry(e.target).or_default().push(slot);
        }
        assert_eq!(self.index, oracle, "index diverged from slot scan");
        assert_eq!(
            self.free.len() + occupied.len(),
            self.capacity,
            "free-list accounting broken"
        );
        for &slot in &self.free {
            assert!(self.slots[slot].is_none(), "free slot {slot} is occupied");
        }
        for target in oracle.keys() {
            let newest_scan = occupied
                .iter()
                .filter(|(_, e)| e.target == *target)
                .max_by_key(|(_, e)| e.seq)
                .map(|&(_, e)| e.seq);
            assert_eq!(
                self.newest(*target).map(|e| e.seq),
                newest_scan,
                "forwarding answer diverged from linear scan for {target:?}"
            );
        }
    }

    /// Removes and returns every pending entry touching page `page`
    /// (its data lines or its counter line). Used before page
    /// re-encryption so no stale ciphertext can land after the rewrite.
    pub fn extract_page_entries(&mut self, page: PageId, page_bytes: u64) -> Vec<WqEntry> {
        let hits: Vec<usize> = self
            .entries()
            .filter(|(_, e)| match e.target {
                WqTarget::Data(line) => line.0 / page_bytes == page.0,
                WqTarget::Counter(p) => p == page,
                // Tree nodes cover whole leaf groups, not one page; they
                // stay queued across a page re-encryption.
                WqTarget::Tree(_) => false,
            })
            .map(|(i, _)| i)
            .collect();
        let mut out: Vec<WqEntry> = hits.into_iter().map(|i| self.remove_slot(i)).collect();
        out.sort_by_key(|e| e.seq);
        out
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod tests {
    use super::*;

    fn banks(n: usize) -> Vec<BankTimer> {
        (0..n).map(|_| BankTimer::new(126, 626, 15)).collect()
    }

    fn data_entry_args(addr: u64, bank: usize) -> (WqTarget, usize, LineData) {
        (WqTarget::Data(LineAddr(addr)), bank, [addr as u8; 64])
    }

    #[test]
    fn append_then_drain_writes_store() {
        let mut wq = WriteQueue::new(4, false);
        let mut b = banks(2);
        let mut store = NvmStore::new();
        let mut stats = Stats::new(2);
        let (t, bank, payload) = data_entry_args(0x40, 0);
        wq.append(t, bank, payload, None, 0);
        wq.drain_all(0, &mut b, &mut store, &mut stats, &mut Probes::default());
        assert_eq!(store.read_data(LineAddr(0x40)), [0x40; 64]);
        assert_eq!(stats.nvm_data_writes, 1);
        assert_eq!(stats.bank_writes[0], 1);
    }

    #[test]
    fn cwc_removes_older_counter_entry() {
        let mut wq = WriteQueue::new(8, true);
        let mut stats = Stats::new(1);
        let seq = wq.append(WqTarget::Counter(PageId(3)), 0, [1; 64], None, 0);
        assert_eq!(wq.coalesce_counter(PageId(3), &mut stats), Some(seq));
        assert_eq!(wq.len(), 0);
        assert_eq!(stats.counter_writes_coalesced, 1);
        // Nothing left to merge.
        assert_eq!(wq.coalesce_counter(PageId(3), &mut stats), None);
    }

    #[test]
    fn cwc_disabled_never_merges() {
        let mut wq = WriteQueue::new(8, false);
        let mut stats = Stats::new(1);
        wq.append(WqTarget::Counter(PageId(3)), 0, [1; 64], None, 0);
        assert_eq!(wq.coalesce_counter(PageId(3), &mut stats), None);
        assert_eq!(wq.len(), 1);
    }

    #[test]
    fn cwc_does_not_touch_other_pages_or_data() {
        let mut wq = WriteQueue::new(8, true);
        let mut stats = Stats::new(1);
        wq.append(WqTarget::Counter(PageId(4)), 0, [1; 64], None, 0);
        wq.append(WqTarget::Data(LineAddr(0x40)), 0, [2; 64], None, 0);
        assert_eq!(wq.coalesce_counter(PageId(3), &mut stats), None);
        assert_eq!(wq.len(), 2);
    }

    #[test]
    fn drain_until_respects_time() {
        let mut wq = WriteQueue::new(4, false);
        let mut b = banks(1);
        let mut store = NvmStore::new();
        let mut stats = Stats::new(1);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [1; 64], None, 100);
        wq.drain_until(50, &mut b, &mut store, &mut stats, &mut Probes::default());
        assert_eq!(wq.len(), 1, "not ready yet");
        wq.drain_until(100, &mut b, &mut store, &mut stats, &mut Probes::default());
        assert_eq!(wq.len(), 0);
    }

    #[test]
    fn same_bank_entries_serialize() {
        let mut wq = WriteQueue::new(4, false);
        let mut b = banks(1);
        let mut store = NvmStore::new();
        let mut stats = Stats::new(1);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [1; 64], None, 0);
        wq.append(WqTarget::Data(LineAddr(64)), 0, [2; 64], None, 0);
        // At t=0 only the first can start; the second starts at 626.
        wq.drain_until(0, &mut b, &mut store, &mut stats, &mut Probes::default());
        assert_eq!(wq.len(), 1);
        wq.drain_until(626, &mut b, &mut store, &mut stats, &mut Probes::default());
        assert_eq!(wq.len(), 0);
    }

    #[test]
    fn different_banks_issue_in_parallel() {
        let mut wq = WriteQueue::new(4, false);
        let mut b = banks(2);
        let mut store = NvmStore::new();
        let mut stats = Stats::new(2);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [1; 64], None, 0);
        wq.append(WqTarget::Data(LineAddr(4096)), 1, [2; 64], None, 0);
        wq.drain_until(0, &mut b, &mut store, &mut stats, &mut Probes::default());
        assert_eq!(wq.len(), 0, "both banks start at t=0");
    }

    #[test]
    fn wait_for_slots_charges_stall() {
        // Queue of 2, single bank: filling it forces a stall.
        let mut wq = WriteQueue::new(2, false);
        let mut b = banks(1);
        let mut store = NvmStore::new();
        let mut stats = Stats::new(1);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [1; 64], None, 0);
        wq.append(WqTarget::Data(LineAddr(64)), 0, [2; 64], None, 0);
        // Both pending; second can't start until 626. Wait for 2 slots at t=0:
        // first frees its slot at 0 (service start), second at 626.
        let t = wq.wait_for_slots(2, 0, &mut b, &mut store, &mut stats, &mut Probes::default());
        assert_eq!(t, 626);
        assert_eq!(stats.wq_stall_cycles, 626);
        assert_eq!(stats.wq_full_events, 1);
        assert_eq!(wq.free_slots(), 2);
    }

    #[test]
    fn wait_for_slots_fast_path_free() {
        let mut wq = WriteQueue::new(4, false);
        let mut b = banks(1);
        let mut store = NvmStore::new();
        let mut stats = Stats::new(1);
        let t = wq.wait_for_slots(
            2,
            77,
            &mut b,
            &mut store,
            &mut stats,
            &mut Probes::default(),
        );
        assert_eq!(t, 77);
        assert_eq!(stats.wq_stall_cycles, 0);
    }

    #[test]
    fn forwarding_returns_newest() {
        let mut wq = WriteQueue::new(4, false);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [1; 64], Some((0, 1)), 0);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [2; 64], Some((0, 2)), 5);
        let e = wq.forward_data(LineAddr(0)).unwrap();
        assert_eq!(e.payload, [2; 64]);
        assert_eq!(e.enc_counter, Some((0, 2)));
        assert!(wq.forward_data(LineAddr(64)).is_none());
    }

    #[test]
    fn counter_forwarding() {
        let mut wq = WriteQueue::new(4, false);
        wq.append(WqTarget::Counter(PageId(1)), 0, [9; 64], None, 0);
        assert!(wq.forward_counter(PageId(1)).is_some());
        assert!(wq.forward_counter(PageId(2)).is_none());
    }

    #[test]
    fn flush_into_applies_in_age_order() {
        let mut wq = WriteQueue::new(4, false);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [1; 64], None, 0);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [2; 64], None, 0);
        let mut store = NvmStore::new();
        wq.flush_into(&mut store);
        assert_eq!(store.read_data(LineAddr(0)), [2; 64], "newest wins");
        assert_eq!(wq.len(), 2, "ADR drain is non-destructive in the model");
    }

    #[test]
    fn extract_page_entries_filters_by_page() {
        let mut wq = WriteQueue::new(8, false);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [1; 64], None, 0); // page 0
        wq.append(WqTarget::Data(LineAddr(4096)), 1, [2; 64], None, 0); // page 1
        wq.append(WqTarget::Counter(PageId(0)), 0, [3; 64], None, 0);
        let got = wq.extract_page_entries(PageId(0), 4096);
        assert_eq!(got.len(), 2);
        assert_eq!(wq.len(), 1);
    }

    #[test]
    fn tree_entries_issue_to_the_tree_region() {
        let mut wq = WriteQueue::new(4, false);
        let mut b = banks(2);
        let mut store = NvmStore::new();
        let mut stats = Stats::new(2);
        wq.append(WqTarget::Tree(7), 1, [0x5C; 64], None, 0);
        assert!(!wq.slots.iter().flatten().any(WqEntry::is_counter));
        wq.drain_all(0, &mut b, &mut store, &mut stats, &mut Probes::default());
        assert_eq!(store.read_tree(7), [0x5C; 64]);
        assert_eq!(stats.nvm_tree_writes, 1);
        assert_eq!(stats.nvm_data_writes, 0);
        assert_eq!(stats.nvm_counter_writes, 0);
        assert_eq!(stats.bank_writes[1], 1, "tree writes occupy their bank");
    }

    #[test]
    fn flush_into_lands_tree_entries() {
        let mut wq = WriteQueue::new(4, false);
        wq.append(WqTarget::Tree(3), 0, [1; 64], None, 0);
        wq.append(WqTarget::Tree(3), 0, [2; 64], None, 0);
        let mut store = NvmStore::new();
        wq.flush_into(&mut store);
        assert_eq!(store.read_tree(3), [2; 64], "newest wins");
    }

    #[test]
    fn faulted_flush_loses_tree_entries_with_their_bank() {
        use supermem_nvm::fault::FaultPlan;
        let mut wq = WriteQueue::new(8, false);
        let mut store = NvmStore::new();
        wq.append(WqTarget::Tree(1), 0, [1; 64], None, 0);
        wq.append(WqTarget::Tree(2), 1, [2; 64], None, 0);
        let mut plan = FaultPlan::default();
        wq.flush_into_faulted(&mut store, Some(0), None, &mut plan);
        assert_eq!(store.read_tree(1), [0; 64]);
        assert!(plan.tree_lost(1));
        assert_eq!(store.read_tree(2), [2; 64]);
        assert!(!plan.tree_lost(2));
    }

    #[test]
    fn extract_page_entries_leaves_tree_entries_queued() {
        let mut wq = WriteQueue::new(8, false);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [1; 64], None, 0); // page 0
        wq.append(WqTarget::Tree(0), 0, [2; 64], None, 0);
        let got = wq.extract_page_entries(PageId(0), 4096);
        assert_eq!(got.len(), 1);
        assert_eq!(wq.len(), 1, "the tree entry stays");
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn append_past_capacity_panics() {
        let mut wq = WriteQueue::new(2, false);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [0; 64], None, 0);
        wq.append(WqTarget::Data(LineAddr(64)), 0, [0; 64], None, 0);
        wq.append(WqTarget::Data(LineAddr(128)), 0, [0; 64], None, 0);
    }

    #[test]
    fn same_line_writes_issue_in_seq_order_despite_inverted_ready() {
        // Regression: a later write to the same line can carry an
        // *earlier* ready time (posted write behind a queue stall); it
        // must still issue after the older write or the store ends up
        // with stale data.
        let mut wq = WriteQueue::new(4, false);
        let mut b = banks(1);
        let mut store = NvmStore::new();
        let mut stats = Stats::new(1);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [5; 64], None, 1000);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [6; 64], None, 10);
        wq.drain_all(0, &mut b, &mut store, &mut stats, &mut Probes::default());
        assert_eq!(
            store.read_data(LineAddr(0)),
            [6; 64],
            "newest payload must win"
        );
    }

    #[test]
    fn different_lines_can_bypass_a_stalled_older_entry() {
        // Same-address ordering must not serialize unrelated lines.
        let mut wq = WriteQueue::new(4, false);
        let mut b = banks(2);
        let mut store = NvmStore::new();
        let mut stats = Stats::new(2);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [1; 64], None, 1000);
        wq.append(WqTarget::Data(LineAddr(4096)), 1, [2; 64], None, 0);
        wq.drain_until(0, &mut b, &mut store, &mut stats, &mut Probes::default());
        assert_eq!(wq.len(), 1, "the line in the other bank issues at t=0");
        assert_eq!(store.read_data(LineAddr(4096)), [2; 64]);
    }

    #[test]
    fn pending_snapshot_reflects_queue_order() {
        let mut wq = WriteQueue::new(4, false);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [1; 64], None, 0);
        wq.append(WqTarget::Counter(PageId(2)), 1, [2; 64], None, 0);
        let p: Vec<_> = wq.pending().collect();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].0, WqTarget::Data(LineAddr(0)));
        assert!(p[0].1 < p[1].1, "seq must increase");
    }

    #[test]
    fn pending_iterator_matches_sorted_scan() {
        // The lazy min-scan iterator must yield exactly what collecting
        // and sorting the slab by seq would, in the same order.
        let mut wq = WriteQueue::new(8, true);
        let mut stats = Stats::new(2);
        for addr in [0u64, 64, 128, 192] {
            wq.append(WqTarget::Data(LineAddr(addr)), 0, [1; 64], None, 0);
        }
        wq.append(WqTarget::Counter(PageId(1)), 1, [2; 64], None, 0);
        // Punch a hole in the seq sequence so order != slot order.
        wq.coalesce_counter(PageId(1), &mut stats);
        wq.append(WqTarget::Counter(PageId(1)), 1, [3; 64], None, 0);
        let mut oracle: Vec<(WqTarget, u64)> =
            wq.entries().map(|(_, e)| (e.target, e.seq)).collect();
        oracle.sort_by_key(|&(_, seq)| seq);
        let got: Vec<_> = wq.pending().collect();
        assert_eq!(got, oracle);
        assert!(
            got.windows(2).all(|w| w[0].1 < w[1].1),
            "strictly ascending"
        );
    }

    #[test]
    fn oldest_first_among_equal_starts() {
        let mut wq = WriteQueue::new(4, false);
        let mut b = banks(2);
        let mut store = NvmStore::new();
        let mut stats = Stats::new(2);
        // Same bank, same ready: the older one must issue first so the
        // final store value is the newer payload.
        wq.append(WqTarget::Data(LineAddr(0)), 0, [1; 64], None, 0);
        wq.append(WqTarget::Data(LineAddr(0)), 0, [2; 64], None, 0);
        wq.drain_all(0, &mut b, &mut store, &mut stats, &mut Probes::default());
        assert_eq!(store.read_data(LineAddr(0)), [2; 64]);
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // unwrap/expect are fine in tests
mod randomized {
    //! Deterministic randomized tests (seeded SplitMix64 stands in for
    //! proptest, which is unavailable in offline builds).
    use super::*;
    use std::collections::HashMap;
    use supermem_nvm::bank::BankTimer;
    use supermem_sim::SplitMix64;

    fn banks(n: usize) -> Vec<BankTimer> {
        (0..n).map(|_| BankTimer::new(126, 626, 15)).collect()
    }

    #[derive(Debug, Clone)]
    enum QOp {
        AppendData { line: u64, fill: u8, ready: u64 },
        AppendCounter { page: u64, fill: u8, ready: u64 },
        Drain { until: u64 },
    }

    fn random_qop(rng: &mut SplitMix64) -> QOp {
        match rng.next_below(3) {
            0 => QOp::AppendData {
                line: rng.next_below(16) * 64,
                fill: rng.next_u64() as u8,
                ready: rng.next_below(10_000),
            },
            1 => QOp::AppendCounter {
                page: rng.next_below(4),
                fill: rng.next_u64() as u8,
                ready: rng.next_below(10_000),
            },
            _ => QOp::Drain {
                until: rng.next_below(100_000),
            },
        }
    }

    /// Under arbitrary appends (with arbitrary, possibly inverted
    /// ready times), coalescing, and partial drains, the queue never
    /// exceeds capacity and the final store holds the newest payload
    /// for every line — no write is ever lost or misordered.
    #[test]
    fn no_lost_or_stale_writes() {
        let mut rng = SplitMix64::new(0x90EE);
        for _ in 0..64 {
            let ops: Vec<QOp> = (0..rng.next_range(1, 150))
                .map(|_| random_qop(&mut rng))
                .collect();
            let mut wq = WriteQueue::new(8, true);
            let mut b = banks(2);
            let mut store = NvmStore::new();
            let mut stats = Stats::new(2);
            let mut newest_data: HashMap<u64, u8> = HashMap::new();
            let mut newest_ctr: HashMap<u64, u8> = HashMap::new();
            for op in &ops {
                match op {
                    QOp::AppendData { line, fill, ready } => {
                        wq.wait_for_slots(
                            1,
                            *ready,
                            &mut b,
                            &mut store,
                            &mut stats,
                            &mut Probes::default(),
                        );
                        wq.append(
                            WqTarget::Data(LineAddr(*line)),
                            (*line / 64 % 2) as usize,
                            [*fill; 64],
                            None,
                            *ready,
                        );
                        newest_data.insert(*line, *fill);
                    }
                    QOp::AppendCounter { page, fill, ready } => {
                        wq.wait_for_slots(
                            1,
                            *ready,
                            &mut b,
                            &mut store,
                            &mut stats,
                            &mut Probes::default(),
                        );
                        wq.coalesce_counter(PageId(*page), &mut stats);
                        // Coalescing may have freed a slot; capacity is
                        // still guaranteed by the earlier wait.
                        wq.append(
                            WqTarget::Counter(PageId(*page)),
                            (*page % 2) as usize,
                            [*fill; 64],
                            None,
                            *ready,
                        );
                        newest_ctr.insert(*page, *fill);
                    }
                    QOp::Drain { until } => {
                        wq.drain_until(
                            *until,
                            &mut b,
                            &mut store,
                            &mut stats,
                            &mut Probes::default(),
                        );
                    }
                }
                assert!(wq.len() <= wq.capacity());
            }
            wq.drain_all(0, &mut b, &mut store, &mut stats, &mut Probes::default());
            for (&line, &fill) in &newest_data {
                assert_eq!(store.read_data(LineAddr(line)), [fill; 64]);
            }
            for (&page, &fill) in &newest_ctr {
                assert_eq!(store.read_counter(PageId(page)), [fill; 64]);
            }
        }
    }

    /// The auxiliary target index must stay in lockstep with a linear
    /// scan of the slot slab under arbitrary append / CWC coalesce /
    /// partial drain sequences, forwarding must return exactly what a
    /// scan for the max-seq matching entry would, and CWC must fire
    /// iff a counter entry for the page is pending — removing exactly
    /// the oldest one.
    #[test]
    fn index_agrees_with_linear_scan_oracle() {
        let mut rng = SplitMix64::new(0x1D0C);
        for _ in 0..64 {
            let ops: Vec<QOp> = (0..rng.next_range(1, 150))
                .map(|_| random_qop(&mut rng))
                .collect();
            let mut wq = WriteQueue::new(8, true);
            let mut b = banks(2);
            let mut store = NvmStore::new();
            let mut stats = Stats::new(2);
            for op in &ops {
                match op {
                    QOp::AppendData { line, fill, ready } => {
                        wq.wait_for_slots(
                            1,
                            *ready,
                            &mut b,
                            &mut store,
                            &mut stats,
                            &mut Probes::default(),
                        );
                        wq.append(
                            WqTarget::Data(LineAddr(*line)),
                            (*line / 64 % 2) as usize,
                            [*fill; 64],
                            None,
                            *ready,
                        );
                    }
                    QOp::AppendCounter { page, fill, ready } => {
                        wq.wait_for_slots(
                            1,
                            *ready,
                            &mut b,
                            &mut store,
                            &mut stats,
                            &mut Probes::default(),
                        );
                        let target = WqTarget::Counter(PageId(*page));
                        let before: Vec<u64> = wq
                            .pending()
                            .filter(|&(t, _)| t == target)
                            .map(|(_, s)| s)
                            .collect();
                        let merged = wq.coalesce_counter(PageId(*page), &mut stats);
                        assert_eq!(
                            merged.is_some(),
                            !before.is_empty(),
                            "CWC fires iff one pends"
                        );
                        if let Some(victim) = merged {
                            let oldest = *before.iter().min().expect("non-empty");
                            assert_eq!(victim, oldest, "CWC reports the oldest as victim");
                            let after: Vec<u64> = wq
                                .pending()
                                .filter(|&(t, _)| t == target)
                                .map(|(_, s)| s)
                                .collect();
                            assert!(!after.contains(&oldest), "CWC drops the oldest");
                            assert_eq!(after.len(), before.len() - 1);
                        }
                        wq.append(target, (*page % 2) as usize, [*fill; 64], None, *ready);
                    }
                    QOp::Drain { until } => {
                        wq.drain_until(
                            *until,
                            &mut b,
                            &mut store,
                            &mut stats,
                            &mut Probes::default(),
                        );
                    }
                }
                wq.assert_index_matches_linear_scan();
                // Forwarding vs oracle over the whole address domain,
                // including targets with nothing pending (must be None).
                for line in 0..16u64 {
                    let addr = LineAddr(line * 64);
                    let scan = wq
                        .pending()
                        .filter(|&(t, _)| t == WqTarget::Data(addr))
                        .map(|(_, s)| s)
                        .max();
                    assert_eq!(wq.forward_data(addr).map(|e| e.seq), scan);
                }
                for page in 0..4u64 {
                    let scan = wq
                        .pending()
                        .filter(|&(t, _)| t == WqTarget::Counter(PageId(page)))
                        .map(|(_, s)| s)
                        .max();
                    assert_eq!(wq.forward_counter(PageId(page)).map(|e| e.seq), scan);
                }
            }
            wq.drain_all(0, &mut b, &mut store, &mut stats, &mut Probes::default());
            wq.assert_index_matches_linear_scan();
            assert!(wq.is_empty(), "drain_all empties the queue");
        }
    }

    #[test]
    fn faulted_flush_tears_the_cut_entry_and_drops_the_rest() {
        use supermem_nvm::fault::{DrainTear, FaultPlan};
        let mut wq = WriteQueue::new(8, false);
        let mut store = NvmStore::new();
        store.write_data(LineAddr(0x80), [0xAA; 64]); // old bytes at the cut
        for addr in [0x40u64, 0x80, 0xC0] {
            wq.append(WqTarget::Data(LineAddr(addr)), 0, [addr as u8; 64], None, 0);
        }
        let mut plan = FaultPlan::default();
        let tear = DrainTear {
            cut: 1,
            mask: 0x0F, // words 0..4 land new, words 4..8 keep old
        };
        wq.flush_into_faulted(&mut store, None, Some(tear), &mut plan);
        // Before the cut: fully applied.
        assert_eq!(store.read_data(LineAddr(0x40)), [0x40; 64]);
        // At the cut: a seeded old/new word mix, not either whole line.
        let torn = store.read_data(LineAddr(0x80));
        assert_eq!(
            &torn[..32],
            &[0x80; 32][..],
            "mask=0x0F lands new low words"
        );
        assert_eq!(
            &torn[32..],
            &[0xAA; 32][..],
            "mask=0x0F keeps old high words"
        );
        // After the cut: never written, and the loss is recorded.
        assert_eq!(store.read_data(LineAddr(0xC0)), [0; 64]);
        assert_eq!(plan.counters().torn_entries, 2, "one torn + one dropped");
    }

    #[test]
    fn faulted_flush_loses_entries_headed_for_the_failed_bank() {
        use supermem_nvm::fault::FaultPlan;
        let mut wq = WriteQueue::new(8, false);
        let mut store = NvmStore::new();
        wq.append(WqTarget::Data(LineAddr(0x40)), 0, [1; 64], None, 0);
        wq.append(WqTarget::Data(LineAddr(0x80)), 1, [2; 64], None, 0);
        wq.append(WqTarget::Counter(PageId(3)), 0, [4; 64], None, 0);
        let mut plan = FaultPlan::default();
        wq.flush_into_faulted(&mut store, Some(0), None, &mut plan);
        // Bank 0's data and counter entries died with the hardware.
        assert_eq!(store.read_data(LineAddr(0x40)), [0; 64]);
        assert!(plan.data_lost(LineAddr(0x40)));
        assert!(plan.counter_lost(PageId(3)));
        // Bank 1's entry landed.
        assert_eq!(store.read_data(LineAddr(0x80)), [2; 64]);
        assert!(!plan.data_lost(LineAddr(0x80)));
    }
}
