//! Experiment drivers.
//!
//! [`run_single`] executes one workload on one core; [`run_multicore`]
//! runs `programs` copies of the workload on separate cores over the
//! shared L3 / memory controller / NVM banks, interleaving cores in
//! simulated-time order (the core with the smallest clock executes its
//! next transaction). Both drivers:
//!
//! 1. build and initialize the workload,
//! 2. checkpoint and reset statistics (figures measure the steady phase),
//! 3. run the transactions, recording per-transaction latency,
//! 4. **verify the persistent structure against its shadow model** — so
//!    every data point in every figure doubles as an end-to-end
//!    correctness test of the encryption/persistence stack,
//! 5. drain everything so write counts are complete.

use supermem_persist::VecMem;
use supermem_sim::{Config, CounterPlacement};
use supermem_trace::{TraceEvent, TraceRecorder};
use supermem_workloads::{AnyWorkload, WorkloadKind, WorkloadSpec};

use crate::metrics::RunResult;
use crate::scheme::Scheme;
use crate::system::System;

/// Parameters of one experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunConfig {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Workload kind.
    pub kind: WorkloadKind,
    /// Transactions per program.
    pub txns: u64,
    /// Transaction request size in bytes.
    pub req_bytes: u64,
    /// Write-queue entries (Figure 16 sweeps this).
    pub write_queue_entries: usize,
    /// Counter-cache bytes (Figure 17 sweeps this).
    pub counter_cache_bytes: u64,
    /// Concurrent programs for multi-core runs.
    pub programs: usize,
    /// Master seed.
    pub seed: u64,
    /// Array workload footprint in bytes.
    pub array_footprint: u64,
    /// Hash workload bucket count (power of two).
    pub hash_buckets: u64,
    /// YCSB workload read percentage (0..=100).
    pub ycsb_read_pct: u8,
    /// Start-Gap wear leveling interval (None = off).
    pub wear_psi: Option<u64>,
    /// Bonsai-Merkle-Tree authentication of the counter region.
    pub integrity_tree: bool,
    /// Ablation override: counter-line placement (None = scheme default).
    pub placement_override: Option<CounterPlacement>,
    /// Ablation override: CWC on/off (None = scheme default).
    pub cwc_override: Option<bool>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            scheme: Scheme::SuperMem,
            kind: WorkloadKind::Array,
            txns: 200,
            req_bytes: 1024,
            write_queue_entries: 32,
            counter_cache_bytes: 256 * 1024,
            programs: 1,
            seed: 1,
            array_footprint: 8 << 20,
            hash_buckets: 4096,
            ycsb_read_pct: 50,
            wear_psi: None,
            integrity_tree: false,
            placement_override: None,
            cwc_override: None,
        }
    }
}

impl RunConfig {
    /// A default run of `scheme` on `kind`.
    pub fn new(scheme: Scheme, kind: WorkloadKind) -> Self {
        Self {
            scheme,
            kind,
            ..Self::default()
        }
    }

    fn build_config(&self) -> Config {
        let mut cfg = self.scheme.apply(Config::default());
        cfg.write_queue_entries = self.write_queue_entries;
        cfg.counter_cache_bytes = self.counter_cache_bytes;
        cfg.seed = self.seed;
        if let Some(p) = self.placement_override {
            cfg.counter_placement = p;
        }
        if let Some(c) = self.cwc_override {
            cfg.cwc = c;
        }
        cfg.wear_psi = self.wear_psi;
        cfg.integrity_tree = self.integrity_tree;
        cfg
    }

    fn spec_for(&self, program: usize) -> WorkloadSpec {
        // Each program gets a private 256 MiB slice of the 8 GB space.
        let region = 1u64 << 28;
        WorkloadSpec::new(self.kind)
            .with_txns(self.txns)
            .with_req_bytes(self.req_bytes)
            .with_seed(self.seed.wrapping_add(program as u64 * 0x9E37))
            .with_region(program as u64 * region, region)
            .with_array_footprint(self.array_footprint)
            .with_hash_buckets(self.hash_buckets)
            .with_ycsb_read_pct(self.ycsb_read_pct)
    }
}

/// Runs one workload on core 0.
///
/// # Panics
///
/// Panics if a transaction fails to commit or the final verification
/// finds a divergence — either indicates a simulator bug, not a
/// recoverable condition.
pub fn run_single(rc: &RunConfig) -> RunResult {
    let mut sys = System::new(rc.build_config());
    let spec = rc.spec_for(0);
    let mut w = AnyWorkload::build(&spec, &mut sys);
    sys.checkpoint();
    sys.reset_stats();
    let measure_start = sys.now();
    for _ in 0..rc.txns {
        let start = sys.now();
        w.step(&mut sys).expect("transaction commit failed");
        let end = sys.now();
        sys.stats_mut().record_txn(end - start);
    }
    sys.checkpoint(); // complete the write counts
    let measured_end = sys.now();
    let stats = sys.stats().clone();
    let wear = sys.controller().store().wear_report();
    // Verify *after* snapshotting: the full-structure scan would
    // otherwise swamp the measured phase's cache statistics.
    w.verify(&mut sys).expect("workload verification failed");
    RunResult {
        scheme: rc.scheme,
        workload: spec.kind.name().to_owned(),
        req_bytes: rc.req_bytes,
        programs: 1,
        txns: rc.txns,
        stats,
        total_cycles: measured_end - measure_start,
        wear,
    }
}

/// Runs `programs` copies of the workload on separate cores.
///
/// # Panics
///
/// Panics if `programs` is zero or exceeds the configured core count,
/// if a transaction fails, or if verification finds a divergence.
pub fn run_multicore(rc: &RunConfig) -> RunResult {
    let cfg = rc.build_config();
    assert!(
        rc.programs >= 1 && rc.programs <= cfg.cores,
        "programs must be in 1..={}",
        cfg.cores
    );
    let mut sys = System::new(cfg);
    let mut workloads = Vec::with_capacity(rc.programs);
    for p in 0..rc.programs {
        sys.set_active_core(p);
        workloads.push(AnyWorkload::build(&rc.spec_for(p), &mut sys));
    }
    sys.set_active_core(0);
    sys.checkpoint();
    sys.reset_stats();
    let measure_start = sys.max_now();

    // Simulated-time-ordered interleaving: the core with the smallest
    // clock executes its next transaction.
    let mut remaining: Vec<u64> = vec![rc.txns; rc.programs];
    while remaining.iter().any(|&r| r > 0) {
        let core = (0..rc.programs)
            .filter(|&p| remaining[p] > 0)
            .min_by_key(|&p| sys.core_now(p))
            .expect("some program has work left");
        sys.set_active_core(core);
        let start = sys.now();
        workloads[core]
            .step(&mut sys)
            .expect("transaction commit failed");
        let end = sys.now();
        sys.stats_mut().record_txn(end - start);
        remaining[core] -= 1;
    }
    sys.checkpoint();
    let measured_end = sys.max_now();
    let stats = sys.stats().clone();
    let wear = sys.controller().store().wear_report();
    for (p, w) in workloads.iter_mut().enumerate() {
        sys.set_active_core(p);
        w.verify(&mut sys).expect("workload verification failed");
    }
    RunResult {
        scheme: rc.scheme,
        workload: rc.kind.name().to_owned(),
        req_bytes: rc.req_bytes,
        programs: rc.programs,
        txns: rc.txns * rc.programs as u64,
        stats,
        total_cycles: measured_end - measure_start,
        wear,
    }
}

/// Records the memory-operation trace of `rc`'s workload against a
/// functional memory — the capture half of trace-driven simulation.
/// Transaction boundaries are marked so a replay can measure latency.
///
/// # Panics
///
/// Panics if a transaction fails to commit.
pub fn record_workload_trace(rc: &RunConfig) -> Vec<TraceEvent> {
    let mut mem = VecMem::new();
    let mut recorder = TraceRecorder::new(&mut mem);
    let mut w = AnyWorkload::build(&rc.spec_for(0), &mut recorder);
    for _ in 0..rc.txns {
        recorder.txn_begin();
        w.step(&mut recorder).expect("transaction commit failed");
        recorder.txn_end();
    }
    w.verify(&mut recorder)
        .expect("workload verification failed");
    recorder.into_trace()
}

/// Replays a recorded trace through a timed system configured by `rc`
/// (the replay half of trace-driven simulation): identical memory
/// behavior, different machine. Per-transaction latencies come from the
/// trace's markers.
pub fn replay_trace(rc: &RunConfig, trace: &[TraceEvent]) -> RunResult {
    use supermem_persist::PMem;
    let mut sys = System::new(rc.build_config());
    let measure_start = sys.now();
    let mut txn_start = None;
    let mut scratch = Vec::new();
    for event in trace {
        match event {
            TraceEvent::Read { addr, len } => {
                scratch.resize(*len as usize, 0);
                sys.read(*addr, &mut scratch);
            }
            TraceEvent::Write { addr, bytes } => sys.write(*addr, bytes),
            TraceEvent::Clwb { addr, len } => sys.clwb(*addr, *len),
            TraceEvent::Sfence => sys.sfence(),
            TraceEvent::TxnBegin => txn_start = Some(sys.now()),
            TraceEvent::TxnEnd => {
                if let Some(start) = txn_start.take() {
                    let end = sys.now();
                    sys.stats_mut().record_txn(end - start);
                }
            }
        }
    }
    sys.checkpoint();
    let measured_end = sys.now();
    let wear = sys.controller().store().wear_report();
    RunResult {
        scheme: rc.scheme,
        workload: format!("{}(trace)", rc.kind.name()),
        req_bytes: rc.req_bytes,
        programs: 1,
        txns: rc.txns,
        stats: sys.stats().clone(),
        total_cycles: measured_end - measure_start,
        wear,
    }
}

/// Multi-core run with *event-granularity* interleaving: per-program
/// traces are recorded up front, then replayed concurrently — at every
/// step the core with the smallest clock executes its next memory
/// operation. This models bank/queue contention at the same granularity
/// as a cycle-driven simulator, unlike [`run_multicore`]'s
/// transaction-granularity scheduling, at the cost of trace memory.
///
/// # Panics
///
/// Panics if `programs` is zero or exceeds the configured core count,
/// or if trace recording fails.
pub fn run_multicore_trace(rc: &RunConfig) -> RunResult {
    use supermem_persist::PMem;
    let cfg = rc.build_config();
    assert!(
        rc.programs >= 1 && rc.programs <= cfg.cores,
        "programs must be in 1..={}",
        cfg.cores
    );
    // Record each program's trace against a private functional memory.
    let traces: Vec<Vec<TraceEvent>> = (0..rc.programs)
        .map(|p| {
            let mut mem = VecMem::new();
            let mut recorder = TraceRecorder::new(&mut mem);
            let mut w = AnyWorkload::build(&rc.spec_for(p), &mut recorder);
            for _ in 0..rc.txns {
                recorder.txn_begin();
                w.step(&mut recorder).expect("transaction commit failed");
                recorder.txn_end();
            }
            recorder.into_trace()
        })
        .collect();

    let mut sys = System::new(cfg);
    let measure_start = 0;
    let mut cursors = vec![0usize; rc.programs];
    let mut txn_starts: Vec<Option<supermem_sim::Cycle>> = vec![None; rc.programs];
    let mut scratch = Vec::new();
    // The core with the smallest clock and remaining work goes next.
    while let Some(core) = (0..rc.programs)
        .filter(|&p| cursors[p] < traces[p].len())
        .min_by_key(|&p| sys.core_now(p))
    {
        sys.set_active_core(core);
        let event = &traces[core][cursors[core]];
        cursors[core] += 1;
        match event {
            TraceEvent::Read { addr, len } => {
                scratch.resize(*len as usize, 0);
                sys.read(*addr, &mut scratch);
            }
            TraceEvent::Write { addr, bytes } => sys.write(*addr, bytes),
            TraceEvent::Clwb { addr, len } => sys.clwb(*addr, *len),
            TraceEvent::Sfence => sys.sfence(),
            TraceEvent::TxnBegin => txn_starts[core] = Some(sys.now()),
            TraceEvent::TxnEnd => {
                if let Some(start) = txn_starts[core].take() {
                    let end = sys.now();
                    sys.stats_mut().record_txn(end - start);
                }
            }
        }
    }
    sys.checkpoint();
    let measured_end = sys.max_now();
    let wear = sys.controller().store().wear_report();
    RunResult {
        scheme: rc.scheme,
        workload: format!("{}(trace)", rc.kind.name()),
        req_bytes: rc.req_bytes,
        programs: rc.programs,
        txns: rc.txns * rc.programs as u64,
        stats: sys.stats().clone(),
        total_cycles: measured_end - measure_start,
        wear,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_workloads::spec::ALL_KINDS;

    fn quick(scheme: Scheme, kind: WorkloadKind) -> RunConfig {
        let mut rc = RunConfig::new(scheme, kind);
        rc.txns = 40;
        rc.req_bytes = 256;
        rc.array_footprint = 256 << 10;
        rc
    }

    #[test]
    fn single_core_all_schemes_on_array() {
        for scheme in crate::scheme::FIGURE_SCHEMES {
            let r = run_single(&quick(scheme, WorkloadKind::Array));
            assert_eq!(r.stats.txn_commits, 40, "{scheme}");
            assert!(r.mean_txn_latency() > 0.0);
        }
    }

    #[test]
    fn single_core_all_workloads_on_supermem() {
        for kind in ALL_KINDS {
            let r = run_single(&quick(Scheme::SuperMem, kind));
            assert_eq!(r.stats.txn_commits, 40, "{kind}");
        }
    }

    #[test]
    fn wt_costs_more_than_unsec_and_supermem_recovers_most() {
        let unsec = run_single(&quick(Scheme::Unsec, WorkloadKind::Queue));
        let wt = run_single(&quick(Scheme::WriteThrough, WorkloadKind::Queue));
        let sm = run_single(&quick(Scheme::SuperMem, WorkloadKind::Queue));
        let u = unsec.mean_txn_latency();
        let w = wt.mean_txn_latency();
        let s = sm.mean_txn_latency();
        assert!(
            w > u * 1.2,
            "WT ({w:.0}) must clearly exceed Unsec ({u:.0})"
        );
        assert!(s < w, "SuperMem ({s:.0}) must beat WT ({w:.0})");
    }

    #[test]
    fn wt_doubles_writes_supermem_reduces_them() {
        let unsec = run_single(&quick(Scheme::Unsec, WorkloadKind::Queue));
        let wt = run_single(&quick(Scheme::WriteThrough, WorkloadKind::Queue));
        let sm = run_single(&quick(Scheme::SuperMem, WorkloadKind::Queue));
        let base = unsec.nvm_writes() as f64;
        assert!(
            (wt.nvm_writes() as f64 / base - 2.0).abs() < 0.15,
            "WT ~2x writes"
        );
        assert!(
            (sm.nvm_writes() as f64) < wt.nvm_writes() as f64 * 0.9,
            "CWC must remove counter writes"
        );
    }

    #[test]
    fn multicore_runs_and_interleaves() {
        let mut rc = quick(Scheme::SuperMem, WorkloadKind::Queue);
        rc.programs = 4;
        rc.txns = 15;
        let r = run_multicore(&rc);
        assert_eq!(r.stats.txn_commits, 60);
        assert_eq!(r.programs, 4);
    }

    #[test]
    fn multicore_contention_slows_transactions() {
        let mut one = quick(Scheme::WriteThrough, WorkloadKind::Queue);
        one.txns = 25;
        let mut eight = one.clone();
        eight.programs = 8;
        let r1 = run_multicore(&one);
        let r8 = run_multicore(&eight);
        assert!(
            r8.mean_txn_latency() > r1.mean_txn_latency(),
            "8 programs sharing banks must see longer transactions"
        );
    }

    #[test]
    fn multicore_trace_interleaves_at_event_granularity() {
        let mut rc = quick(Scheme::SuperMem, WorkloadKind::Queue);
        rc.txns = 15;
        rc.programs = 4;
        let r = run_multicore_trace(&rc);
        assert_eq!(r.stats.txn_commits, 60);
        // Contention must be visible relative to a single program.
        let mut one = rc.clone();
        one.programs = 1;
        let r1 = run_multicore_trace(&one);
        assert!(r.mean_txn_latency() > r1.mean_txn_latency());
    }

    #[test]
    fn trace_replay_matches_live_run_shape() {
        // Record once, replay per scheme: the trace-driven latencies must
        // preserve the live ordering Unsec < SuperMem < WT.
        let rc = quick(Scheme::SuperMem, WorkloadKind::Queue);
        let trace = record_workload_trace(&rc);
        assert!(trace.iter().filter(|e| e.is_marker()).count() as u64 == 2 * rc.txns);
        let lat = |scheme: Scheme| {
            let mut rc = rc.clone();
            rc.scheme = scheme;
            replay_trace(&rc, &trace).mean_txn_latency()
        };
        let unsec = lat(Scheme::Unsec);
        let wt = lat(Scheme::WriteThrough);
        let sm = lat(Scheme::SuperMem);
        assert!(wt > unsec * 1.2, "WT {wt:.0} vs Unsec {unsec:.0}");
        assert!(sm < wt, "SuperMem {sm:.0} vs WT {wt:.0}");
    }

    #[test]
    fn trace_replay_reproduces_contents() {
        use supermem_persist::{PMem, RecoveredMemory};
        let rc = quick(Scheme::SuperMem, WorkloadKind::HashTable);
        let trace = record_workload_trace(&rc);
        // Functional reference of the final bytes.
        let mut reference = VecMem::new();
        supermem_trace::replay(&trace, &mut reference);
        // Timed encrypted replay, then decrypt through a crash image.
        // Pre-zero the compared region: encrypted NVM merges partial-line
        // writes with garbage (uninitialized lines), VecMem with zeros.
        let mut sys = System::new(rc.build_config());
        sys.write(0, &vec![0u8; 8192]);
        sys.checkpoint();
        {
            use supermem_trace::replay as rp;
            rp(&trace, &mut sys);
        }
        sys.checkpoint();
        let cfg = sys.config().clone();
        let mut rec = RecoveredMemory::from_image(&cfg, sys.crash_now());
        let mut a = vec![0u8; 4096];
        let mut b = vec![0u8; 4096];
        // Compare the log+bucket region head (written bytes only).
        reference.read(0, &mut a);
        rec.read(0, &mut b);
        assert_eq!(
            a, b,
            "replayed ciphertext must decrypt to the reference bytes"
        );
    }

    #[test]
    #[should_panic(expected = "programs must be in")]
    fn rejects_too_many_programs() {
        let mut rc = quick(Scheme::Unsec, WorkloadKind::Array);
        rc.programs = 9;
        run_multicore(&rc);
    }
}
