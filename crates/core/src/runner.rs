//! Experiment configuration and free-function drivers.
//!
//! [`RunConfig`] describes one experiment; [`RunConfig::validate`]
//! rejects bad parameter combinations with a typed
//! [`ConfigError`] instead of a mid-run panic. The
//! free functions here ([`run_single`], [`run_multicore`],
//! [`replay_trace`], [`run_multicore_trace`]) are thin wrappers over
//! [`crate::Experiment`] sessions, kept for callers that don't need
//! observers. Every driver:
//!
//! 1. builds and initializes the workload,
//! 2. checkpoints and resets statistics (figures measure the steady phase),
//! 3. runs the transactions, recording per-transaction latency,
//! 4. **verifies the persistent structure against its shadow model** — so
//!    every data point in every figure doubles as an end-to-end
//!    correctness test of the encryption/persistence stack,
//! 5. drains everything so write counts are complete.

use supermem_sim::{Config, CounterPlacement, Mutation};
use supermem_trace::TraceEvent;
use supermem_workloads::{WorkloadKind, WorkloadSpec};

use crate::experiment::{record_program_trace, ConfigError, Experiment};
use crate::metrics::RunResult;
use crate::scheme::Scheme;

/// Parameters of one experiment run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunConfig {
    /// Scheme under test.
    pub scheme: Scheme,
    /// Workload kind.
    pub kind: WorkloadKind,
    /// Transactions per program.
    pub txns: u64,
    /// Transaction request size in bytes.
    pub req_bytes: u64,
    /// Write-queue entries (Figure 16 sweeps this).
    pub write_queue_entries: usize,
    /// Counter-cache bytes (Figure 17 sweeps this).
    pub counter_cache_bytes: u64,
    /// Interleaved memory channels (power of two; the paper's single
    /// controller is `1`).
    pub channels: usize,
    /// Concurrent programs for multi-core runs.
    pub programs: usize,
    /// Master seed.
    pub seed: u64,
    /// Array workload footprint in bytes.
    pub array_footprint: u64,
    /// Hash workload bucket count (power of two).
    pub hash_buckets: u64,
    /// YCSB workload read percentage (0..=100).
    pub ycsb_read_pct: u8,
    /// Start-Gap wear leveling interval (None = off).
    pub wear_psi: Option<u64>,
    /// Bonsai-Merkle-Tree authentication of the counter region.
    pub integrity_tree: bool,
    /// Streaming-tree persistence frontier: tree levels strictly below
    /// this persist through the write queue; levels at or above it are
    /// volatile and rebuilt at recovery. `None` (or the tree height)
    /// keeps the fully-lazy eager tree. Only meaningful with
    /// `integrity_tree` on.
    pub persisted_levels: Option<u32>,
    /// Ablation override: counter-line placement (None = scheme default).
    pub placement_override: Option<CounterPlacement>,
    /// Ablation override: CWC on/off (None = scheme default).
    pub cwc_override: Option<bool>,
    /// Fault injection for the persistency-ordering checker (None = none).
    pub mutation: Option<Mutation>,
    /// Host worker threads advancing channels within this run (an
    /// execution knob, not a machine parameter: results are identical
    /// at every setting). Defaults to `SUPERMEM_RUN_THREADS` or 1; only
    /// multi-channel configs have sibling work to parallelize.
    pub run_threads: usize,
}

/// The intra-run worker-thread count requested via the
/// `SUPERMEM_RUN_THREADS` environment variable, or 1 (sequential) when
/// unset or unparsable. [`RunConfig::default`] starts from this, and the
/// sweep engine divides its own worker budget by it so that
/// `run_threads × sweep workers` never oversubscribes the host.
pub fn env_run_threads() -> usize {
    std::env::var("SUPERMEM_RUN_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            scheme: Scheme::SuperMem,
            kind: WorkloadKind::Array,
            txns: 200,
            req_bytes: 1024,
            write_queue_entries: 32,
            counter_cache_bytes: 256 * 1024,
            channels: 1,
            programs: 1,
            seed: 1,
            array_footprint: 8 << 20,
            hash_buckets: 4096,
            ycsb_read_pct: 50,
            wear_psi: None,
            integrity_tree: false,
            persisted_levels: None,
            placement_override: None,
            cwc_override: None,
            mutation: None,
            run_threads: env_run_threads(),
        }
    }
}

impl RunConfig {
    /// A default run of `scheme` on `kind`.
    pub fn new(scheme: Scheme, kind: WorkloadKind) -> Self {
        Self {
            scheme,
            kind,
            ..Self::default()
        }
    }

    /// Sets the transaction count per program.
    pub fn with_txns(mut self, txns: u64) -> Self {
        self.txns = txns;
        self
    }

    /// Sets the transaction request size in bytes.
    pub fn with_req_bytes(mut self, req_bytes: u64) -> Self {
        self.req_bytes = req_bytes;
        self
    }

    /// Sets the write-queue capacity (Figure 16 sweeps this).
    pub fn with_write_queue_entries(mut self, entries: usize) -> Self {
        self.write_queue_entries = entries;
        self
    }

    /// Sets the counter-cache size in bytes (Figure 17 sweeps this).
    pub fn with_counter_cache_bytes(mut self, bytes: u64) -> Self {
        self.counter_cache_bytes = bytes;
        self
    }

    /// Sets the interleaved memory channel count (power of two).
    pub fn with_channels(mut self, channels: usize) -> Self {
        self.channels = channels;
        self
    }

    /// Sets the intra-run worker-thread count (values below 1 mean the
    /// sequential path). Results are identical at every setting.
    pub fn with_run_threads(mut self, run_threads: usize) -> Self {
        self.run_threads = run_threads.max(1);
        self
    }

    /// Sets the concurrent program count for multi-core runs.
    pub fn with_programs(mut self, programs: usize) -> Self {
        self.programs = programs;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the array workload footprint in bytes.
    pub fn with_array_footprint(mut self, bytes: u64) -> Self {
        self.array_footprint = bytes;
        self
    }

    /// Sets the hash workload bucket count (must be a power of two).
    pub fn with_hash_buckets(mut self, buckets: u64) -> Self {
        self.hash_buckets = buckets;
        self
    }

    /// Sets the YCSB workload read percentage (0..=100).
    pub fn with_ycsb_read_pct(mut self, pct: u8) -> Self {
        self.ycsb_read_pct = pct;
        self
    }

    /// Enables Start-Gap wear leveling with interval `psi`.
    pub fn with_wear_psi(mut self, psi: Option<u64>) -> Self {
        self.wear_psi = psi;
        self
    }

    /// Enables Bonsai-Merkle-Tree authentication of the counter region.
    pub fn with_integrity_tree(mut self, on: bool) -> Self {
        self.integrity_tree = on;
        self
    }

    /// Sets the streaming-tree persistence frontier (None = eager tree).
    pub fn with_persisted_levels(mut self, levels: Option<u32>) -> Self {
        self.persisted_levels = levels;
        self
    }

    /// Overrides the counter-line placement (None = scheme default).
    pub fn with_placement_override(mut self, placement: Option<CounterPlacement>) -> Self {
        self.placement_override = placement;
        self
    }

    /// Overrides CWC on/off (None = scheme default).
    pub fn with_cwc_override(mut self, cwc: Option<bool>) -> Self {
        self.cwc_override = cwc;
        self
    }

    /// Injects a known-bad behavior into the memory controller for the
    /// persistency-ordering checker's mutant harness (None = none).
    pub fn with_mutation(mut self, mutation: Option<Mutation>) -> Self {
        self.mutation = mutation;
        self
    }

    /// Checks this configuration without running it: program/core
    /// bounds, power-of-two bucket counts, and the derived machine
    /// configuration.
    ///
    /// # Examples
    ///
    /// ```
    /// use supermem::{RunConfig, Scheme};
    /// use supermem::workloads::WorkloadKind;
    ///
    /// let rc = RunConfig::new(Scheme::SuperMem, WorkloadKind::Array);
    /// assert!(rc.validate().is_ok());
    /// assert!(rc.with_programs(99).validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        let cfg = self.build_config();
        if self.programs < 1 || self.programs > cfg.cores {
            return Err(ConfigError::Programs {
                programs: self.programs,
                cores: cfg.cores,
            });
        }
        if !self.hash_buckets.is_power_of_two() {
            return Err(ConfigError::HashBuckets(self.hash_buckets));
        }
        if self.ycsb_read_pct > 100 {
            return Err(ConfigError::ReadPct(self.ycsb_read_pct));
        }
        // The remaining workload parameters (request-size floors, ...)
        // are owned by the spec's own typed validation.
        self.spec_for(0).validate().map_err(ConfigError::Spec)?;
        cfg.validate().map_err(ConfigError::Machine)
    }

    pub(crate) fn build_config(&self) -> Config {
        let mut cfg = self.scheme.apply(Config::default());
        cfg.write_queue_entries = self.write_queue_entries;
        cfg.counter_cache_bytes = self.counter_cache_bytes;
        cfg.channels = self.channels;
        cfg.seed = self.seed;
        if let Some(p) = self.placement_override {
            cfg.counter_placement = p;
        }
        if let Some(c) = self.cwc_override {
            cfg.cwc = c;
        }
        cfg.wear_psi = self.wear_psi;
        cfg.integrity_tree = self.integrity_tree;
        cfg.persisted_levels = self.persisted_levels;
        cfg.mutation = self.mutation;
        cfg.run_threads = self.run_threads.max(1);
        cfg
    }

    /// The machine [`Config`] this run derives — scheme knobs, sweep
    /// parameters, and overrides applied. This is exactly the
    /// configuration [`crate::System`] is built with.
    pub fn machine_config(&self) -> Config {
        self.build_config()
    }

    pub(crate) fn spec_for(&self, program: usize) -> WorkloadSpec {
        // Each program gets a private 256 MiB slice of the 8 GB space.
        let region = 1u64 << 28;
        WorkloadSpec::new(self.kind)
            .with_txns(self.txns)
            .with_req_bytes(self.req_bytes)
            .with_seed(self.seed.wrapping_add(program as u64 * 0x9E37))
            .with_region(program as u64 * region, region)
            .with_array_footprint(self.array_footprint)
            .with_hash_buckets(self.hash_buckets)
            .with_ycsb_read_pct(self.ycsb_read_pct)
    }
}

/// Builds an unobserved [`Experiment`] session, panicking on an invalid
/// configuration (the free-function contract; use [`Experiment::new`]
/// directly for a `Result`).
fn session(rc: &RunConfig) -> Experiment {
    Experiment::new(rc.clone()).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs one workload on core 0.
///
/// Equivalent to `Experiment::new(rc.clone())?.run_single()`; use
/// [`Experiment`] directly to attach observers or handle configuration
/// errors without panicking.
///
/// # Panics
///
/// Panics if `rc` is invalid, a transaction fails to commit, or the
/// final verification finds a divergence.
pub fn run_single(rc: &RunConfig) -> RunResult {
    session(rc).run_single()
}

/// Runs `programs` copies of the workload on separate cores.
///
/// Equivalent to `Experiment::new(rc.clone())?.run_multicore()`.
///
/// # Panics
///
/// Panics if `programs` is zero or exceeds the configured core count,
/// if a transaction fails, or if verification finds a divergence.
pub fn run_multicore(rc: &RunConfig) -> RunResult {
    session(rc).run_multicore()
}

/// Records the memory-operation trace of `rc`'s workload against a
/// functional memory — the capture half of trace-driven simulation.
/// Transaction boundaries are marked so a replay can measure latency.
///
/// # Panics
///
/// Panics if a transaction fails to commit.
pub fn record_workload_trace(rc: &RunConfig) -> Vec<TraceEvent> {
    record_program_trace(rc, 0, true)
}

/// Replays a recorded trace through a timed system configured by `rc`
/// (the replay half of trace-driven simulation): identical memory
/// behavior, different machine. Per-transaction latencies come from the
/// trace's markers.
///
/// # Panics
///
/// Panics if `rc` is invalid.
pub fn replay_trace(rc: &RunConfig, trace: &[TraceEvent]) -> RunResult {
    session(rc).replay(trace)
}

/// Multi-core run with *event-granularity* interleaving (see
/// [`Experiment::run_multicore_trace`]).
///
/// # Panics
///
/// Panics if `programs` is zero or exceeds the configured core count,
/// or if trace recording fails.
pub fn run_multicore_trace(rc: &RunConfig) -> RunResult {
    session(rc).run_multicore_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_workloads::spec::ALL_KINDS;

    fn quick(scheme: Scheme, kind: WorkloadKind) -> RunConfig {
        let mut rc = RunConfig::new(scheme, kind);
        rc.txns = 40;
        rc.req_bytes = 256;
        rc.array_footprint = 256 << 10;
        rc
    }

    #[test]
    fn single_core_all_schemes_on_array() {
        for scheme in crate::scheme::FIGURE_SCHEMES {
            let r = run_single(&quick(scheme, WorkloadKind::Array));
            assert_eq!(r.stats.txn_commits, 40, "{scheme}");
            assert!(r.mean_txn_latency() > 0.0);
        }
    }

    #[test]
    fn single_core_all_workloads_on_supermem() {
        for kind in ALL_KINDS {
            let r = run_single(&quick(Scheme::SuperMem, kind));
            assert_eq!(r.stats.txn_commits, 40, "{kind}");
        }
    }

    #[test]
    fn wt_costs_more_than_unsec_and_supermem_recovers_most() {
        let unsec = run_single(&quick(Scheme::Unsec, WorkloadKind::Queue));
        let wt = run_single(&quick(Scheme::WriteThrough, WorkloadKind::Queue));
        let sm = run_single(&quick(Scheme::SuperMem, WorkloadKind::Queue));
        let u = unsec.mean_txn_latency();
        let w = wt.mean_txn_latency();
        let s = sm.mean_txn_latency();
        assert!(
            w > u * 1.2,
            "WT ({w:.0}) must clearly exceed Unsec ({u:.0})"
        );
        assert!(s < w, "SuperMem ({s:.0}) must beat WT ({w:.0})");
    }

    #[test]
    fn wt_doubles_writes_supermem_reduces_them() {
        let unsec = run_single(&quick(Scheme::Unsec, WorkloadKind::Queue));
        let wt = run_single(&quick(Scheme::WriteThrough, WorkloadKind::Queue));
        let sm = run_single(&quick(Scheme::SuperMem, WorkloadKind::Queue));
        let base = unsec.nvm_writes() as f64;
        assert!(
            (wt.nvm_writes() as f64 / base - 2.0).abs() < 0.15,
            "WT ~2x writes"
        );
        assert!(
            (sm.nvm_writes() as f64) < wt.nvm_writes() as f64 * 0.9,
            "CWC must remove counter writes"
        );
    }

    #[test]
    fn multicore_runs_and_interleaves() {
        let mut rc = quick(Scheme::SuperMem, WorkloadKind::Queue);
        rc.programs = 4;
        rc.txns = 15;
        let r = run_multicore(&rc);
        assert_eq!(r.stats.txn_commits, 60);
        assert_eq!(r.programs, 4);
    }

    #[test]
    fn multicore_contention_slows_transactions() {
        let mut one = quick(Scheme::WriteThrough, WorkloadKind::Queue);
        one.txns = 25;
        let mut eight = one.clone();
        eight.programs = 8;
        let r1 = run_multicore(&one);
        let r8 = run_multicore(&eight);
        assert!(
            r8.mean_txn_latency() > r1.mean_txn_latency(),
            "8 programs sharing banks must see longer transactions"
        );
    }

    #[test]
    fn multicore_trace_interleaves_at_event_granularity() {
        let mut rc = quick(Scheme::SuperMem, WorkloadKind::Queue);
        rc.txns = 15;
        rc.programs = 4;
        let r = run_multicore_trace(&rc);
        assert_eq!(r.stats.txn_commits, 60);
        // Contention must be visible relative to a single program.
        let mut one = rc.clone();
        one.programs = 1;
        let r1 = run_multicore_trace(&one);
        assert!(r.mean_txn_latency() > r1.mean_txn_latency());
    }

    #[test]
    fn trace_replay_matches_live_run_shape() {
        // Record once, replay per scheme: the trace-driven latencies must
        // preserve the live ordering Unsec < SuperMem < WT.
        let rc = quick(Scheme::SuperMem, WorkloadKind::Queue);
        let trace = record_workload_trace(&rc);
        assert!(trace.iter().filter(|e| e.is_marker()).count() as u64 == 2 * rc.txns);
        let lat = |scheme: Scheme| {
            let mut rc = rc.clone();
            rc.scheme = scheme;
            replay_trace(&rc, &trace).mean_txn_latency()
        };
        let unsec = lat(Scheme::Unsec);
        let wt = lat(Scheme::WriteThrough);
        let sm = lat(Scheme::SuperMem);
        assert!(wt > unsec * 1.2, "WT {wt:.0} vs Unsec {unsec:.0}");
        assert!(sm < wt, "SuperMem {sm:.0} vs WT {wt:.0}");
    }

    #[test]
    fn trace_replay_reproduces_contents() {
        use crate::system::System;
        use supermem_persist::{PMem, RecoveredMemory, VecMem};
        let rc = quick(Scheme::SuperMem, WorkloadKind::HashTable);
        let trace = record_workload_trace(&rc);
        // Functional reference of the final bytes.
        let mut reference = VecMem::new();
        supermem_trace::replay(&trace, &mut reference);
        // Timed encrypted replay, then decrypt through a crash image.
        // Pre-zero the compared region: encrypted NVM merges partial-line
        // writes with garbage (uninitialized lines), VecMem with zeros.
        let mut sys = System::new(rc.build_config());
        sys.write(0, &vec![0u8; 8192]);
        sys.checkpoint();
        {
            use supermem_trace::replay as rp;
            rp(&trace, &mut sys);
        }
        sys.checkpoint();
        let cfg = sys.config().clone();
        let mut rec = RecoveredMemory::from_image(&cfg, sys.crash_now());
        let mut a = vec![0u8; 4096];
        let mut b = vec![0u8; 4096];
        // Compare the log+bucket region head (written bytes only).
        reference.read(0, &mut a);
        rec.read(0, &mut b);
        assert_eq!(
            a, b,
            "replayed ciphertext must decrypt to the reference bytes"
        );
    }

    #[test]
    fn streaming_tree_run_commits_and_streams_node_writes() {
        let rc = quick(Scheme::SuperMem, WorkloadKind::Queue)
            .with_integrity_tree(true)
            .with_persisted_levels(Some(1));
        assert!(rc.validate().is_ok());
        let r = run_single(&rc);
        assert_eq!(r.stats.txn_commits, 40);
        assert!(
            r.stats.nvm_tree_writes > 0,
            "persisted-frontier node writes must reach the media"
        );
        assert!(r.stats.tree_propagations > 0);
        // The knob reaches the machine config unchanged.
        assert_eq!(rc.machine_config().persisted_levels, Some(1));
    }

    #[test]
    #[should_panic(expected = "programs must be in")]
    fn rejects_too_many_programs() {
        let mut rc = quick(Scheme::Unsec, WorkloadKind::Array);
        rc.programs = 9;
        run_multicore(&rc);
    }
}
