//! Differential crash-torture engine (robustness campaign).
//!
//! Every scheme claims some crash-consistency story; this module attacks
//! those claims with *media faults* layered on top of the crash model:
//! torn write-queue drains, bit flips under a SECDED ECC model, stuck-at
//! cells, transient read failures, and whole-bank fail-stops (see
//! [`supermem_nvm::fault`]). A torture campaign sweeps
//! crash-point × fault-class × seed across schemes in parallel (via
//! [`mod@crate::sweep`]), recovers every resulting image, and differentially
//! checks the recovered bytes against a shadow oracle holding the only
//! two legal states — the pre-transaction and post-transaction images.
//!
//! Each case is classified ([`Classification`]):
//!
//! * **recovered-old / recovered-new** — the data matches one oracle
//!   state exactly: crash consistency held.
//! * **detected** — recovery refused (a typed
//!   [`RecoveryError`](supermem_persist::RecoveryError)) or the data is
//!   wrong *and* a hardware-observable signal fired: an ECC detection, a
//!   poisoned read, an Osiris unrecoverable line, or the NVDIMM
//!   dirty-shutdown flag (real DIMMs latch a "last shutdown state" bit
//!   when the ADR drain does not complete; torn or dropped drain entries
//!   set the modeled equivalent). Degraded but honest.
//! * **silent** — the data is neither oracle state and nothing noticed.
//!   This is silent corruption, the one unacceptable outcome; the
//!   campaign fails and [`shrink_point`] produces a minimal reproducer.
//!
//! The application-level companion campaign lives in
//! `supermem_kv::torture`: the same crash arming, fault planning, and
//! image capture, but judged against a KV store's shadow oracle of
//! acknowledged operations (`supermem kv torture`).
//!
//! # Examples
//!
//! ```
//! use supermem::torture::{run_torture, Classification, TortureConfig};
//!
//! let mut cfg = TortureConfig::default();
//! cfg.schemes = vec![supermem::Scheme::SuperMem];
//! cfg.seeds = vec![1];
//! let report = run_torture(&cfg);
//! assert!(report.silent().is_empty(), "no silent corruption");
//! assert!(report.total() > 0);
//! ```

use supermem_nvm::{FaultClass, FaultSpec};
use supermem_persist::{
    recover_osiris, recover_transactions, DirectMem, PMem, RecoveredMemory, TxnManager,
};
use supermem_sim::Config;

use crate::scheme::Scheme;
use crate::sweep::sweep;

/// Address of the data region the tortured transaction mutates.
pub const DATA_ADDR: u64 = 0x2000;
/// Address of the undo log.
pub const LOG_ADDR: u64 = 0x10_0000;
/// Bytes mutated per transaction.
pub const DATA_LEN: usize = 256;

const OLD_BYTE: u8 = 0x11;
const NEW_BYTE: u8 = 0x22;

/// Schemes the campaign sweeps by default: every evaluated configuration
/// except SCA, which by design does not persist its counters (the paper
/// pairs it with a full-memory re-encryption sweep at recovery, which
/// this harness does not model), so a differential check against live
/// data is meaningless for it.
pub const TORTURE_SCHEMES: [Scheme; 8] = [
    Scheme::Unsec,
    Scheme::WriteBackIdeal,
    Scheme::WriteThrough,
    Scheme::WtCwc,
    Scheme::WtXbank,
    Scheme::SuperMem,
    Scheme::WtSameBank,
    Scheme::Osiris,
];

/// What a torture case amounted to after recovery and the differential
/// check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// The pre-transaction state survived intact (rollback or early
    /// crash).
    RecoveredOld,
    /// The post-transaction state survived intact (commit completed).
    RecoveredNew,
    /// The state is degraded but the damage was *detected*: recovery
    /// returned a typed error, or a hardware-observable fault signal
    /// (ECC detection, poisoned read, dirty-shutdown flag) fired.
    Detected,
    /// Wrong data with no error and no detection signal: silent
    /// corruption. A campaign containing one of these fails.
    Silent,
}

impl Classification {
    /// Stable display spelling.
    pub fn name(self) -> &'static str {
        match self {
            Classification::RecoveredOld => "recovered-old",
            Classification::RecoveredNew => "recovered-new",
            Classification::Detected => "detected",
            Classification::Silent => "SILENT",
        }
    }
}

impl std::fmt::Display for Classification {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully determined torture case: scheme, optional fault (None is
/// the no-fault baseline), crash point, and injection seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TortureCase {
    /// Scheme under torture.
    pub scheme: Scheme,
    /// Fault class to inject, or `None` for the crash-only baseline.
    pub class: Option<FaultClass>,
    /// Crash after this many write-queue appends (1-based,
    /// machine-wide across channels).
    pub point: u64,
    /// Seed fixing every choice the injection makes.
    pub seed: u64,
    /// Interleaved memory channels (power of two; 1 = the paper's
    /// single controller).
    pub channels: usize,
}

impl TortureCase {
    /// The CLI invocation reproducing exactly this case.
    pub fn repro(&self) -> String {
        let mut line = format!(
            "supermem torture --scheme {} --fault {} --point {} --seed {}",
            self.scheme.name().to_ascii_lowercase(),
            self.class.map_or("none", FaultClass::name),
            self.point,
            self.seed
        );
        if self.channels != 1 {
            line.push_str(&format!(" --channels {}", self.channels));
        }
        line
    }
}

/// The outcome of one executed [`TortureCase`].
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The case that ran.
    pub case: TortureCase,
    /// How it was classified.
    pub classification: Classification,
    /// Human-readable evidence for the classification.
    pub detail: String,
}

/// Per-scheme tally of classifications.
#[derive(Debug, Clone, Copy)]
pub struct SchemeSummary {
    /// The scheme being summarized.
    pub scheme: Scheme,
    /// Total cases run against it.
    pub cases: u64,
    /// Cases classified [`Classification::RecoveredOld`].
    pub recovered_old: u64,
    /// Cases classified [`Classification::RecoveredNew`].
    pub recovered_new: u64,
    /// Cases classified [`Classification::Detected`].
    pub detected: u64,
    /// Cases classified [`Classification::Silent`].
    pub silent: u64,
}

impl SchemeSummary {
    /// One-word verdict for the summary table.
    pub fn verdict(&self) -> &'static str {
        if self.silent > 0 {
            "SILENT CORRUPTION"
        } else {
            "fail-safe"
        }
    }
}

/// Everything a torture campaign produced.
#[derive(Debug, Clone)]
pub struct TortureReport {
    /// Every executed case, in sweep (input) order.
    pub results: Vec<CaseResult>,
}

impl TortureReport {
    /// Total number of injections executed.
    pub fn total(&self) -> u64 {
        self.results.len() as u64
    }

    /// The silent-corruption cases (a passing campaign has none).
    pub fn silent(&self) -> Vec<&CaseResult> {
        self.results
            .iter()
            .filter(|r| r.classification == Classification::Silent)
            .collect()
    }

    /// Count of cases with the given classification.
    pub fn count(&self, c: Classification) -> u64 {
        self.results
            .iter()
            .filter(|r| r.classification == c)
            .count() as u64
    }

    /// Per-scheme tallies, in first-seen order.
    pub fn by_scheme(&self) -> Vec<SchemeSummary> {
        let mut out: Vec<SchemeSummary> = Vec::new();
        for r in &self.results {
            if !out.iter().any(|s| s.scheme == r.case.scheme) {
                out.push(SchemeSummary {
                    scheme: r.case.scheme,
                    cases: 0,
                    recovered_old: 0,
                    recovered_new: 0,
                    detected: 0,
                    silent: 0,
                });
            }
            let entry = out
                .iter_mut()
                .find(|s| s.scheme == r.case.scheme)
                .expect("present by construction");
            entry.cases += 1;
            match r.classification {
                Classification::RecoveredOld => entry.recovered_old += 1,
                Classification::RecoveredNew => entry.recovered_new += 1,
                Classification::Detected => entry.detected += 1,
                Classification::Silent => entry.silent += 1,
            }
        }
        out
    }
}

/// Campaign shape: which schemes, which fault classes (with `None` as
/// the crash-only baseline), which seeds, and optionally a single fixed
/// crash point instead of the full sweep.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Schemes to torture.
    pub schemes: Vec<Scheme>,
    /// Fault classes; `None` entries run the crash-only baseline.
    pub classes: Vec<Option<FaultClass>>,
    /// Injection seeds; each (scheme, class, point) runs once per seed.
    pub seeds: Vec<u64>,
    /// Restrict the sweep to this single crash point, if set.
    pub point: Option<u64>,
    /// Channel counts to sweep. Channel counts above 1 run only the
    /// schemes whose multi-channel behavior the campaign certifies
    /// (SuperMem and WriteThrough) when more than one count is listed.
    pub channels: Vec<usize>,
}

impl Default for TortureConfig {
    fn default() -> Self {
        let mut classes: Vec<Option<FaultClass>> = vec![None];
        classes.extend(FaultClass::ALL.into_iter().map(Some));
        Self {
            schemes: TORTURE_SCHEMES.to_vec(),
            classes,
            seeds: vec![1, 2],
            point: None,
            channels: vec![1, 2],
        }
    }
}

fn old_image() -> [u8; DATA_LEN] {
    [OLD_BYTE; DATA_LEN]
}

fn new_image() -> [u8; DATA_LEN] {
    [NEW_BYTE; DATA_LEN]
}

/// Builds the pre-transaction system: the old data durably persisted,
/// queues drained.
fn base_system(cfg: &Config) -> DirectMem {
    let mut base = DirectMem::new(cfg);
    base.persist(DATA_ADDR, &old_image());
    base.shutdown();
    base
}

/// The tortured workload: one durable undo-logged transaction flipping
/// the data region from the old to the new oracle state.
fn run_txn(mem: &mut DirectMem) {
    let mut txm = TxnManager::new(LOG_ADDR, 4096);
    let mut txn = txm.begin();
    txn.write(DATA_ADDR, new_image().to_vec());
    txn.commit(mem).expect("commit");
}

/// Number of write-queue append boundaries the torture transaction
/// crosses under `scheme` with `channels` interleaved controllers —
/// i.e. how many distinct crash points the sweep visits (a dry run, no
/// faults).
pub fn crash_points(scheme: Scheme, channels: usize) -> u64 {
    let cfg = scheme.apply(Config::default()).with_channels(channels);
    crash_points_for(&cfg)
}

fn crash_points_for(cfg: &Config) -> u64 {
    let base = base_system(cfg);
    let mut dry = base.clone();
    let before = dry.controller().append_events();
    run_txn(&mut dry);
    dry.shutdown();
    dry.controller().append_events() - before
}

/// Executes one torture case end to end: establish the old state, arm
/// the crash, inject the fault, run the transaction, recover the image,
/// and classify the result against the shadow oracle.
pub fn run_case(tc: &TortureCase) -> CaseResult {
    let cfg = tc
        .scheme
        .apply(Config::default())
        .with_channels(tc.channels);
    let spec = tc.class.map(|class| FaultSpec {
        class,
        seed: tc.seed,
    });

    let base = base_system(&cfg);
    let mut mem = base.clone();
    mem.controller_mut().arm_crash_after_appends(tc.point);
    if let Some(spec) = spec {
        if spec.class.is_power_event() {
            // Torn drains and bank fail-stops happen *at* the power
            // event, inside the controller's crash snapshot.
            mem.controller_mut().set_fault_plan(spec);
        }
    }
    run_txn(&mut mem);

    let mut machine = if let Some(m) = mem.controller_mut().take_machine_crash_image() {
        m
    } else {
        // The armed point lies beyond the final append: the
        // transaction completed. Finish cleanly and image that.
        mem.shutdown();
        mem.machine_crash_now()
    };
    if let Some(spec) = spec {
        if !spec.class.is_power_event() {
            // Media strikes (flips, stuck cells, transients) land on
            // the settled image, after the dust of the crash — on one
            // seed-chosen channel, mirroring the single fault plan a
            // power event leaves behind.
            let ch = (tc.seed as usize) % machine.channels.len();
            machine.channels[ch].store.strike_faults(spec);
        }
    }

    classify(tc, &cfg, machine)
}

fn classify(
    tc: &TortureCase,
    cfg: &Config,
    machine: supermem_memctrl::MachineCrashImage,
) -> CaseResult {
    let (classification, detail) = classify_image(cfg, machine);
    CaseResult {
        case: *tc,
        classification,
        detail,
    }
}

/// Recovers `machine` and judges the result against the shadow oracle —
/// the scheme-agnostic core shared by the main campaign and the
/// integrity-tree campaign.
fn classify_image(
    cfg: &Config,
    machine: supermem_memctrl::MachineCrashImage,
) -> (Classification, String) {
    let done = |classification, detail| (classification, detail);

    // Recover counters first (Osiris trial decryption where the scheme
    // relaxes counter persistence, integrity-checked rebuild otherwise),
    // then replay/roll back the transaction log.
    let (mut rec, osiris_unrecoverable) = if cfg.osiris_window.is_some() {
        match recover_osiris(cfg, machine.merged()) {
            Ok((rec, report)) => (rec, report.unrecoverable_lines),
            Err(e) => {
                return done(
                    Classification::Detected,
                    format!("osiris counter recovery refused: {e}"),
                )
            }
        }
    } else {
        match RecoveredMemory::from_machine_image_checked(cfg, machine) {
            Ok(rec) => (rec, 0),
            Err(e) => {
                return done(
                    Classification::Detected,
                    format!("image rebuild refused: {e}"),
                )
            }
        }
    };
    let outcome = match recover_transactions(&mut rec, LOG_ADDR) {
        Ok(o) => o,
        Err(e) => {
            return done(
                Classification::Detected,
                format!("log recovery failed: {e}"),
            )
        }
    };

    // Differential check against the shadow oracle: the only two legal
    // states are the pre- and post-transaction images.
    let mut buf = [0u8; DATA_LEN];
    rec.read(DATA_ADDR, &mut buf);
    if buf == old_image() {
        return done(
            Classification::RecoveredOld,
            format!("old state intact after {outcome:?}"),
        );
    }
    if buf == new_image() {
        return done(
            Classification::RecoveredNew,
            format!("new state intact after {outcome:?}"),
        );
    }

    // Wrong data: acceptable only if something noticed. `any_detected`
    // covers ECC detections, poisoned/lost reads, and transient
    // exhaustion; torn or dropped drain entries latch the modeled
    // NVDIMM dirty-shutdown flag.
    let fc = rec.store().fault_counters();
    let dirty_shutdown = fc.torn_entries > 0 || fc.dropped_writes > 0;
    if fc.any_detected() || dirty_shutdown || rec.media_failures() > 0 || osiris_unrecoverable > 0 {
        return done(
            Classification::Detected,
            format!(
                "degraded data with detection signals after {outcome:?}: \
                 ecc_detections={} lost_reads={} transient_failures={} \
                 torn_entries={} dropped_writes={} media_failures={} \
                 osiris_unrecoverable={}",
                fc.ecc_detections,
                fc.lost_reads,
                fc.transient_failures,
                fc.torn_entries,
                fc.dropped_writes,
                rec.media_failures(),
                osiris_unrecoverable
            ),
        );
    }
    done(
        Classification::Silent,
        format!("data is neither oracle state and nothing detected it (after {outcome:?})"),
    )
}

/// Shrinks a failing case to the smallest crash point that still
/// reproduces its classification — the torture analogue of the checker's
/// transaction-count shrinking. Returns the minimal point.
pub fn shrink_point(tc: &TortureCase) -> u64 {
    let target = run_case(tc).classification;
    let mut best = tc.point;
    let mut probe = tc.point / 2;
    while probe >= 1 {
        let mut smaller = *tc;
        smaller.point = probe;
        if run_case(&smaller).classification == target {
            best = probe;
            probe /= 2;
        } else {
            break;
        }
    }
    best
}

/// Runs the full campaign: for every scheme the crash points are counted
/// with a dry run, then every (class, point, seed) combination fans out
/// over the parallel sweep engine. Results come back in input order.
pub fn run_torture(cfg: &TortureConfig) -> TortureReport {
    let mut cases: Vec<TortureCase> = Vec::new();
    for &channels in &cfg.channels {
        for &scheme in &cfg.schemes {
            // In matrix mode the multi-channel columns certify only the
            // schemes whose sharded behavior the campaign pins down.
            if channels != 1
                && cfg.channels.len() > 1
                && !matches!(scheme, Scheme::SuperMem | Scheme::WriteThrough)
            {
                continue;
            }
            let total = crash_points(scheme, channels);
            let points: Vec<u64> = match cfg.point {
                Some(p) => vec![p.clamp(1, total)],
                None => (1..=total).collect(),
            };
            for &class in &cfg.classes {
                for &point in &points {
                    for &seed in &cfg.seeds {
                        cases.push(TortureCase {
                            scheme,
                            class,
                            point,
                            seed,
                            channels,
                        });
                    }
                }
            }
        }
    }
    let results = sweep(&cases, run_case);
    TortureReport { results }
}

// ---------------------------------------------------------------------
// Integrity-tree torture: media faults and active tampering aimed at the
// persisted tree-node region of a streaming-tree machine.
// ---------------------------------------------------------------------

/// What the integrity-tree campaign injects into a crash image whose
/// machine ran with the streaming tree armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeFault {
    /// Crash-only baseline: the streaming tree armed, nothing injected.
    None,
    /// A media fault. Power-event classes (torn drain, bank fail-stop)
    /// strike *at* the crash — a fail-stopped bank takes its settled
    /// tree-node lines with it. The others strike a seed-chosen
    /// tree-node line on the settled image through the SECDED model.
    Media(FaultClass),
    /// An ECC-clean byte rewrite of one persisted node line — active
    /// tampering that only the recovery-time tree audit can catch.
    Tamper,
}

impl TreeFault {
    /// Stable CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            TreeFault::None => "none",
            TreeFault::Media(c) => c.name(),
            TreeFault::Tamper => "tamper",
        }
    }
}

impl std::fmt::Display for TreeFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One fully determined integrity-tree torture case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeTortureCase {
    /// Persistence frontier of the tortured machine (`1..=height`;
    /// level 0 would persist nothing and leave no tree region to hit).
    pub levels: u32,
    /// What to inject.
    pub fault: TreeFault,
    /// Crash after this many write-queue appends (1-based).
    pub point: u64,
    /// Seed fixing every choice the injection makes.
    pub seed: u64,
}

impl TreeTortureCase {
    /// The CLI invocation reproducing exactly this case.
    pub fn repro(&self) -> String {
        format!(
            "supermem torture --tree --persisted-levels {} --fault {} --point {} --seed {}",
            self.levels,
            self.fault.name(),
            self.point,
            self.seed
        )
    }
}

/// The outcome of one executed [`TreeTortureCase`].
#[derive(Debug, Clone)]
pub struct TreeCaseResult {
    /// The case that ran.
    pub case: TreeTortureCase,
    /// How it was classified.
    pub classification: Classification,
    /// Human-readable evidence for the classification.
    pub detail: String,
}

/// Everything an integrity-tree campaign produced.
#[derive(Debug, Clone)]
pub struct TreeTortureReport {
    /// Every executed case, in sweep (input) order.
    pub results: Vec<TreeCaseResult>,
}

impl TreeTortureReport {
    /// Total number of injections executed.
    pub fn total(&self) -> u64 {
        self.results.len() as u64
    }

    /// The silent-corruption cases (a passing campaign has none).
    pub fn silent(&self) -> Vec<&TreeCaseResult> {
        self.results
            .iter()
            .filter(|r| r.classification == Classification::Silent)
            .collect()
    }

    /// Count of cases with the given classification.
    pub fn count(&self, c: Classification) -> u64 {
        self.results
            .iter()
            .filter(|r| r.classification == c)
            .count() as u64
    }
}

/// Campaign shape for the integrity-tree torture.
#[derive(Debug, Clone)]
pub struct TreeTortureConfig {
    /// Persistence frontiers to torture (each `1..=height`).
    pub levels: Vec<u32>,
    /// Faults to inject; [`TreeFault::None`] is the crash-only baseline.
    pub faults: Vec<TreeFault>,
    /// Injection seeds.
    pub seeds: Vec<u64>,
    /// Restrict the sweep to this single crash point, if set.
    pub point: Option<u64>,
}

impl Default for TreeTortureConfig {
    fn default() -> Self {
        let mut faults = vec![TreeFault::None, TreeFault::Tamper];
        faults.extend(FaultClass::ALL.into_iter().map(TreeFault::Media));
        Self {
            levels: vec![1, 2],
            faults,
            seeds: vec![1, 2],
            point: None,
        }
    }
}

/// The machine configuration a tree torture case runs: the full SuperMem
/// scheme with the streaming integrity tree persisted to `levels`.
pub fn tree_torture_config(levels: u32) -> Config {
    let cfg = Scheme::SuperMem
        .apply(Config::default())
        .with_integrity_tree(true)
        .with_persisted_levels(Some(levels));
    #[allow(clippy::disallowed_methods)]
    cfg.validate().expect("tree torture config is valid");
    cfg
}

/// Executes one integrity-tree torture case end to end.
pub fn run_tree_case(tc: &TreeTortureCase) -> TreeCaseResult {
    let cfg = tree_torture_config(tc.levels);
    let base = base_system(&cfg);
    let mut mem = base.clone();
    mem.controller_mut().arm_crash_after_appends(tc.point);
    if let TreeFault::Media(class) = tc.fault {
        if class.is_power_event() {
            mem.controller_mut().set_fault_plan(FaultSpec {
                class,
                seed: tc.seed,
            });
        }
    }
    run_txn(&mut mem);

    let mut machine = if let Some(m) = mem.controller_mut().take_machine_crash_image() {
        m
    } else {
        mem.shutdown();
        mem.machine_crash_now()
    };
    match tc.fault {
        TreeFault::Media(class) if !class.is_power_event() => {
            machine.channels[0].store.strike_tree_fault(FaultSpec {
                class,
                seed: tc.seed,
            });
        }
        TreeFault::Tamper => {
            machine.channels[0].store.tamper_tree_line(tc.seed);
        }
        _ => {}
    }

    let (classification, detail) = classify_image(&cfg, machine);
    TreeCaseResult {
        case: *tc,
        classification,
        detail,
    }
}

/// Runs the integrity-tree campaign: crash points are counted with a dry
/// run per frontier, then every (fault, point, seed) combination fans
/// out over the parallel sweep engine.
pub fn run_tree_torture(cfg: &TreeTortureConfig) -> TreeTortureReport {
    let mut cases: Vec<TreeTortureCase> = Vec::new();
    for &levels in &cfg.levels {
        let total = crash_points_for(&tree_torture_config(levels));
        let points: Vec<u64> = match cfg.point {
            Some(p) => vec![p.clamp(1, total)],
            None => (1..=total).collect(),
        };
        for &fault in &cfg.faults {
            for &point in &points {
                for &seed in &cfg.seeds {
                    cases.push(TreeTortureCase {
                        levels,
                        fault,
                        point,
                        seed,
                    });
                }
            }
        }
    }
    let results = sweep(&cases, run_tree_case);
    TreeTortureReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(scheme: Scheme, class: Option<FaultClass>, seeds: &[u64]) -> TortureReport {
        single_ch(scheme, class, seeds, 1)
    }

    fn single_ch(
        scheme: Scheme,
        class: Option<FaultClass>,
        seeds: &[u64],
        channels: usize,
    ) -> TortureReport {
        let cfg = TortureConfig {
            schemes: vec![scheme],
            classes: vec![class],
            seeds: seeds.to_vec(),
            point: None,
            channels: vec![channels],
        };
        run_torture(&cfg)
    }

    #[test]
    fn baseline_without_faults_always_recovers_an_oracle_state() {
        // Satellite (c): recovery of an un-faulted crash image must never
        // report corruption, at any crash point, under several seeds.
        for scheme in [Scheme::SuperMem, Scheme::WriteThrough, Scheme::Osiris] {
            let report = single(scheme, None, &[1, 2, 3]);
            for r in &report.results {
                assert!(
                    matches!(
                        r.classification,
                        Classification::RecoveredOld | Classification::RecoveredNew
                    ),
                    "{}: un-faulted case must recover cleanly, got {} ({})",
                    r.case.repro(),
                    r.classification,
                    r.detail
                );
            }
        }
    }

    #[test]
    fn torn_drains_never_corrupt_silently() {
        let report = single(Scheme::SuperMem, Some(FaultClass::Torn), &[1, 2, 3, 4]);
        assert!(report.silent().is_empty(), "torn drain slipped through");
        // The tear must actually bite somewhere: at least one case must
        // deviate from the clean-crash classification or carry tear
        // evidence in its detail.
        assert!(
            report
                .results
                .iter()
                .any(|r| r.classification == Classification::Detected),
            "no torn case was detected — the injection is not wired up"
        );
    }

    #[test]
    fn double_flips_are_detected_not_silent() {
        let report = single(Scheme::SuperMem, Some(FaultClass::DoubleFlip), &[1, 2, 3]);
        assert!(report.silent().is_empty());
        assert!(
            report
                .results
                .iter()
                .any(|r| r.classification == Classification::Detected),
            "an uncorrectable double flip must surface as detected"
        );
    }

    #[test]
    fn single_flips_and_stuck_cells_are_absorbed() {
        // SECDED corrects single wrong bits, so these classes should
        // leave recovery intact (and certainly never silent).
        for class in [FaultClass::BitFlip, FaultClass::StuckAt] {
            let report = single(Scheme::SuperMem, Some(class), &[1, 2]);
            assert!(report.silent().is_empty(), "{class}: silent corruption");
            assert_eq!(
                report.count(Classification::RecoveredOld)
                    + report.count(Classification::RecoveredNew)
                    + report.count(Classification::Detected),
                report.total()
            );
        }
    }

    #[test]
    fn transient_reads_are_retried_through() {
        let report = single(Scheme::SuperMem, Some(FaultClass::TransientRead), &[1, 2]);
        assert!(report.silent().is_empty());
    }

    #[test]
    fn bank_failures_degrade_but_never_lie() {
        let report = single(Scheme::SuperMem, Some(FaultClass::BankFail), &[1, 2]);
        assert!(report.silent().is_empty(), "bank loss must be detected");
        assert!(
            report
                .results
                .iter()
                .any(|r| r.classification == Classification::Detected),
            "losing a whole bank must be detected somewhere in the sweep"
        );
    }

    #[test]
    fn report_tallies_are_consistent() {
        let report = single(Scheme::WriteThrough, Some(FaultClass::BitFlip), &[7]);
        let by_scheme = report.by_scheme();
        assert_eq!(by_scheme.len(), 1);
        let s = by_scheme[0];
        assert_eq!(s.cases, report.total());
        assert_eq!(
            s.recovered_old + s.recovered_new + s.detected + s.silent,
            s.cases
        );
        assert_eq!(s.verdict(), "fail-safe");
    }

    #[test]
    fn repro_line_round_trips_through_the_cli_spelling() {
        let tc = TortureCase {
            scheme: Scheme::WtXbank,
            class: Some(FaultClass::DoubleFlip),
            point: 5,
            seed: 9,
            channels: 1,
        };
        assert_eq!(
            tc.repro(),
            "supermem torture --scheme wt+xbank --fault double-flip --point 5 --seed 9"
        );
        let tc = TortureCase {
            scheme: Scheme::SuperMem,
            class: None,
            point: 1,
            seed: 1,
            channels: 1,
        };
        assert!(tc.repro().contains("--fault none"));
        let mut tc2 = tc;
        tc2.channels = 2;
        assert!(tc2.repro().ends_with("--channels 2"));
    }

    #[test]
    fn multi_channel_baseline_recovers_an_oracle_state() {
        for scheme in [Scheme::SuperMem, Scheme::WriteThrough] {
            let report = single_ch(scheme, None, &[1, 2], 2);
            for r in &report.results {
                assert_eq!(r.case.channels, 2);
                assert!(
                    matches!(
                        r.classification,
                        Classification::RecoveredOld | Classification::RecoveredNew
                    ),
                    "{}: un-faulted 2-channel case must recover cleanly, got {} ({})",
                    r.case.repro(),
                    r.classification,
                    r.detail
                );
            }
        }
    }

    #[test]
    fn multi_channel_torn_drains_never_corrupt_silently() {
        let report = single_ch(Scheme::SuperMem, Some(FaultClass::Torn), &[1, 2], 2);
        assert!(
            report.silent().is_empty(),
            "torn drain slipped through at 2 channels"
        );
    }

    #[test]
    fn matrix_mode_limits_multi_channel_columns_to_certified_schemes() {
        let cfg = TortureConfig {
            schemes: vec![Scheme::SuperMem, Scheme::Osiris],
            classes: vec![None],
            seeds: vec![1],
            point: Some(1),
            channels: vec![1, 2],
        };
        let report = run_torture(&cfg);
        assert!(report
            .results
            .iter()
            .any(|r| r.case.scheme == Scheme::Osiris && r.case.channels == 1));
        assert!(
            !report
                .results
                .iter()
                .any(|r| r.case.scheme == Scheme::Osiris && r.case.channels == 2),
            "Osiris must not appear in the multi-channel column"
        );
        assert!(report
            .results
            .iter()
            .any(|r| r.case.scheme == Scheme::SuperMem && r.case.channels == 2));
    }

    #[test]
    fn shrink_finds_a_smaller_point_with_the_same_outcome() {
        // Shrinking a clean case keeps its class of outcome; the exact
        // classification at the minimal point must match the original's.
        let tc = TortureCase {
            scheme: Scheme::SuperMem,
            class: None,
            point: crash_points(Scheme::SuperMem, 1),
            seed: 1,
            channels: 1,
        };
        let min = shrink_point(&tc);
        assert!(min >= 1 && min <= tc.point);
        let mut at_min = tc;
        at_min.point = min;
        assert_eq!(
            run_case(&at_min).classification,
            run_case(&tc).classification
        );
    }

    fn tree_single(levels: u32, fault: TreeFault, seeds: &[u64]) -> TreeTortureReport {
        run_tree_torture(&TreeTortureConfig {
            levels: vec![levels],
            faults: vec![fault],
            seeds: seeds.to_vec(),
            point: None,
        })
    }

    #[test]
    fn tree_baseline_without_faults_always_recovers_an_oracle_state() {
        // The streaming tree must not *cause* recovery failures: an
        // un-faulted crash at any point recovers one oracle state.
        for levels in [1, 2] {
            let report = tree_single(levels, TreeFault::None, &[1, 2]);
            for r in &report.results {
                assert!(
                    matches!(
                        r.classification,
                        Classification::RecoveredOld | Classification::RecoveredNew
                    ),
                    "{}: un-faulted streaming-tree case must recover cleanly, got {} ({})",
                    r.case.repro(),
                    r.classification,
                    r.detail
                );
            }
        }
    }

    #[test]
    fn tree_node_double_flips_are_detected_not_silent() {
        let report = tree_single(1, TreeFault::Media(FaultClass::DoubleFlip), &[1, 2]);
        assert!(
            report.silent().is_empty(),
            "tree-node damage slipped through"
        );
        assert!(
            report.count(Classification::Detected) > 0,
            "an uncorrectable tree-node flip must surface as detected"
        );
    }

    #[test]
    fn tree_node_tampering_is_always_detected() {
        // ECC-clean forgery of a node line: only the recovery audit can
        // see it, and it must see it every time — the whole point of
        // persisting the frontier.
        for levels in [1, 2] {
            let report = tree_single(levels, TreeFault::Tamper, &[1, 2, 3]);
            for r in &report.results {
                assert_eq!(
                    r.classification,
                    Classification::Detected,
                    "{}: forged node line not detected ({})",
                    r.case.repro(),
                    r.detail
                );
            }
        }
    }

    #[test]
    fn tree_bank_failure_takes_node_lines_honestly() {
        let report = tree_single(1, TreeFault::Media(FaultClass::BankFail), &[1, 2]);
        assert!(
            report.silent().is_empty(),
            "lost tree lines must be detected"
        );
        assert!(report.count(Classification::Detected) > 0);
    }

    #[test]
    fn tree_repro_line_round_trips_through_the_cli_spelling() {
        let tc = TreeTortureCase {
            levels: 2,
            fault: TreeFault::Tamper,
            point: 5,
            seed: 9,
        };
        assert_eq!(
            tc.repro(),
            "supermem torture --tree --persisted-levels 2 --fault tamper --point 5 --seed 9"
        );
    }
}
