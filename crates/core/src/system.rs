//! The timed full-system model.
//!
//! [`System`] wires the CPU cache hierarchy (per-core L1/L2, shared L3)
//! to the secure memory controller and exposes the
//! [`PMem`] interface, so any persistent data
//! structure or transaction runs unmodified on every scheme — the
//! *application transparency* the paper's title promises.
//!
//! Timing model: each core owns a logical clock. Loads advance it by the
//! cache hit latency or the NVM read completion; stores hit L1;
//! `clwb` sends the newest dirty copy down the encrypted write path and
//! records its retire cycle; `sfence` advances the clock past all
//! outstanding retires. Dirty cache *evictions* also flow through the
//! controller but do not block the core (hardware write-buffers them).

use supermem_cache::CacheHierarchy;
use supermem_memctrl::{ChannelSet, CrashImage, MachineCrashImage};
use supermem_nvm::addr::LineAddr;
use supermem_persist::PMem;
use supermem_sim::{Config, Cycle, Event, Observer, Stats};

use crate::scheme::Scheme;

/// Per-core execution state.
#[derive(Debug, Clone, Copy, Default)]
struct CoreState {
    now: Cycle,
    pending_retire: Cycle,
}

/// Builder for [`System`].
///
/// # Examples
///
/// ```
/// use supermem::{Scheme, SystemBuilder};
///
/// let sys = SystemBuilder::new()
///     .scheme(Scheme::WtCwc)
///     .write_queue_entries(64)
///     .seed(7)
///     .build();
/// assert!(sys.config().cwc);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SystemBuilder {
    cfg: Option<Config>,
    scheme: Option<Scheme>,
    write_queue_entries: Option<usize>,
    counter_cache_bytes: Option<u64>,
    seed: Option<u64>,
}

impl SystemBuilder {
    /// Starts from the paper's Table 2 defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the base configuration entirely.
    pub fn config(mut self, cfg: Config) -> Self {
        self.cfg = Some(cfg);
        self
    }

    /// Applies a [`Scheme`]'s knobs on top of the base configuration.
    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = Some(scheme);
        self
    }

    /// Overrides the write-queue capacity (Figure 16 sweeps this).
    pub fn write_queue_entries(mut self, entries: usize) -> Self {
        self.write_queue_entries = Some(entries);
        self
    }

    /// Overrides the counter-cache size (Figure 17 sweeps this).
    pub fn counter_cache_bytes(mut self, bytes: u64) -> Self {
        self.counter_cache_bytes = Some(bytes);
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if the resulting configuration is invalid.
    pub fn build(self) -> System {
        let mut cfg = self.cfg.unwrap_or_default();
        if let Some(scheme) = self.scheme {
            cfg = scheme.apply(cfg);
        }
        if let Some(wq) = self.write_queue_entries {
            cfg.write_queue_entries = wq;
        }
        if let Some(cc) = self.counter_cache_bytes {
            cfg.counter_cache_bytes = cc;
        }
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        System::new(cfg)
    }
}

/// The timed secure-PM machine.
///
/// Implements [`PMem`] for the currently active core (see
/// [`System::set_active_core`]); single-core users never need to touch
/// core selection.
#[derive(Debug, Clone)]
pub struct System {
    cfg: Config,
    mc: ChannelSet,
    caches: CacheHierarchy,
    cores: Vec<CoreState>,
    active: usize,
}

impl System {
    /// Builds a system over fresh NVM.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn new(cfg: Config) -> Self {
        let mc = ChannelSet::new(&cfg);
        let caches = CacheHierarchy::new(&cfg);
        Self {
            cores: vec![CoreState::default(); cfg.cores],
            active: 0,
            mc,
            caches,
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Statistics accumulated by the memory controller and system.
    pub fn stats(&self) -> &Stats {
        self.mc.stats()
    }

    /// Mutable statistics (experiment drivers record transaction
    /// latencies here).
    pub fn stats_mut(&mut self) -> &mut Stats {
        self.mc.stats_mut()
    }

    /// Selects which core subsequent [`PMem`] operations run on.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_active_core(&mut self, core: usize) {
        assert!(core < self.cores.len(), "core {core} out of range");
        self.active = core;
    }

    /// The active core's index.
    pub fn active_core(&self) -> usize {
        self.active
    }

    /// The active core's clock.
    pub fn now(&self) -> Cycle {
        self.cores[self.active].now
    }

    /// A specific core's clock.
    pub fn core_now(&self, core: usize) -> Cycle {
        self.cores[core].now
    }

    /// The simulated time at which every core has finished.
    pub fn max_now(&self) -> Cycle {
        self.cores.iter().map(|c| c.now).max().unwrap_or(0)
    }

    /// Warps an idle core's clock forward to `cycle` (no-op if the core
    /// is already past it). Open-loop traffic generators use this to
    /// model a core sitting idle until the next request's arrival time:
    /// core clocks otherwise only advance through memory operations.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn advance_core_to(&mut self, core: usize, cycle: Cycle) {
        self.cores[core].now = self.cores[core].now.max(cycle);
    }

    /// Discards accumulated statistics (used after warm-up /
    /// initialization so figures measure only the steady phase).
    pub fn reset_stats(&mut self) {
        *self.mc.stats_mut() = Stats::new(self.cfg.banks * self.cfg.channels);
    }

    /// Flushes every dirty cache line and drains the write queue: a
    /// clean checkpoint making all prior stores durable. Advances the
    /// active core's clock past the drain.
    pub fn checkpoint(&mut self) {
        let now = self.cores[self.active].now;
        let mut t = now;
        for (line, data) in self.caches.drain_dirty() {
            t = t.max(self.mc.flush_line(line, data, t));
        }
        // Lines were drained (removed); the hierarchy is cold but clean.
        let done = self.mc.finish(t);
        for core in &mut self.cores {
            core.now = core.now.max(done);
            core.pending_retire = 0;
        }
    }

    /// Simulates a power failure right now, merging all channels into
    /// one image.
    pub fn crash_now(&self) -> CrashImage {
        self.mc.crash_now()
    }

    /// [`System::crash_now`] keeping per-channel images separate.
    pub fn machine_crash_now(&self) -> MachineCrashImage {
        self.mc.machine_crash_now()
    }

    /// Arms a crash after `appends` more write-queue append events
    /// machine-wide (see [`ChannelSet::arm_crash_after_appends`]).
    pub fn arm_crash_after_appends(&mut self, appends: u64) {
        self.mc.arm_crash_after_appends(appends);
    }

    /// Retrieves the merged image frozen by an armed crash, if it
    /// triggered.
    pub fn take_crash_image(&mut self) -> Option<CrashImage> {
        self.mc.take_crash_image()
    }

    /// [`System::take_crash_image`] keeping per-channel images separate.
    pub fn take_machine_crash_image(&mut self) -> Option<MachineCrashImage> {
        self.mc.take_machine_crash_image()
    }

    /// Direct access to the memory system (diagnostics).
    pub fn controller(&self) -> &ChannelSet {
        &self.mc
    }

    /// Direct access to the memory system, mutably (fault plans,
    /// degraded-mode injection).
    pub fn controller_mut(&mut self) -> &mut ChannelSet {
        &mut self.mc
    }

    /// Attaches an [`Observer`] to the machine's probe stream. All
    /// controller- and core-level events emitted from now on are
    /// delivered to it; observers never affect simulated timing.
    pub fn attach_observer(&mut self, obs: Box<dyn Observer>) {
        self.mc.attach_observer(obs);
    }

    /// Detaches and returns all attached observers (typically at the end
    /// of the measured window, before verification traffic).
    pub fn take_observers(&mut self) -> Vec<Box<dyn Observer>> {
        self.mc.take_observers()
    }

    /// Records a committed transaction spanning `[start, end]` on the
    /// active core: updates [`Stats`] and emits a probe event.
    pub fn record_txn(&mut self, start: Cycle, end: Cycle) {
        self.mc.stats_mut().record_txn(end.saturating_sub(start));
        let core = self.active;
        self.mc
            .probes_mut()
            .emit_with(|| Event::TxnCommit { core, start, end });
    }

    /// Explicitly writes back one page's dirty counter line — the SCA
    /// `counter_cache_writeback()` primitive (see [`crate::sca`]).
    /// Returns whether a writeback was actually issued; its retire is
    /// awaited by the next `sfence`.
    pub fn writeback_page_counters(&mut self, page: supermem_nvm::addr::PageId) -> bool {
        let core = &mut self.cores[self.active];
        let before = core.now;
        let retire = self.mc.writeback_page_counters(page, before);
        if retire == before {
            return false;
        }
        core.pending_retire = core.pending_retire.max(retire);
        true
    }

    fn line_of(addr: u64) -> u64 {
        addr & !63
    }

    /// Loads a line into the hierarchy and returns its contents.
    fn load_line(&mut self, line_addr: u64) -> [u8; 64] {
        let core = self.active;
        let line = LineAddr(line_addr);
        let res = self.caches.load(core, line);
        let now = self.cores[core].now;
        match res.level {
            1 => self.mc.stats_mut().l1_hits += 1,
            2 => self.mc.stats_mut().l2_hits += 1,
            3 => self.mc.stats_mut().l3_hits += 1,
            _ => {}
        }
        for (wb_line, wb_data) in res.writebacks {
            // Evictions do not block the core.
            self.mc.flush_line(wb_line, wb_data, now);
        }
        if let Some(data) = res.data {
            self.cores[core].now += res.latency;
            return data;
        }
        // Full miss: demand read from the secure NVM.
        self.mc.stats_mut().mem_accesses += 1;
        let (data, done) = self.mc.read_line(line, now + res.latency);
        self.cores[core].now = done;
        for (wb_line, wb_data) in self.caches.fill(core, line, data) {
            let t = self.cores[core].now;
            self.mc.flush_line(wb_line, wb_data, t);
        }
        data
    }
}

impl PMem for System {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        let mut i = 0usize;
        while i < buf.len() {
            let a = addr + i as u64;
            let line = Self::line_of(a);
            let off = (a - line) as usize;
            let n = (64 - off).min(buf.len() - i);
            let data = self.load_line(line);
            buf[i..i + n].copy_from_slice(&data[off..off + n]);
            i += n;
        }
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) {
        let mut i = 0usize;
        while i < bytes.len() {
            let a = addr + i as u64;
            let line = Self::line_of(a);
            let off = (a - line) as usize;
            let n = (64 - off).min(bytes.len() - i);
            // Write-allocate: establish residency, then store.
            let mut data = self.load_line(line);
            data[off..off + n].copy_from_slice(&bytes[i..i + n]);
            let core = self.active;
            let lat = self.caches.store(core, LineAddr(line), data);
            self.cores[core].now += lat;
            i += n;
        }
    }

    fn clwb(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        self.mc.stats_mut().clwb_ops += 1;
        let core = self.active;
        let first = Self::line_of(addr);
        let last = Self::line_of(addr + len - 1);
        let mut line = first;
        loop {
            let (dirty, lat) = self.caches.flush_line(core, LineAddr(line));
            self.cores[core].now += lat;
            if let Some(data) = dirty {
                let now = self.cores[core].now;
                let retire = self.mc.flush_line(LineAddr(line), data, now);
                self.cores[core].pending_retire = self.cores[core].pending_retire.max(retire);
            }
            if line == last {
                break;
            }
            line += 64;
        }
    }

    fn sfence(&mut self) {
        self.mc.stats_mut().sfence_ops += 1;
        let core_idx = self.active;
        let core = &mut self.cores[core_idx];
        let stall = core.pending_retire.saturating_sub(core.now);
        core.now = core.now.max(core.pending_retire) + 1;
        core.pending_retire = 0;
        let at = core.now;
        // Fence semantics for the lazy tree: armed leaf updates must
        // propagate before the fence is visible as retired.
        self.mc.fence_tree_flush(at);
        self.mc.probes_mut().emit_with(|| Event::SfenceRetire {
            core: core_idx,
            at,
            stall,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_persist::{RecoveredMemory, VecMem};

    fn sys(scheme: Scheme) -> System {
        SystemBuilder::new().scheme(scheme).build()
    }

    #[test]
    fn read_write_roundtrip_all_schemes() {
        for scheme in crate::scheme::FIGURE_SCHEMES {
            let mut s = sys(scheme);
            let data: Vec<u8> = (0..300).map(|i| i as u8).collect();
            s.write(0x1234, &data);
            let mut buf = vec![0u8; 300];
            s.read(0x1234, &mut buf);
            assert_eq!(buf, data, "{scheme}");
        }
    }

    #[test]
    fn matches_functional_reference() {
        // The timed system must be byte-equivalent to the functional
        // VecMem under an arbitrary operation sequence.
        let mut s = sys(Scheme::SuperMem);
        let mut r = VecMem::new();
        let mut rng = supermem_sim::SplitMix64::new(99);
        // Initialize the whole exercised range: encrypted NVM reads of
        // never-written lines are garbage (decrypt of zero ciphertext),
        // while VecMem reads zero — both are "uninitialized memory".
        let zeros = vec![0u8; (1 << 16) + 256];
        s.write(0, &zeros);
        r.write(0, &zeros);
        for _ in 0..200 {
            let addr = rng.next_below(1 << 16);
            let len = 1 + rng.next_below(200) as usize;
            let mut bytes = vec![0u8; len];
            rng.fill_bytes(&mut bytes);
            match rng.next_below(4) {
                0 => {
                    s.write(addr, &bytes);
                    r.write(addr, &bytes);
                }
                1 => {
                    let mut a = vec![0u8; len];
                    let mut b = vec![0u8; len];
                    s.read(addr, &mut a);
                    r.read(addr, &mut b);
                    assert_eq!(a, b);
                }
                2 => {
                    s.clwb(addr, len as u64);
                }
                _ => s.sfence(),
            }
        }
    }

    #[test]
    fn clocks_advance_monotonically() {
        let mut s = sys(Scheme::SuperMem);
        let t0 = s.now();
        s.write(0x100, &[1; 64]);
        let t1 = s.now();
        assert!(t1 > t0);
        s.clwb(0x100, 64);
        s.sfence();
        let t2 = s.now();
        assert!(t2 > t1);
    }

    #[test]
    fn sfence_waits_for_flush_retire() {
        let mut s = sys(Scheme::WriteThrough);
        s.write(0x100, &[1; 64]);
        let before = s.now();
        s.clwb(0x100, 64);
        s.sfence();
        // The flush passes counter fetch + AES before retiring, so the
        // fence must cost noticeably more than the 2-cycle L1 probe.
        assert!(s.now() > before + 10, "sfence must wait for the write path");
    }

    #[test]
    fn flushed_data_survives_crash_unflushed_does_not() {
        let mut s = sys(Scheme::SuperMem);
        s.write(0x1000, &[0xAA; 64]);
        s.clwb(0x1000, 64);
        s.sfence();
        s.write(0x2000, &[0xBB; 64]); // never flushed
        let image = s.crash_now();
        let cfg = s.config().clone();
        let mut rec = RecoveredMemory::from_image(&cfg, image);
        let mut buf = [0u8; 64];
        rec.read(0x1000, &mut buf);
        assert_eq!(buf, [0xAA; 64]);
        rec.read(0x2000, &mut buf);
        assert_ne!(buf, [0xBB; 64]);
    }

    #[test]
    fn checkpoint_makes_everything_durable() {
        let mut s = sys(Scheme::SuperMem);
        s.write(0x3000, &[0xCC; 256]);
        s.checkpoint();
        let cfg = s.config().clone();
        let mut rec = RecoveredMemory::from_image(&cfg, s.crash_now());
        let mut buf = [0u8; 256];
        rec.read(0x3000, &mut buf);
        assert_eq!(buf, [0xCC; 256]);
    }

    #[test]
    fn cores_have_independent_clocks() {
        let mut s = sys(Scheme::SuperMem);
        s.set_active_core(0);
        s.write(0x100, &[1; 64]);
        s.clwb(0x100, 64);
        s.sfence();
        let t0 = s.core_now(0);
        assert_eq!(s.core_now(1), 0);
        s.set_active_core(1);
        s.write(0x40000, &[2; 64]);
        assert!(s.core_now(1) > 0);
        assert_eq!(s.core_now(0), t0);
        assert_eq!(s.max_now(), t0.max(s.core_now(1)));
    }

    #[test]
    fn fences_are_per_core() {
        // Core 1's sfence must not wait for core 0's outstanding flush.
        let mut s = sys(Scheme::SuperMem);
        s.set_active_core(0);
        s.write(0x100, &[1; 64]);
        s.clwb(0x100, 64); // outstanding on core 0
        s.set_active_core(1);
        let before = s.core_now(1);
        s.sfence();
        assert_eq!(s.core_now(1), before + 1, "core 1 had nothing to wait for");
        s.set_active_core(0);
        s.sfence();
        assert!(s.core_now(0) > before + 1, "core 0 waits for its flush");
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut s = sys(Scheme::SuperMem);
        s.write(0x100, &[1; 64]);
        s.clwb(0x100, 64);
        s.sfence();
        assert!(s.stats().clwb_ops > 0);
        s.reset_stats();
        assert_eq!(s.stats().clwb_ops, 0);
        assert_eq!(s.stats().nvm_data_writes, 0);
    }

    #[test]
    fn unsec_writes_half_as_much_as_wt() {
        let run = |scheme: Scheme| {
            let mut s = sys(scheme);
            // Touch many distinct pages so CWC-free counter writes pair
            // 1:1 with data writes.
            for i in 0..32u64 {
                s.write(i * 4096, &[i as u8; 64]);
                s.clwb(i * 4096, 64);
                s.sfence();
            }
            s.checkpoint();
            s.stats().nvm_writes_total()
        };
        let unsec = run(Scheme::Unsec);
        let wt = run(Scheme::WriteThrough);
        assert_eq!(wt, unsec * 2, "WT doubles NVM writes (paper §5.2)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_core_rejected() {
        sys(Scheme::Unsec).set_active_core(99);
    }
}
