//! # SuperMem — application-transparent secure persistent memory
//!
//! A full-system reproduction of *"SuperMem: Enabling
//! Application-transparent Secure Persistent Memory with Low Overheads"*
//! (MICRO 2019): counter-mode encrypted NVM made crash consistent with a
//! write-through counter cache, an atomic data+counter append register,
//! locality-aware counter write coalescing (CWC), and cross-bank counter
//! storage (XBank) — plus the cycle-level NVM system simulator, cache
//! hierarchy, persistence stack, and workloads needed to evaluate it.
//!
//! ## Quickstart
//!
//! ```
//! use supermem::{Scheme, SystemBuilder};
//! use supermem_persist::PMem;
//!
//! // Build a SuperMem system (WT counter cache + CWC + XBank).
//! let mut sys = SystemBuilder::new().scheme(Scheme::SuperMem).build();
//!
//! // Store, persist, and read back through the encrypted NVM.
//! sys.write(0x1000, b"hello supermem");
//! sys.clwb(0x1000, 14);
//! sys.sfence();
//! let mut buf = [0u8; 14];
//! sys.read(0x1000, &mut buf);
//! assert_eq!(&buf, b"hello supermem");
//!
//! // The NVM itself holds only ciphertext; a crash preserves exactly
//! // what was flushed.
//! let image = sys.crash_now();
//! let cfg = sys.config().clone();
//! let mut recovered = supermem_persist::RecoveredMemory::from_image(&cfg, image);
//! let mut buf = [0u8; 14];
//! recovered.read(0x1000, &mut buf);
//! assert_eq!(&buf, b"hello supermem");
//! ```
//!
//! ## Crate map
//!
//! * [`scheme`] — the evaluated configurations (Unsec, ideal WB, WT,
//!   WT+CWC, WT+XBank, SuperMem, plus the SameBank ablation).
//! * [`system`] — the timed machine: per-core L1/L2 + shared L3 over the
//!   secure memory controller, exposing the
//!   [`PMem`](supermem_persist::PMem) interface.
//! * [`runner`] — run configuration plus free-function experiment
//!   drivers (thin wrappers over [`experiment`]).
//! * [`experiment`] — the [`Experiment`] session API: builder-validated
//!   configuration, pluggable [`sim::Observer`]s, and collected
//!   [`sim::Telemetry`] on the [`RunResult`].
//! * [`mod@sweep`] — parallel experiment engine: fans independent runs over
//!   a scoped worker pool, results in input order (bit-identical to a
//!   sequential sweep).
//! * [`metrics`] — result aggregation and normalization helpers for the
//!   figure harness.
//! * [`verify`] — checked runs: the persistency-ordering checker
//!   (`supermem-check`) attached to an experiment's probe stream, plus
//!   the mutant harness proving each invariant fires.
//! * [`torture`] — the differential crash-torture engine: media faults
//!   injected at crash time, every recovered image checked against a
//!   shadow oracle, silent corruption shrunk to a minimal reproducer.
#![deny(missing_docs)]

pub mod experiment;
pub mod metrics;
pub mod runner;
pub mod sca;
pub mod scheme;
pub mod sweep;
pub mod system;
pub mod torture;
pub mod verify;

pub use experiment::{ConfigError, Experiment};
pub use metrics::RunResult;
pub use runner::{
    env_run_threads, record_workload_trace, replay_trace, run_multicore, run_multicore_trace,
    run_single, RunConfig,
};
pub use sca::ScaSystem;
pub use scheme::Scheme;
pub use sweep::{run_batch, sweep, thread_budget, worker_count};
pub use system::{System, SystemBuilder};
pub use torture::{
    run_torture, run_tree_torture, Classification, TortureCase, TortureConfig, TortureReport,
    TreeFault, TreeTortureCase, TreeTortureConfig, TreeTortureReport, TORTURE_SCHEMES,
};
pub use verify::{
    check_run, check_run_trace, run_mutant, run_mutant_sharded, CheckReport, Checker, CheckerMode,
    Rule,
};

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use supermem_cache as cache;
pub use supermem_check as check;
pub use supermem_crypto as crypto;
pub use supermem_integrity as integrity;
pub use supermem_memctrl as memctrl;
pub use supermem_nvm as nvm;
pub use supermem_persist as persist;
pub use supermem_sim as sim;
pub use supermem_trace as trace;
pub use supermem_workloads as workloads;
