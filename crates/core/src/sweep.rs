//! Parallel experiment engine.
//!
//! Every figure in the evaluation is a grid of independent runs: each
//! [`RunConfig`] fully determines its [`RunResult`] (the simulator is
//! seeded and single-threaded *within* a run), so a figure's cell jobs
//! can execute on any host thread in any order without changing a
//! single output bit. This module fans a job list over a scoped worker
//! pool and returns results **in input order**, which is what makes the
//! figure binaries' tables byte-identical to their sequential output.
//!
//! Worker count comes from [`worker_count`]: the `SUPERMEM_THREADS`
//! environment variable when set (a value of `1` forces the sequential
//! path, useful for A/B timing), otherwise
//! [`std::thread::available_parallelism`] — divided by
//! `SUPERMEM_RUN_THREADS` when intra-run parallelism is on, so the two
//! levels of parallelism share one host budget instead of
//! multiplying.
//!
//! ```
//! use supermem::workloads::WorkloadKind;
//! use supermem::{run_batch, RunConfig, Scheme};
//!
//! let mut rc = RunConfig::new(Scheme::SuperMem, WorkloadKind::Array);
//! rc.txns = 5;
//! let results = run_batch(&[rc.clone(), rc]);
//! assert_eq!(results[0].total_cycles, results[1].total_cycles);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::metrics::RunResult;
use crate::runner::{env_run_threads, run_single, RunConfig};

/// Number of worker threads a sweep will use: the host thread budget
/// ([`thread_budget`]) divided by the intra-run worker count
/// ([`env_run_threads`]), so `sweep workers × run_threads` never
/// oversubscribes the host. With `SUPERMEM_RUN_THREADS` unset (the
/// default `run_threads = 1`) this is exactly the budget.
pub fn worker_count() -> usize {
    (thread_budget() / env_run_threads()).max(1)
}

/// The host thread budget before intra-run arbitration:
/// `SUPERMEM_THREADS` if set to a positive integer, else the host's
/// available parallelism.
pub fn thread_budget() -> usize {
    if let Some(n) = std::env::var("SUPERMEM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `worker` over every job on [`worker_count`] threads, returning
/// results in input order.
///
/// Jobs are claimed dynamically (an atomic cursor), so a long-running
/// cell does not stall the rest of its row. With one worker (or one
/// job) this degenerates to a plain sequential map — no threads are
/// spawned — which keeps single-core hosts and `SUPERMEM_THREADS=1`
/// A/B runs free of scheduling noise.
///
/// # Panics
///
/// Propagates a panic from any worker (the scope joins all threads
/// first).
pub fn sweep<J, T, F>(jobs: &[J], worker: F) -> Vec<T>
where
    J: Sync,
    T: Send,
    F: Fn(&J) -> T + Sync,
{
    sweep_on(worker_count(), jobs, worker)
}

/// [`sweep`] with an explicit thread count (testable without touching
/// the process environment).
pub fn sweep_on<J, T, F>(threads: usize, jobs: &[J], worker: F) -> Vec<T>
where
    J: Sync,
    T: Send,
    F: Fn(&J) -> T + Sync,
{
    let threads = threads.max(1).min(jobs.len());
    if threads <= 1 {
        return jobs.iter().map(worker).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let out = worker(job);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed job stores a result")
        })
        .collect()
}

/// Runs a batch of experiment configurations through [`run_single`] in
/// parallel, preserving input order.
pub fn run_batch(configs: &[RunConfig]) -> Vec<RunResult> {
    sweep(configs, run_single)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadKind;
    use crate::Scheme;

    #[test]
    fn preserves_input_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = sweep_on(8, &jobs, |&j| j * 3);
        assert_eq!(out, (0..100).map(|j| j * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let jobs: Vec<u64> = (0..64).collect();
        let seq = sweep_on(1, &jobs, |&j| j.wrapping_mul(0x9E37_79B9).rotate_left(7));
        for threads in [2, 3, 8, 64, 200] {
            let par = sweep_on(threads, &jobs, |&j| {
                j.wrapping_mul(0x9E37_79B9).rotate_left(7)
            });
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_job() {
        let out: Vec<u64> = sweep_on(4, &[], |j: &u64| *j);
        assert!(out.is_empty());
        assert_eq!(sweep_on(4, &[7u64], |j| j + 1), vec![8]);
    }

    #[test]
    fn run_batch_matches_run_single() {
        let mut rc = RunConfig::new(Scheme::SuperMem, WorkloadKind::Array);
        rc.txns = 10;
        let configs = vec![rc.clone(), rc.clone()];
        let batch = sweep_on(2, &configs, run_single);
        let solo = run_single(&rc);
        for r in &batch {
            assert_eq!(r.total_cycles, solo.total_cycles);
            assert_eq!(r.stats, solo.stats);
        }
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(worker_count() >= 1);
    }
}
