//! Result aggregation for the figure harness.
//!
//! [`RunResult`] bundles one experiment's statistics; the helpers here
//! normalize series against a baseline (the paper plots everything
//! normalized to `Unsec`) and render aligned text tables that the
//! `supermem-bench` binaries print.

use supermem_nvm::WearReport;
use supermem_sim::{Cycle, Stats, Telemetry};

use crate::scheme::Scheme;

/// The outcome of one experiment run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The scheme that ran.
    pub scheme: Scheme,
    /// Workload figure name ("array", ...).
    pub workload: String,
    /// Transaction request size in bytes.
    pub req_bytes: u64,
    /// Concurrent programs (1 for single-core figures).
    pub programs: usize,
    /// Committed transactions across all programs.
    pub txns: u64,
    /// Controller + system statistics for the measured phase.
    pub stats: Stats,
    /// Simulated cycles from measurement start to the last core's finish.
    pub total_cycles: Cycle,
    /// Per-line wear summary of the NVM at the end of the run.
    pub wear: WearReport,
    /// Collected probe telemetry, present when the run was observed via
    /// [`crate::Experiment::observe`]; `None` for unobserved runs.
    pub telemetry: Option<Telemetry>,
}

impl RunResult {
    /// Mean transaction latency in cycles.
    ///
    /// # Panics
    ///
    /// Panics if the run committed no transactions.
    pub fn mean_txn_latency(&self) -> f64 {
        self.stats
            .mean_txn_latency()
            .expect("run committed no transactions")
    }

    /// Total NVM write requests (data + counter).
    pub fn nvm_writes(&self) -> u64 {
        self.stats.nvm_writes_total()
    }

    /// Counter-cache hit rate, if any counter accesses happened.
    pub fn counter_cache_hit_rate(&self) -> Option<f64> {
        self.stats.counter_cache_hit_rate()
    }
}

/// `value / baseline` for latency-normalized figures.
///
/// # Panics
///
/// Panics if `baseline` is zero.
pub fn normalized(value: f64, baseline: f64) -> f64 {
    assert!(baseline != 0.0, "normalizing against zero baseline");
    value / baseline
}

/// Geometric mean of a series (the paper's cross-workload summary).
///
/// # Panics
///
/// Panics if the series is empty or contains non-positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty series");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// A simple aligned text table.
///
/// # Examples
///
/// ```
/// use supermem::metrics::TextTable;
///
/// let mut t = TextTable::new(vec!["workload".into(), "WT".into()]);
/// t.row(vec!["array".into(), "1.92".into()]);
/// let s = t.render();
/// assert!(s.contains("array"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The appended rows, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the aligned table. A table with no columns renders as the
    /// empty string (headerless tables have nothing to align).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        if cols == 0 {
            return String::new();
        }
        let mut widths: Vec<usize> = self.headers.iter().map(std::string::String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            parts.join("  ")
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (for plotting scripts).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::float_cmp)] // exact arithmetic on small integers
    fn normalized_divides() {
        assert_eq!(normalized(4.0, 2.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "zero baseline")]
    fn normalized_rejects_zero() {
        normalized(1.0, 0.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn table_alignment_and_csv() {
        let mut t = TextTable::new(vec!["w".into(), "value".into()]);
        t.row(vec!["array".into(), "1.0".into()]);
        t.row(vec!["q".into(), "22.5".into()]);
        let rendered = t.render();
        assert!(rendered.contains("array"));
        assert!(rendered.lines().count() == 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next(), Some("w,value"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn zero_column_table_renders_empty() {
        // Regression: `2 * (cols - 1)` underflowed usize and the
        // separator `repeat` panicked with capacity overflow.
        let t = TextTable::new(Vec::new());
        assert_eq!(t.render(), "");
        assert_eq!(t.to_csv(), "\n");
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact arithmetic on small integers
    fn run_result_accessors() {
        let mut stats = Stats::new(8);
        stats.record_txn(100);
        stats.record_txn(200);
        stats.nvm_data_writes = 5;
        stats.nvm_counter_writes = 5;
        let r = RunResult {
            scheme: Scheme::SuperMem,
            workload: "array".into(),
            req_bytes: 1024,
            programs: 1,
            txns: 2,
            stats,
            total_cycles: 300,
            wear: WearReport::default(),
            telemetry: None,
        };
        assert_eq!(r.mean_txn_latency(), 150.0);
        assert_eq!(r.nvm_writes(), 10);
        assert_eq!(r.counter_cache_hit_rate(), None);
    }
}
