//! Selective counter-atomicity (SCA) baseline — Liu et al., discussed
//! in the paper's §2.3 and §6.
//!
//! SCA keeps the efficient *write-back* counter cache without a battery
//! and regains crash consistency in software: the programming language
//! grows a `counter_cache_writeback()` primitive, and persistence
//! points explicitly write the relevant counter lines back to NVM. The
//! paper's core criticism is exactly that software visibility —
//! "applications initially running on a system with the un-encrypted
//! NVM cannot directly run on a system with the encrypted one".
//!
//! [`ScaSystem`] models that contract at fence granularity: it wraps
//! the timed [`System`], tracks which pages were flushed since the last
//! fence, and on `sfence` issues the explicit counter writebacks before
//! waiting — one counter write per *page* per fence instead of one per
//! line (the whole point of SCA's efficiency). The wrapper IS the
//! "software modification": running a workload on `ScaSystem` requires
//! threading every program through this adapter, whereas SuperMem runs
//! the unmodified `System`.
//!
//! Fidelity note: real SCA also orders in-flight data writes behind
//! their counters inside the memory controller (its counter write
//! queue); this model persists counters at fences only, which matches
//! the durable-transaction protocol's stage boundaries but leaves the
//! unlogged-atomic-update idiom (Figure 6) torn-able between a `clwb`
//! and its `sfence`. The performance picture — SCA between the ideal WB
//! and SuperMem — is unaffected.

use std::collections::BTreeSet;

use supermem_nvm::addr::PageId;
use supermem_persist::PMem;
use supermem_sim::Stats;

use crate::system::System;

/// A [`System`] with SCA's explicit counter-writeback contract.
#[derive(Debug, Clone)]
pub struct ScaSystem {
    sys: System,
    dirty_pages: BTreeSet<u64>,
    page_bytes: u64,
    /// Counter writebacks issued at fences (diagnostics).
    writebacks: u64,
}

impl ScaSystem {
    /// Wraps a system (configure it with a write-back, unbacked counter
    /// cache — [`crate::Scheme::Sca`] does exactly that).
    pub fn new(sys: System) -> Self {
        let page_bytes = sys.config().page_bytes;
        Self {
            sys,
            dirty_pages: BTreeSet::new(),
            page_bytes,
            writebacks: 0,
        }
    }

    /// The wrapped system.
    pub fn inner(&self) -> &System {
        &self.sys
    }

    /// The wrapped system, mutably (checkpoint, stats reset, crash).
    pub fn inner_mut(&mut self) -> &mut System {
        &mut self.sys
    }

    /// Counter writebacks issued so far via the software primitive.
    pub fn counter_writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Statistics of the wrapped system.
    pub fn stats(&self) -> &Stats {
        self.sys.stats()
    }
}

impl PMem for ScaSystem {
    fn read(&mut self, addr: u64, buf: &mut [u8]) {
        self.sys.read(addr, buf);
    }

    fn write(&mut self, addr: u64, bytes: &[u8]) {
        self.sys.write(addr, bytes);
    }

    fn clwb(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        // Record the pages whose counters the software must persist at
        // the next fence — this bookkeeping is what SCA compiles into
        // the application.
        let first = addr / self.page_bytes;
        let last = (addr + len - 1) / self.page_bytes;
        for p in first..=last {
            self.dirty_pages.insert(p);
        }
        self.sys.clwb(addr, len);
    }

    fn sfence(&mut self) {
        // The counter_cache_writeback() calls the SCA compiler inserts.
        let pages: Vec<u64> = std::mem::take(&mut self.dirty_pages).into_iter().collect();
        for p in pages {
            if self.sys.writeback_page_counters(PageId(p)) {
                self.writebacks += 1;
            }
        }
        self.sys.sfence();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use crate::system::SystemBuilder;
    use supermem_persist::RecoveredMemory;

    fn sca() -> ScaSystem {
        ScaSystem::new(SystemBuilder::new().scheme(Scheme::Sca).build())
    }

    #[test]
    fn fences_persist_counters() {
        let mut m = sca();
        m.write(0x1000, &[7; 128]);
        m.clwb(0x1000, 128);
        m.sfence();
        assert!(m.counter_writebacks() >= 1);
        // A crash after the fence recovers the data: the counters went
        // to NVM with the fence even though the cache is write-back and
        // unbacked.
        let cfg = m.inner().config().clone();
        let mut rec = RecoveredMemory::from_image(&cfg, m.inner().crash_now());
        let mut buf = [0u8; 128];
        rec.read(0x1000, &mut buf);
        assert_eq!(buf, [7; 128]);
    }

    #[test]
    fn without_the_software_calls_counters_are_lost() {
        // The same scheme driven through the plain System (i.e. an
        // unmodified application) is NOT crash consistent — the paper's
        // §2.3 point about SCA requiring software changes.
        let mut sys = SystemBuilder::new().scheme(Scheme::Sca).build();
        sys.write(0x1000, &[7; 128]);
        sys.clwb(0x1000, 128);
        sys.sfence();
        let cfg = sys.config().clone();
        let mut rec = RecoveredMemory::from_image(&cfg, sys.crash_now());
        let mut buf = [0u8; 128];
        rec.read(0x1000, &mut buf);
        assert_ne!(
            buf, [7; 128],
            "unmodified app on SCA hardware loses counters"
        );
    }

    #[test]
    fn one_writeback_per_page_per_fence() {
        let mut m = sca();
        // 16 lines of one page flushed, one fence: exactly one counter
        // writeback — SCA's efficiency edge over write-through.
        for i in 0..16u64 {
            m.write(i * 64, &[1; 64]);
            m.clwb(i * 64, 64);
        }
        m.sfence();
        assert_eq!(m.counter_writebacks(), 1);
        // Clean fence: nothing new to write back.
        m.sfence();
        assert_eq!(m.counter_writebacks(), 1);
    }
}
