//! The evaluated secure-PM configurations (paper §4).
//!
//! Each [`Scheme`] is a named bundle of [`Config`] knobs:
//!
//! | Scheme | Encryption | Counter cache | Placement | CWC |
//! |--------|-----------|---------------|-----------|-----|
//! | `Unsec` | off | — | — | — |
//! | `WriteBackIdeal` | on | write-back, battery | SingleBank | off |
//! | `WriteThrough` | on | write-through | SingleBank | off |
//! | `WtCwc` | on | write-through | SingleBank | on |
//! | `WtXbank` | on | write-through | XBank | off |
//! | `SuperMem` | on | write-through | XBank | on |
//! | `WtSameBank` | on | write-through | SameBank | off |
//!
//! `WriteBackIdeal` is the paper's "ideal secure NVM": a battery-backed
//! write-back counter cache with zero counter-atomicity overhead — the
//! performance ceiling SuperMem is compared against. `WtSameBank`
//! implements Figure 8b for the bank-placement ablation.

use supermem_sim::{Config, CounterCacheBacking, CounterCacheMode, CounterPlacement};

/// A named secure-PM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Un-encrypted NVM (the paper's `Unsec` baseline).
    Unsec,
    /// Ideal battery-backed write-back counter cache (`WB`).
    WriteBackIdeal,
    /// Baseline write-through counter cache (`WT`).
    WriteThrough,
    /// Write-through + counter write coalescing (`WT+CWC`).
    WtCwc,
    /// Write-through + cross-bank counter storage (`WT+XBank`).
    WtXbank,
    /// The full design: write-through + CWC + XBank (`SuperMem`).
    SuperMem,
    /// Ablation: counters co-located with their data bank (Figure 8b).
    WtSameBank,
    /// Osiris baseline (Ye et al., §6 related work): write-back counter
    /// cache without battery, relaxed persistence (every 4th update),
    /// ECC tags, and trial-decryption counter recovery after a crash.
    Osiris,
    /// SCA baseline (Liu et al., §2.3/§6): write-back counter cache
    /// without battery; crash consistency via explicit software
    /// `counter_cache_writeback()` calls (drive it through
    /// [`crate::sca::ScaSystem`]).
    Sca,
}

/// The six schemes of the paper's figures, in plotting order.
pub const FIGURE_SCHEMES: [Scheme; 6] = [
    Scheme::Unsec,
    Scheme::WriteBackIdeal,
    Scheme::WriteThrough,
    Scheme::WtCwc,
    Scheme::WtXbank,
    Scheme::SuperMem,
];

impl Scheme {
    /// The label used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Unsec => "Unsec",
            Scheme::WriteBackIdeal => "WB",
            Scheme::WriteThrough => "WT",
            Scheme::WtCwc => "WT+CWC",
            Scheme::WtXbank => "WT+XBank",
            Scheme::SuperMem => "SuperMem",
            Scheme::WtSameBank => "WT+SameBank",
            Scheme::Osiris => "Osiris",
            Scheme::Sca => "SCA",
        }
    }

    /// Applies the scheme's knobs to a configuration.
    pub fn apply(self, mut cfg: Config) -> Config {
        match self {
            Scheme::Unsec => {
                cfg.encryption = false;
            }
            Scheme::WriteBackIdeal => {
                cfg.encryption = true;
                cfg.counter_cache_mode = CounterCacheMode::WriteBack;
                cfg.counter_cache_backing = CounterCacheBacking::Battery;
                cfg.counter_placement = CounterPlacement::SingleBank;
                cfg.cwc = false;
            }
            Scheme::WriteThrough => {
                cfg.encryption = true;
                cfg.counter_cache_mode = CounterCacheMode::WriteThrough;
                cfg.counter_cache_backing = CounterCacheBacking::None;
                cfg.counter_placement = CounterPlacement::SingleBank;
                cfg.cwc = false;
            }
            Scheme::WtCwc => {
                cfg = Scheme::WriteThrough.apply(cfg);
                cfg.cwc = true;
            }
            Scheme::WtXbank => {
                cfg = Scheme::WriteThrough.apply(cfg);
                cfg.counter_placement = CounterPlacement::CrossBank;
            }
            Scheme::SuperMem => {
                cfg = Scheme::WriteThrough.apply(cfg);
                cfg.cwc = true;
                cfg.counter_placement = CounterPlacement::CrossBank;
            }
            Scheme::WtSameBank => {
                cfg = Scheme::WriteThrough.apply(cfg);
                cfg.counter_placement = CounterPlacement::SameBank;
            }
            Scheme::Osiris => {
                cfg.encryption = true;
                cfg.counter_cache_mode = CounterCacheMode::WriteBack;
                cfg.counter_cache_backing = CounterCacheBacking::None;
                cfg.counter_placement = CounterPlacement::SingleBank;
                cfg.cwc = false;
                cfg.osiris_window = Some(4);
            }
            Scheme::Sca => {
                cfg.encryption = true;
                cfg.counter_cache_mode = CounterCacheMode::WriteBack;
                cfg.counter_cache_backing = CounterCacheBacking::None;
                cfg.counter_placement = CounterPlacement::SingleBank;
                cfg.cwc = false;
            }
        }
        cfg
    }

    /// Whether this scheme guarantees counter atomicity across a crash
    /// (i.e. the Table 1 "recoverable at every stage" property) without
    /// post-crash counter reconstruction.
    pub fn counter_atomic(self) -> bool {
        // Arms stay separate: each scheme is atomic (or not) for a
        // different reason, recorded per-arm.
        #[allow(clippy::match_same_arms)]
        match self {
            Scheme::Unsec => true,          // no counters to lose
            Scheme::WriteBackIdeal => true, // battery persists the cache
            Scheme::WriteThrough
            | Scheme::WtCwc
            | Scheme::WtXbank
            | Scheme::SuperMem
            | Scheme::WtSameBank => true, // write-through + atomic register
            Scheme::Osiris => false,        // recoverable, but only via ECC search
            Scheme::Sca => false,           // atomic only at software-inserted points
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsec_disables_encryption() {
        let cfg = Scheme::Unsec.apply(Config::default());
        assert!(!cfg.encryption);
    }

    #[test]
    fn supermem_enables_everything() {
        let cfg = Scheme::SuperMem.apply(Config::default());
        assert!(cfg.encryption);
        assert!(cfg.cwc);
        assert_eq!(cfg.counter_cache_mode, CounterCacheMode::WriteThrough);
        assert_eq!(cfg.counter_placement, CounterPlacement::CrossBank);
        assert!(cfg.atomic_pair_append);
    }

    #[test]
    fn wb_is_battery_backed_write_back() {
        let cfg = Scheme::WriteBackIdeal.apply(Config::default());
        assert_eq!(cfg.counter_cache_mode, CounterCacheMode::WriteBack);
        assert_eq!(cfg.counter_cache_backing, CounterCacheBacking::Battery);
    }

    #[test]
    fn wt_variants_differ_only_in_their_feature() {
        let wt = Scheme::WriteThrough.apply(Config::default());
        let cwc = Scheme::WtCwc.apply(Config::default());
        let xbank = Scheme::WtXbank.apply(Config::default());
        assert!(!wt.cwc && cwc.cwc);
        assert_eq!(wt.counter_placement, CounterPlacement::SingleBank);
        assert_eq!(xbank.counter_placement, CounterPlacement::CrossBank);
        assert!(!xbank.cwc);
    }

    #[test]
    fn samebank_ablation() {
        let cfg = Scheme::WtSameBank.apply(Config::default());
        assert_eq!(cfg.counter_placement, CounterPlacement::SameBank);
    }

    #[test]
    fn names_are_paper_labels() {
        let names: Vec<&str> = FIGURE_SCHEMES.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["Unsec", "WB", "WT", "WT+CWC", "WT+XBank", "SuperMem"]
        );
    }

    #[test]
    fn all_figure_schemes_validate() {
        for s in FIGURE_SCHEMES {
            assert!(s.apply(Config::default()).validate().is_ok(), "{s}");
        }
    }

    #[test]
    fn all_schemes_counter_atomic() {
        for s in FIGURE_SCHEMES {
            assert!(s.counter_atomic());
        }
    }

    #[test]
    fn osiris_relaxes_counter_persistence() {
        let cfg = Scheme::Osiris.apply(Config::default());
        assert_eq!(cfg.counter_cache_mode, CounterCacheMode::WriteBack);
        assert_eq!(cfg.counter_cache_backing, CounterCacheBacking::None);
        assert_eq!(cfg.osiris_window, Some(4));
        assert!(!Scheme::Osiris.counter_atomic());
        assert!(cfg.validate().is_ok());
    }
}
