//! Checked runs: drive an experiment with the persistency-ordering
//! [`Checker`] attached and report every crash-consistency invariant
//! violation found in the probe stream.
//!
//! The checker (from `supermem-check`, re-exported here) is a pure
//! observer: a checked run's simulated timing and results are identical
//! to an unchecked run's. [`check_run`] validates a [`RunConfig`] and
//! checks its measured window; [`run_mutant`] drives a fixed stress
//! workload with an optional fault injection ([`Mutation`]) so tests can
//! prove each rule actually fires on the behavior it guards against.
//!
//! This layer validates the event *ordering* of one execution. Its
//! siblings attack the other axes: `supermem torture` crashes the
//! *media* one operation at a time, and `supermem-lincheck`
//! exhaustively explores *interleavings* of the serving protocols with
//! a crash after every persist, checking each recovered state for
//! durable linearizability (`DESIGN.md` §16).
//!
//! # Examples
//!
//! ```
//! use supermem::verify::{check_run, run_mutant};
//! use supermem::{RunConfig, Scheme};
//! use supermem::workloads::WorkloadKind;
//! use supermem_sim::Mutation;
//!
//! // A correct run is clean ...
//! let rc = RunConfig::new(Scheme::SuperMem, WorkloadKind::Array)
//!     .with_txns(10)
//!     .with_req_bytes(256)
//!     .with_array_footprint(256 << 10);
//! assert!(check_run(&rc).unwrap().is_clean());
//!
//! // ... and a controller that drops counter write-through is caught.
//! let report = run_mutant(Some(Mutation::WtOff));
//! assert!(!report.is_clean());
//! ```

use supermem_sim::{Config, Mutation};

pub use supermem_check::{CheckReport, Checker, CheckerMode, Rule, Violation};

use crate::experiment::{ConfigError, Experiment};
use crate::runner::RunConfig;
use crate::scheme::Scheme;
use crate::system::System;

/// Retrieves the checker from a finished experiment session and drains
/// its report.
fn report_from(exp: &mut Experiment) -> CheckReport {
    for mut obs in exp.take_observers() {
        if let Some(c) = obs.as_any_mut().downcast_mut::<Checker>() {
            return c.take_report();
        }
    }
    unreachable!("the attached Checker must come back from the run")
}

/// Runs `rc` (single- or multi-core per `rc.programs`) with the
/// persistency-ordering checker attached to the measured window, and
/// returns the invariant report.
pub fn check_run(rc: &RunConfig) -> Result<CheckReport, ConfigError> {
    let mode = CheckerMode::from_config(&rc.machine_config());
    let mut exp = Experiment::new(rc.clone())?.observe_with(Box::new(Checker::new(mode)));
    exp.run();
    Ok(report_from(&mut exp))
}

/// Like [`check_run`], but replays recorded per-program traces with
/// event-granularity interleaving (the `fig14t`/`tracebench` pipeline).
pub fn check_run_trace(rc: &RunConfig) -> Result<CheckReport, ConfigError> {
    let mode = CheckerMode::from_config(&rc.machine_config());
    let mut exp = Experiment::new(rc.clone())?.observe_with(Box::new(Checker::new(mode)));
    exp.run_multicore_trace();
    Ok(report_from(&mut exp))
}

/// The machine configuration [`run_mutant`] drives: the full SuperMem
/// scheme with an optional fault injection. Tree mutants additionally
/// arm the streaming integrity tree — the subsystem they corrupt.
pub fn mutant_config(mutation: Option<Mutation>) -> Config {
    let mut cfg = Scheme::SuperMem.apply(Config::default());
    if matches!(
        mutation,
        Some(Mutation::TreeSkip | Mutation::TreeLate | Mutation::TreeDoubleRoot)
    ) {
        cfg.integrity_tree = true;
        cfg.persisted_levels = Some(1);
    }
    cfg.mutation = mutation;
    cfg
}

/// Drives a fixed two-phase stress pattern through a [`System`] with the
/// checker attached, injecting `mutation` into the controller (or
/// nothing, for the clean-run control).
///
/// Phase A rotates flushes over every line of one page with frequent
/// fences — exercising the staged data+counter pairs (P2), counter
/// write coalescing (P3), and fence-time counter coverage (P1). Phase B
/// hammers a single line past the 7-bit minor-counter limit to force a
/// page re-encryption — exercising the RSR protocol (R1–R6).
pub fn run_mutant(mutation: Option<Mutation>) -> CheckReport {
    run_mutant_sharded(mutation, 1)
}

/// [`run_mutant`] with the machine sharded over `channels` interleaved
/// channels. The stress pattern's page-0 working set maps to channel 0,
/// so the injected bug runs through one sharded controller while the
/// checker's per-channel shadow state watches every channel — proving
/// the mutation harness keeps its teeth at any interleaving width.
pub fn run_mutant_sharded(mutation: Option<Mutation>, channels: usize) -> CheckReport {
    use supermem_persist::PMem;

    let mut cfg = mutant_config(mutation);
    cfg.channels = channels;
    let checker = Checker::new(CheckerMode::from_config(&cfg));
    let mut sys = System::new(cfg);
    sys.attach_observer(Box::new(checker));

    let line = 64u64;
    let payload = [0xA5u8; 64];

    // Phase A: every line of page 0, several rounds, fence every 4th flush.
    for i in 0..192u64 {
        let addr = (i % 64) * line;
        sys.write(addr, &payload);
        sys.clwb(addr, line);
        if i % 4 == 3 {
            sys.sfence();
        }
    }
    sys.sfence();

    // Phase B: one line past the minor-counter limit → re-encryption.
    for i in 0..140u64 {
        sys.write(0, &[i as u8; 64]);
        sys.clwb(0, line);
        if i % 8 == 7 {
            sys.sfence();
        }
    }
    sys.sfence();
    sys.checkpoint();

    for mut obs in sys.take_observers() {
        if let Some(c) = obs.as_any_mut().downcast_mut::<Checker>() {
            return c.take_report();
        }
    }
    unreachable!("the attached Checker must come back from the run")
}

#[cfg(test)]
mod tests {
    use super::*;
    use supermem_workloads::WorkloadKind;

    fn quick(scheme: Scheme, kind: WorkloadKind) -> RunConfig {
        RunConfig::new(scheme, kind)
            .with_txns(30)
            .with_req_bytes(256)
            .with_array_footprint(256 << 10)
    }

    #[test]
    fn figure_schemes_check_clean_on_array() {
        for scheme in crate::scheme::FIGURE_SCHEMES {
            let report = check_run(&quick(scheme, WorkloadKind::Array)).unwrap();
            assert!(report.is_clean(), "{scheme}: {report}");
            assert!(
                report.events_seen > 0,
                "{scheme}: no events reached checker"
            );
        }
    }

    #[test]
    fn multicore_and_trace_runs_check_clean() {
        let rc = quick(Scheme::SuperMem, WorkloadKind::Queue)
            .with_txns(10)
            .with_programs(4);
        let report = check_run(&rc).unwrap();
        assert!(report.is_clean(), "{report}");
        let report = check_run_trace(&rc).unwrap();
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn clean_mutant_harness_run_reports_nothing() {
        let report = run_mutant(None);
        assert!(report.is_clean(), "{report}");
        assert!(report.events_seen > 0);
    }

    #[test]
    fn every_mutation_still_trips_on_a_sharded_machine() {
        // The acceptance bar for the multi-channel refactor: sharding
        // must not blunt the mutation harness. A clean sharded control
        // run pins the other direction (no false positives).
        let report = run_mutant_sharded(None, 4);
        assert!(report.is_clean(), "clean @4ch: {report}");
        for m in Mutation::ALL {
            let report = run_mutant_sharded(Some(m), 4);
            assert!(!report.is_clean(), "{} undetected at 4 channels", m.name());
        }
    }

    #[test]
    fn checked_run_does_not_perturb_results() {
        let rc = quick(Scheme::SuperMem, WorkloadKind::Queue);
        let plain = crate::runner::run_single(&rc);
        let mut exp = Experiment::new(rc.clone())
            .unwrap()
            .observe_with(Box::new(Checker::new(CheckerMode::from_config(
                &rc.machine_config(),
            ))));
        let checked = exp.run();
        assert_eq!(plain.total_cycles, checked.total_cycles);
        assert_eq!(plain.stats.nvm_data_writes, checked.stats.nvm_data_writes);
    }
}
