//! Experiment sessions: validated configuration, pluggable observers,
//! and the run drivers behind them.
//!
//! [`Experiment`] is the front door for running workloads. It validates a
//! [`RunConfig`] up front (returning [`ConfigError`] instead of panicking
//! mid-run), optionally attaches probe-layer collectors, and exposes the
//! same drivers the free functions in [`crate::runner`] forward to:
//! [`Experiment::run`], [`Experiment::run_multicore`],
//! [`Experiment::run_multicore_trace`], and [`Experiment::replay`].
//!
//! # Examples
//!
//! ```
//! use supermem::{Experiment, RunConfig, Scheme};
//! use supermem::workloads::WorkloadKind;
//!
//! let rc = RunConfig::new(Scheme::SuperMem, WorkloadKind::Array)
//!     .with_txns(10)
//!     .with_req_bytes(256)
//!     .with_array_footprint(256 << 10);
//! let result = Experiment::new(rc).unwrap().observe().run();
//! let telemetry = result.telemetry.as_ref().unwrap();
//! assert_eq!(telemetry.txn_latency.count(), result.stats.txn_commits);
//! ```

use std::fmt;

use supermem_persist::{PMem, VecMem};
use supermem_sim::{Cycle, Observer, Telemetry};
use supermem_trace::{TraceEvent, TraceRecorder};
use supermem_workloads::SpecError;

use crate::metrics::RunResult;
use crate::runner::RunConfig;
use crate::system::System;

/// Why a [`RunConfig`] was rejected by [`RunConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `programs` is zero or exceeds the configured core count.
    Programs {
        /// The requested program count.
        programs: usize,
        /// The machine's core count.
        cores: usize,
    },
    /// `hash_buckets` is not a power of two.
    HashBuckets(u64),
    /// `ycsb_read_pct` exceeds 100.
    ReadPct(u8),
    /// The derived machine [`supermem_sim::Config`] is invalid.
    Machine(supermem_sim::ConfigError),
    /// The derived [`supermem_workloads::WorkloadSpec`] is invalid.
    Spec(SpecError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Programs { programs, cores } => {
                write!(f, "programs must be in 1..={cores}, got {programs}")
            }
            ConfigError::HashBuckets(n) => {
                write!(f, "hash_buckets must be a power of two, got {n}")
            }
            ConfigError::ReadPct(p) => {
                write!(f, "ycsb_read_pct must be in 0..=100, got {p}")
            }
            ConfigError::Machine(err) => write!(f, "invalid machine configuration: {err}"),
            ConfigError::Spec(err) => write!(f, "invalid workload spec: {err}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Machine(err) => Some(err),
            ConfigError::Spec(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SpecError> for ConfigError {
    fn from(err: SpecError) -> Self {
        ConfigError::Spec(err)
    }
}

/// One validated, instrumentable experiment session.
///
/// Construction validates the configuration; `observe`/`observe_with`
/// attach collectors; the `run*` methods execute. A session can run
/// multiple times (e.g. replaying one trace under several schemes by
/// rebuilding sessions) — each run attaches the session's observers for
/// the measured window only, so verification traffic is never counted.
#[derive(Debug)]
pub struct Experiment {
    rc: RunConfig,
    telemetry: bool,
    observers: Vec<Box<dyn Observer>>,
}

impl Experiment {
    /// Creates a session from `rc`, validating it first.
    pub fn new(rc: RunConfig) -> Result<Self, ConfigError> {
        rc.validate()?;
        Ok(Self {
            rc,
            telemetry: false,
            observers: Vec::new(),
        })
    }

    /// The session's configuration.
    pub fn config(&self) -> &RunConfig {
        &self.rc
    }

    /// Enables the standard [`Telemetry`] collector; the result's
    /// [`RunResult::telemetry`] field will be populated.
    pub fn observe(mut self) -> Self {
        self.telemetry = true;
        self
    }

    /// Attaches a custom observer for the next run; retrieve it
    /// afterwards with [`Experiment::take_observers`].
    pub fn observe_with(mut self, obs: Box<dyn Observer>) -> Self {
        self.observers.push(obs);
        self
    }

    /// Detaches and returns the custom observers collected back from the
    /// last run.
    pub fn take_observers(&mut self) -> Vec<Box<dyn Observer>> {
        std::mem::take(&mut self.observers)
    }

    /// Runs the experiment: [`Experiment::run_single`] when `programs`
    /// is 1, [`Experiment::run_multicore`] otherwise.
    pub fn run(&mut self) -> RunResult {
        if self.rc.programs > 1 {
            self.run_multicore()
        } else {
            self.run_single()
        }
    }

    /// Attaches the session's observers to `sys` (start of the measured
    /// window).
    fn arm(&mut self, sys: &mut System) {
        if self.telemetry {
            sys.attach_observer(Box::new(Telemetry::default()));
        }
        for obs in self.observers.drain(..) {
            sys.attach_observer(obs);
        }
    }

    /// Detaches observers from `sys` (end of the measured window),
    /// extracting the standard telemetry and keeping custom observers
    /// for [`Experiment::take_observers`].
    fn collect(&mut self, sys: &mut System) -> Option<Telemetry> {
        let mut telemetry = None;
        for mut obs in sys.take_observers() {
            match obs.as_any_mut().downcast_mut::<Telemetry>() {
                Some(t) => telemetry = Some(std::mem::take(t)),
                None => self.observers.push(obs),
            }
        }
        telemetry
    }

    /// Runs one workload on core 0.
    ///
    /// # Panics
    ///
    /// Panics if a transaction fails to commit or the final verification
    /// finds a divergence — either indicates a simulator bug, not a
    /// recoverable condition.
    pub fn run_single(&mut self) -> RunResult {
        let rc = self.rc.clone();
        let mut sys = System::new(rc.build_config());
        let spec = rc.spec_for(0);
        let mut w = spec.build(&mut sys).expect("validated spec must build");
        sys.checkpoint();
        sys.reset_stats();
        self.arm(&mut sys);
        let measure_start = sys.now();
        for _ in 0..rc.txns {
            let start = sys.now();
            w.step(&mut sys).expect("transaction commit failed");
            let end = sys.now();
            sys.record_txn(start, end);
        }
        sys.checkpoint(); // complete the write counts
        let measured_end = sys.now();
        let stats = sys.stats().clone();
        let telemetry = self.collect(&mut sys);
        let wear = sys.controller().wear_report();
        // Verify *after* snapshotting: the full-structure scan would
        // otherwise swamp the measured phase's cache statistics.
        w.verify(&mut sys).expect("workload verification failed");
        RunResult {
            scheme: rc.scheme,
            workload: spec.kind.name().to_owned(),
            req_bytes: rc.req_bytes,
            programs: 1,
            txns: rc.txns,
            stats,
            total_cycles: measured_end - measure_start,
            wear,
            telemetry,
        }
    }

    /// Runs `programs` copies of the workload on separate cores,
    /// interleaving cores in simulated-time order (the core with the
    /// smallest clock executes its next transaction).
    ///
    /// # Panics
    ///
    /// Panics if a transaction fails or verification finds a divergence.
    pub fn run_multicore(&mut self) -> RunResult {
        let rc = self.rc.clone();
        let mut sys = System::new(rc.build_config());
        let mut workloads = Vec::with_capacity(rc.programs);
        for p in 0..rc.programs {
            sys.set_active_core(p);
            workloads.push(
                rc.spec_for(p)
                    .build(&mut sys)
                    .expect("validated spec must build"),
            );
        }
        sys.set_active_core(0);
        sys.checkpoint();
        sys.reset_stats();
        self.arm(&mut sys);
        let measure_start = sys.max_now();

        // Simulated-time-ordered interleaving: the core with the smallest
        // clock executes its next transaction.
        let mut remaining: Vec<u64> = vec![rc.txns; rc.programs];
        while remaining.iter().any(|&r| r > 0) {
            let core = (0..rc.programs)
                .filter(|&p| remaining[p] > 0)
                .min_by_key(|&p| sys.core_now(p))
                .expect("some program has work left");
            sys.set_active_core(core);
            let start = sys.now();
            workloads[core]
                .step(&mut sys)
                .expect("transaction commit failed");
            let end = sys.now();
            sys.record_txn(start, end);
            remaining[core] -= 1;
        }
        sys.checkpoint();
        let measured_end = sys.max_now();
        let stats = sys.stats().clone();
        let telemetry = self.collect(&mut sys);
        let wear = sys.controller().wear_report();
        for (p, w) in workloads.iter_mut().enumerate() {
            sys.set_active_core(p);
            w.verify(&mut sys).expect("workload verification failed");
        }
        RunResult {
            scheme: rc.scheme,
            workload: rc.kind.name().to_owned(),
            req_bytes: rc.req_bytes,
            programs: rc.programs,
            txns: rc.txns * rc.programs as u64,
            stats,
            total_cycles: measured_end - measure_start,
            wear,
            telemetry,
        }
    }

    /// Records the memory-operation trace of this session's workload
    /// against a functional memory (program 0, verification included) —
    /// the capture half of trace-driven simulation.
    ///
    /// # Panics
    ///
    /// Panics if a transaction fails to commit.
    pub fn record_trace(&self) -> Vec<TraceEvent> {
        record_program_trace(&self.rc, 0, true)
    }

    /// Replays a recorded trace through a timed system configured by this
    /// session (the replay half of trace-driven simulation): identical
    /// memory behavior, different machine. Per-transaction latencies come
    /// from the trace's markers.
    pub fn replay(&mut self, trace: &[TraceEvent]) -> RunResult {
        let rc = self.rc.clone();
        let mut sys = System::new(rc.build_config());
        self.arm(&mut sys);
        let measure_start = sys.now();
        let mut txn_start = None;
        let mut scratch = Vec::new();
        for event in trace {
            apply_event(&mut sys, event, &mut scratch, &mut txn_start);
        }
        sys.checkpoint();
        let measured_end = sys.now();
        let telemetry = self.collect(&mut sys);
        let wear = sys.controller().wear_report();
        RunResult {
            scheme: rc.scheme,
            workload: format!("{}(trace)", rc.kind.name()),
            req_bytes: rc.req_bytes,
            programs: 1,
            txns: rc.txns,
            stats: sys.stats().clone(),
            total_cycles: measured_end - measure_start,
            wear,
            telemetry,
        }
    }

    /// Multi-core run with *event-granularity* interleaving: per-program
    /// traces are recorded up front, then replayed concurrently — at
    /// every step the core with the smallest clock executes its next
    /// memory operation. This models bank/queue contention at the same
    /// granularity as a cycle-driven simulator, unlike
    /// [`Experiment::run_multicore`]'s transaction-granularity
    /// scheduling, at the cost of trace memory.
    ///
    /// # Panics
    ///
    /// Panics if trace recording fails.
    pub fn run_multicore_trace(&mut self) -> RunResult {
        let rc = self.rc.clone();
        // Record each program's trace against a private functional memory.
        let traces: Vec<Vec<TraceEvent>> = (0..rc.programs)
            .map(|p| record_program_trace(&rc, p, false))
            .collect();

        let mut sys = System::new(rc.build_config());
        self.arm(&mut sys);
        let measure_start = 0;
        let mut cursors = vec![0usize; rc.programs];
        let mut txn_starts: Vec<Option<Cycle>> = vec![None; rc.programs];
        let mut scratch = Vec::new();
        // The core with the smallest clock and remaining work goes next.
        while let Some(core) = (0..rc.programs)
            .filter(|&p| cursors[p] < traces[p].len())
            .min_by_key(|&p| sys.core_now(p))
        {
            sys.set_active_core(core);
            let event = &traces[core][cursors[core]];
            cursors[core] += 1;
            apply_event(&mut sys, event, &mut scratch, &mut txn_starts[core]);
        }
        sys.checkpoint();
        let measured_end = sys.max_now();
        let telemetry = self.collect(&mut sys);
        let wear = sys.controller().wear_report();
        RunResult {
            scheme: rc.scheme,
            workload: format!("{}(trace)", rc.kind.name()),
            req_bytes: rc.req_bytes,
            programs: rc.programs,
            txns: rc.txns * rc.programs as u64,
            stats: sys.stats().clone(),
            total_cycles: measured_end - measure_start,
            wear,
            telemetry,
        }
    }
}

/// Applies one [`TraceEvent`] to `sys` — the single dispatch shared by
/// [`Experiment::replay`] and [`Experiment::run_multicore_trace`].
/// `txn_start` carries the open transaction's begin cycle between the
/// `TxnBegin` and `TxnEnd` markers.
pub(crate) fn apply_event(
    sys: &mut System,
    event: &TraceEvent,
    scratch: &mut Vec<u8>,
    txn_start: &mut Option<Cycle>,
) {
    match event {
        TraceEvent::Read { addr, len } => {
            scratch.resize(*len as usize, 0);
            sys.read(*addr, scratch);
        }
        TraceEvent::Write { addr, bytes } => sys.write(*addr, bytes),
        TraceEvent::Clwb { addr, len } => sys.clwb(*addr, *len),
        TraceEvent::Sfence => sys.sfence(),
        TraceEvent::TxnBegin => *txn_start = Some(sys.now()),
        TraceEvent::TxnEnd => {
            if let Some(start) = txn_start.take() {
                let end = sys.now();
                sys.record_txn(start, end);
            }
        }
    }
}

/// Records one program's workload trace against a functional memory,
/// optionally appending the verification pass — the single recording
/// loop shared by [`Experiment::record_trace`] (verification included,
/// so replays exercise the read path) and
/// [`Experiment::run_multicore_trace`] (transactions only).
///
/// # Panics
///
/// Panics if a transaction fails to commit or verification diverges.
pub(crate) fn record_program_trace(
    rc: &RunConfig,
    program: usize,
    verify: bool,
) -> Vec<TraceEvent> {
    let mut mem = VecMem::new();
    let mut recorder = TraceRecorder::new(&mut mem);
    let mut w = rc
        .spec_for(program)
        .build(&mut recorder)
        .expect("validated spec must build");
    for _ in 0..rc.txns {
        recorder.txn_begin();
        w.step(&mut recorder).expect("transaction commit failed");
        recorder.txn_end();
    }
    if verify {
        w.verify(&mut recorder)
            .expect("workload verification failed");
    }
    recorder.into_trace()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use supermem_workloads::WorkloadKind;

    fn quick() -> RunConfig {
        RunConfig::new(Scheme::SuperMem, WorkloadKind::Array)
            .with_txns(20)
            .with_req_bytes(256)
            .with_array_footprint(256 << 10)
    }

    #[test]
    fn new_rejects_bad_programs() {
        let rc = quick().with_programs(99);
        let err = Experiment::new(rc).unwrap_err();
        assert!(matches!(err, ConfigError::Programs { programs: 99, .. }));
        assert!(err.to_string().contains("programs must be in"));
    }

    #[test]
    fn new_rejects_non_pow2_hash_buckets() {
        let rc = quick().with_hash_buckets(100);
        assert_eq!(
            Experiment::new(rc).unwrap_err(),
            ConfigError::HashBuckets(100)
        );
    }

    #[test]
    fn new_rejects_bad_read_pct() {
        let rc = quick().with_ycsb_read_pct(101);
        assert_eq!(Experiment::new(rc).unwrap_err(), ConfigError::ReadPct(101));
    }

    #[test]
    fn new_rejects_invalid_machine_config() {
        let rc = quick().with_write_queue_entries(1);
        assert!(matches!(
            Experiment::new(rc).unwrap_err(),
            ConfigError::Machine(_)
        ));
    }

    #[test]
    fn observed_run_populates_telemetry() {
        let mut exp = Experiment::new(quick()).unwrap().observe();
        let r = exp.run();
        let t = r.telemetry.expect("telemetry requested");
        assert_eq!(t.txn_latency.count(), r.stats.txn_commits);
        assert!(t.breakdown.flushes > 0);
    }

    #[test]
    fn unobserved_run_has_no_telemetry() {
        let r = Experiment::new(quick()).unwrap().run();
        assert!(r.telemetry.is_none());
    }

    #[test]
    fn run_dispatches_to_multicore() {
        let mut exp = Experiment::new(quick().with_programs(2).with_txns(5))
            .unwrap()
            .observe();
        let r = exp.run();
        assert_eq!(r.programs, 2);
        assert_eq!(r.stats.txn_commits, 10);
        assert_eq!(
            r.telemetry.unwrap().txn_latency.count(),
            r.stats.txn_commits
        );
    }

    #[test]
    fn replay_carries_telemetry() {
        let rc = quick();
        let trace = Experiment::new(rc.clone()).unwrap().record_trace();
        let mut exp = Experiment::new(rc).unwrap().observe();
        let r = exp.replay(&trace);
        assert_eq!(r.telemetry.unwrap().txn_latency.count(), 20);
    }
}
