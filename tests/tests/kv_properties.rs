//! Property-based integration tests for the recoverable KV store: the
//! R1–R6 recovery invariants must hold over seeded random operation
//! streams, on clean images and on images whose WAL tail was cut at
//! (and inside) every record boundary.
//!
//! Deterministic randomized testing: a seeded SplitMix64 generates the
//! workload shapes (stands in for proptest, which is unavailable in
//! offline builds). Every case is reproducible from the fixed seeds.

use supermem_kv::invariants::{
    r1_deterministic, r2_idempotent, r3_prefix_consistent, r4_no_invented_data, r5_no_silent_drop,
    r6_bounded_skip,
};
use supermem_kv::wal::record_len;
use supermem_kv::{
    op_stream, recover, KvLayout, KvOp, KvStore, Legality, RecoveryOptions, ShadowOracle,
};
use supermem_persist::{PMem, VecMem};
use supermem_sim::SplitMix64;

const BASE: u64 = 0x4000;

/// Drives `ops` into a freshly formatted store, recording each ack in
/// the oracle with a synthetic append count of `index + 1` (one append
/// per op — exact append accounting is the torture campaign's job; the
/// properties here only need a consistent frontier).
fn build_image(
    layout: KvLayout,
    snapshot_every: u64,
    ops: &[KvOp],
) -> (VecMem, KvStore, ShadowOracle) {
    let mut mem = VecMem::new();
    let mut kv = KvStore::format(&mut mem, layout, snapshot_every).expect("format");
    let mut oracle = ShadowOracle::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            KvOp::Put(k, v) => kv.put(&mut mem, k, v).expect("put"),
            KvOp::Del(k) => kv.delete(&mut mem, k).expect("delete"),
        }
        oracle.record(op.clone(), (i + 1) as u64);
    }
    (mem, kv, oracle)
}

#[test]
fn clean_images_satisfy_all_invariants_across_seeds() {
    let mut rng = SplitMix64::new(0x4B56_5052); // "KVPR"
    for seed in 1..=12u64 {
        let n = rng.next_range(8, 40);
        let keyspace = rng.next_range(2, 12);
        let max_val = rng.next_range(1, 32) as usize;
        let snapshot_every = rng.next_range(2, 9);
        let layout = KvLayout::new(BASE, 1 << 12, 1 << 11).expect("layout");
        let ops = op_stream(seed, n, keyspace, max_val);
        let (mut mem, kv, oracle) = build_image(layout, snapshot_every, &ops);
        assert_eq!(kv.stats().acked, n, "seed {seed}: every op acks");

        let opts = RecoveryOptions {
            paranoid: true,
            ..RecoveryOptions::default()
        };
        r1_deterministic(&mut mem, layout, &opts).expect("R1");
        r2_idempotent(&mut mem, layout, &opts).expect("R2");
        let rec = recover(&mut mem, layout, &opts).expect("clean image recovers");
        assert!(
            !rec.result.damaged(),
            "seed {seed}: clean image reports damage: {:?}",
            rec.result
        );
        let verdict = r3_prefix_consistent(&oracle, u64::MAX, rec.store.entries()).expect("R3");
        assert_eq!(verdict, Legality::Committed, "seed {seed}");
        r4_no_invented_data(&oracle, rec.store.entries()).expect("R4");
        r5_no_silent_drop(&oracle, u64::MAX, rec.store.entries(), &rec.result).expect("R5");
        r6_bounded_skip(&rec.result, &opts).expect("R6");
    }
}

#[test]
fn truncation_at_every_record_boundary_recovers_exactly_that_prefix() {
    // No checkpoints (huge interval, roomy WAL): the body holds one
    // record per op, so zeroing the tail after record k must recover to
    // exactly the first k operations — R3 with the crash point at k.
    let layout = KvLayout::new(BASE, 1 << 12, 1 << 11).expect("layout");
    let ops = op_stream(11, 24, 8, 24);
    let (mem, _, oracle) = build_image(layout, 1 << 30, &ops);
    let opts = RecoveryOptions::default();

    let mut boundary = 0u64;
    let mut boundaries = vec![0u64];
    for op in &ops {
        boundary += record_len(op);
        boundaries.push(boundary);
    }

    for (k, &cut) in boundaries.iter().enumerate() {
        let mut img = mem.clone();
        let zeros = vec![0u8; (layout.wal_body - cut) as usize];
        img.write(layout.wal_body_addr() + cut, &zeros);

        r1_deterministic(&mut img, layout, &opts).expect("R1");
        let rec = recover(&mut img, layout, &opts).expect("truncated image recovers");
        assert!(!rec.result.damaged(), "cut at {k}: zeroed tail is clean");
        assert_eq!(rec.result.records_replayed, k as u64, "cut at {k}");
        assert_eq!(
            rec.store.entries(),
            &oracle.state_after(k),
            "cut at record boundary {k}"
        );
        let verdict = r3_prefix_consistent(&oracle, k as u64, rec.store.entries()).expect("R3");
        let want = if k == ops.len() {
            Legality::Committed
        } else {
            Legality::LostUnackedTail
        };
        assert_eq!(verdict, want, "cut at {k}");
        r4_no_invented_data(&oracle, rec.store.entries()).expect("R4");
        r5_no_silent_drop(&oracle, k as u64, rec.store.entries(), &rec.result).expect("R5");
    }
}

#[test]
fn truncation_inside_a_record_is_a_torn_tail_not_damage() {
    // Zeroing from *inside* record k leaves a mangled record at its
    // boundary: recovery must truncate there (torn tail — the expected
    // shape of an in-flight append) and still produce exactly the first
    // k operations.
    let layout = KvLayout::new(BASE, 1 << 12, 1 << 11).expect("layout");
    let ops = op_stream(12, 16, 6, 24);
    let (mem, _, oracle) = build_image(layout, 1 << 30, &ops);
    let opts = RecoveryOptions::default();

    let mut rng = SplitMix64::new(0x544F_524E); // "TORN"
    let mut boundary = 0u64;
    for (k, op) in ops.iter().enumerate() {
        let len = record_len(op);
        // Never cut at offset 0 of the record (that is the boundary
        // case above); cut somewhere strictly inside it.
        let cut = boundary + 1 + rng.next_below(len - 1);
        let mut img = mem.clone();
        let zeros = vec![0u8; (layout.wal_body - cut) as usize];
        img.write(layout.wal_body_addr() + cut, &zeros);

        let rec = recover(&mut img, layout, &opts).expect("torn image recovers");
        assert!(
            !rec.result.damaged(),
            "cut inside record {k}: a torn tail alone is not damage"
        );
        // Normally the mangled record k is truncated (state_after(k));
        // when the zeroed suffix happened to already be zero (e.g. a
        // CRC whose trailing byte is 0x00) the record survives intact
        // and op k is legitimately included.
        let got = rec.store.entries();
        assert!(
            got == &oracle.state_after(k) || got == &oracle.state_after(k + 1),
            "cut inside record {k} at body offset {cut}: not a legal prefix"
        );
        r5_no_silent_drop(&oracle, k as u64, rec.store.entries(), &rec.result).expect("R5");
        boundary += len;
    }
}

#[test]
fn resumed_store_after_truncation_serves_and_survives_another_recovery() {
    // Recovery's resume_offset must land appends *over* the truncated
    // tail: write more ops through the recovered store, recover again,
    // and the combined history must be intact.
    let layout = KvLayout::new(BASE, 1 << 12, 1 << 11).expect("layout");
    let ops = op_stream(13, 12, 6, 16);
    let (mem, _, _) = build_image(layout, 1 << 30, &ops);

    let cut: u64 = ops[..8].iter().map(record_len).sum();
    let mut img = mem.clone();
    let zeros = vec![0u8; (layout.wal_body - cut) as usize];
    img.write(layout.wal_body_addr() + cut, &zeros);

    let opts = RecoveryOptions {
        snapshot_every: 4,
        ..RecoveryOptions::default()
    };
    let mut rec = recover(&mut img, layout, &opts).expect("first recovery");
    assert_eq!(rec.result.resume_offset, cut);
    let mut oracle = ShadowOracle::new();
    for (i, op) in ops[..8].iter().enumerate() {
        oracle.record(op.clone(), (i + 1) as u64);
    }
    for (i, op) in op_stream(14, 10, 6, 16).into_iter().enumerate() {
        match &op {
            KvOp::Put(k, v) => rec.store.put(&mut img, k, v).expect("put after recovery"),
            KvOp::Del(k) => rec
                .store
                .delete(&mut img, k)
                .expect("delete after recovery"),
        }
        oracle.record(op, (9 + i) as u64);
    }
    let again = recover(&mut img, layout, &RecoveryOptions::default()).expect("second recovery");
    assert!(!again.result.damaged());
    assert_eq!(again.store.entries(), &oracle.state_after(oracle.len()));
    assert_eq!(
        r3_prefix_consistent(&oracle, u64::MAX, again.store.entries()).expect("R3"),
        Legality::Committed
    );
}
