//! Serving-engine integration: open-loop determinism across thread
//! counts and channel widths, persistency-ordering cleanliness of the
//! shared-structure protocols, and the CAS-window torture campaign,
//! exercised across crate boundaries the way `supermem serve` wires
//! them.

use supermem::nvm::FaultClass;
use supermem::torture::Classification;
use supermem::Scheme;
use supermem_check::Checker;
use supermem_serve::{
    run_serve, run_serve_observed, run_serve_torture, ServeConfig, ServeTortureConfig,
    StructureKind,
};

fn quick(structure: StructureKind) -> ServeConfig {
    ServeConfig {
        structure,
        cores: 4,
        requests: 48,
        mean_gap: 150,
        region_len: 1 << 18,
        ..ServeConfig::default()
    }
}

#[test]
fn open_loop_runs_are_deterministic_at_any_thread_count() {
    for structure in StructureKind::ALL {
        let cfg = quick(structure);
        let a = run_serve(&cfg).unwrap();
        let b = run_serve(&cfg).unwrap();
        assert_eq!(a.digest, b.digest, "{structure}: same seed, same op stream");
        assert_eq!(
            (a.p50, a.p99, a.p999, a.max),
            (b.p50, b.p99, b.p999, b.max),
            "{structure}: same seed, same tail table"
        );

        for threads in [2, 4] {
            let mut cfg = quick(structure);
            cfg.run_threads = threads;
            let t = run_serve(&cfg).unwrap();
            assert_eq!(
                a.digest, t.digest,
                "{structure}: {threads} run-threads changed the op stream"
            );
            assert_eq!(
                (a.p50, a.p99, a.p999, a.total_cycles),
                (t.p50, t.p99, t.p999, t.total_cycles),
                "{structure}: {threads} run-threads changed the timing"
            );
        }
    }
}

#[test]
fn multi_channel_serving_is_deterministic_and_verified() {
    for channels in [2, 4] {
        let mut cfg = quick(StructureKind::Queue);
        cfg.channels = channels;
        let a = run_serve(&cfg).unwrap();
        let b = run_serve(&cfg).unwrap();
        assert_eq!(a.digest, b.digest, "channels={channels}");
        assert!(a.verified, "channels={channels}");
        assert_eq!(a.completed, 48, "channels={channels}");
    }
}

#[test]
fn shared_structure_protocols_are_checker_clean() {
    // The recoverable-CAS protocols persist from several cores into one
    // region; every data line must still ride with its counter
    // (write-through P-rules), and any core's fence may be the one that
    // exposes a violation. A clean report here is the cross-core
    // arming guarantee.
    for structure in StructureKind::ALL {
        let cfg = quick(structure);
        let checker = Checker::for_config(&cfg.machine_config());
        let (report, observers) = run_serve_observed(&cfg, vec![Box::new(checker)]).unwrap();
        assert_eq!(report.completed, 48, "{structure}");

        let mut found = false;
        for mut obs in observers {
            if let Some(c) = obs.as_any_mut().downcast_mut::<Checker>() {
                let rep = c.take_report();
                assert!(
                    rep.is_clean(),
                    "{structure}: persistency-ordering violation under serving: {rep}"
                );
                assert!(rep.events_seen > 0, "{structure}: checker saw no events");
                found = true;
            }
        }
        assert!(found, "{structure}: checker observer was not returned");
    }
}

#[test]
fn degraded_serving_stays_deterministic() {
    let cfg = ServeConfig {
        degraded_bank: Some(0),
        ..quick(StructureKind::Stack)
    };
    let a = run_serve(&cfg).unwrap();
    let b = run_serve(&cfg).unwrap();
    assert_eq!(a.digest, b.digest);
    assert!(!a.verified);
    assert_eq!(a.completed, 48);
    assert!(a.poisoned_reads + a.dropped_writes > 0);
}

#[test]
fn cas_window_torture_has_no_silent_corruption() {
    // Cross-crate smoke of the full campaign shape: every structure,
    // crash-only plus one power-event and one media fault class.
    let report = run_serve_torture(&ServeTortureConfig {
        schemes: vec![Scheme::SuperMem],
        structures: StructureKind::ALL.to_vec(),
        classes: vec![None, Some(FaultClass::Torn), Some(FaultClass::DoubleFlip)],
        seeds: vec![1],
        point: None,
    });
    assert!(report.total() > 0);
    assert!(
        report.silent().is_empty(),
        "silent corruption: {}",
        report.silent()[0].case.repro()
    );
    // The crash-only slice must recover an oracle state on both sides
    // of the linearization point.
    assert!(report.count(Classification::RecoveredOld) > 0);
    assert!(report.count(Classification::RecoveredNew) > 0);
}
