//! Oracle-based property tests of the memory controller: under any
//! operation sequence and any scheme, the controller must behave as a
//! simple byte-addressable memory (the oracle is a HashMap), both
//! during execution and through a crash at the end.
//!
//! Deterministic randomized testing: a seeded SplitMix64 generates the
//! operation sequences (stands in for proptest, which is unavailable in
//! offline builds). Every case is reproducible from the fixed seeds.

use std::collections::HashMap;

use supermem::memctrl::MemoryController;
use supermem::nvm::addr::LineAddr;
use supermem::persist::{PMem, RecoveredMemory};
use supermem::scheme::FIGURE_SCHEMES;
use supermem::sim::Config;
use supermem_sim::SplitMix64;

#[derive(Debug, Clone)]
enum Op {
    /// Flush a line with the given fill byte.
    Flush { line: u64, fill: u8 },
    /// Read a line back.
    Read { line: u64 },
}

/// 24 lines across 3 pages: enough to exercise CWC, cc eviction, and
/// same-line reordering hazards without slowing the test down.
fn random_op(rng: &mut SplitMix64) -> Op {
    if rng.next_below(2) == 0 {
        Op::Flush {
            line: rng.next_below(24) * 64,
            fill: rng.next_u64() as u8,
        }
    } else {
        Op::Read {
            line: rng.next_below(24) * 64,
        }
    }
}

/// Live reads always return the newest flushed value; after a crash
/// the recovered image matches the oracle exactly.
#[test]
fn controller_matches_oracle() {
    let mut rng = SplitMix64::new(0x04AC1E);
    for _ in 0..48 {
        let scheme = FIGURE_SCHEMES[rng.next_below(FIGURE_SCHEMES.len() as u64) as usize];
        let ops: Vec<Op> = (0..rng.next_range(1, 120))
            .map(|_| random_op(&mut rng))
            .collect();
        let cfg = scheme.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut oracle: HashMap<u64, u8> = HashMap::new();
        let mut t = 0u64;
        for op in &ops {
            match op {
                Op::Flush { line, fill } => {
                    t = mc.flush_line(LineAddr(*line), [*fill; 64], t);
                    oracle.insert(*line, *fill);
                }
                Op::Read { line } => {
                    let (data, done) = mc.read_line(LineAddr(*line), t);
                    t = done;
                    if let Some(&fill) = oracle.get(line) {
                        assert_eq!(data, [fill; 64], "live read at {line:#x} under {scheme}");
                    }
                }
            }
        }
        // Everything flushed is durable: crash and decrypt.
        let image = mc.crash_now();
        let mut rec = RecoveredMemory::from_image(&cfg, image);
        for (&line, &fill) in &oracle {
            let mut buf = [0u8; 64];
            rec.read(line, &mut buf);
            assert_eq!(
                buf, [fill; 64],
                "post-crash read at {line:#x} under {scheme}"
            );
        }
    }
}

/// Hammering a single line across the minor-counter overflow keeps
/// both the hot line and a cold neighbor intact, live and post-crash.
#[test]
fn overflow_boundary_is_oracle_clean() {
    let mut rng = SplitMix64::new(0x0F10);
    for _ in 0..24 {
        let extra = rng.next_range(1, 40);
        let seed = rng.next_u64() as u8;
        let cfg = supermem::Scheme::SuperMem.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut t = mc.flush_line(LineAddr(64), [seed; 64], 0);
        let total = 127 + extra; // crosses exactly one re-encryption
        let mut last = 0u8;
        for i in 0..total {
            last = (i as u8).wrapping_add(seed);
            t = mc.flush_line(LineAddr(0), [last; 64], t);
        }
        let (data, done) = mc.read_line(LineAddr(0), t);
        assert_eq!(data, [last; 64]);
        let (data, _) = mc.read_line(LineAddr(64), done);
        assert_eq!(data, [seed; 64]);
        assert_eq!(mc.stats().pages_reencrypted, 1);

        let mut rec = RecoveredMemory::from_image(&cfg, mc.crash_now());
        let mut buf = [0u8; 64];
        rec.read(0, &mut buf);
        assert_eq!(buf, [last; 64]);
        rec.read(64, &mut buf);
        assert_eq!(buf, [seed; 64]);
    }
}

/// Timing sanity under random traffic: retire cycles are meaningful
/// (monotone per line's visibility) and stats add up.
#[test]
fn stats_are_consistent() {
    let mut rng = SplitMix64::new(0x57A7);
    for _ in 0..48 {
        let ops: Vec<Op> = (0..rng.next_range(1, 80))
            .map(|_| random_op(&mut rng))
            .collect();
        let cfg = supermem::Scheme::SuperMem.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut t = 0u64;
        let mut flushes = 0u64;
        for op in &ops {
            match op {
                Op::Flush { line, fill } => {
                    t = mc.flush_line(LineAddr(*line), [*fill; 64], t);
                    flushes += 1;
                }
                Op::Read { line } => {
                    let (_, done) = mc.read_line(LineAddr(*line), t);
                    t = done;
                }
            }
        }
        mc.finish(t);
        let s = mc.stats();
        // Every flush lands exactly one data write; counter writes plus
        // coalesced merges account for the other half of each pair.
        assert_eq!(s.nvm_data_writes, flushes + 64 * s.pages_reencrypted);
        assert_eq!(s.nvm_counter_writes + s.counter_writes_coalesced, flushes);
        let bank_total: u64 = s.bank_writes.iter().sum();
        assert_eq!(bank_total, s.nvm_writes_total());
    }
}
