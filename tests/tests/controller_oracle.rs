//! Oracle-based property tests of the memory controller: under any
//! operation sequence and any scheme, the controller must behave as a
//! simple byte-addressable memory (the oracle is a HashMap), both
//! during execution and through a crash at the end.

use std::collections::HashMap;

use proptest::prelude::*;
use supermem::memctrl::MemoryController;
use supermem::nvm::addr::LineAddr;
use supermem::persist::{PMem, RecoveredMemory};
use supermem::scheme::FIGURE_SCHEMES;
use supermem::sim::Config;

#[derive(Debug, Clone)]
enum Op {
    /// Flush a line with the given fill byte.
    Flush { line: u64, fill: u8 },
    /// Read a line back.
    Read { line: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    // 24 lines across 3 pages: enough to exercise CWC, cc eviction, and
    // same-line reordering hazards without slowing the test down.
    prop_oneof![
        (0u64..24, any::<u8>()).prop_map(|(l, fill)| Op::Flush { line: l * 64, fill }),
        (0u64..24).prop_map(|l| Op::Read { line: l * 64 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Live reads always return the newest flushed value; after a crash
    /// the recovered image matches the oracle exactly.
    #[test]
    fn controller_matches_oracle(
        ops in proptest::collection::vec(arb_op(), 1..120),
        scheme_idx in 0usize..FIGURE_SCHEMES.len(),
    ) {
        let scheme = FIGURE_SCHEMES[scheme_idx];
        let cfg = scheme.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut oracle: HashMap<u64, u8> = HashMap::new();
        let mut t = 0u64;
        for op in &ops {
            match op {
                Op::Flush { line, fill } => {
                    t = mc.flush_line(LineAddr(*line), [*fill; 64], t);
                    oracle.insert(*line, *fill);
                }
                Op::Read { line } => {
                    let (data, done) = mc.read_line(LineAddr(*line), t);
                    t = done;
                    if let Some(&fill) = oracle.get(line) {
                        prop_assert_eq!(data, [fill; 64], "live read at {:#x} under {}", line, scheme);
                    }
                }
            }
        }
        // Everything flushed is durable: crash and decrypt.
        let image = mc.crash_now();
        let mut rec = RecoveredMemory::from_image(&cfg, image);
        for (&line, &fill) in &oracle {
            let mut buf = [0u8; 64];
            rec.read(line, &mut buf);
            prop_assert_eq!(buf, [fill; 64], "post-crash read at {:#x} under {}", line, scheme);
        }
    }

    /// Hammering a single line across the minor-counter overflow keeps
    /// both the hot line and a cold neighbor intact, live and post-crash.
    #[test]
    fn overflow_boundary_is_oracle_clean(extra in 1u64..40, seed in any::<u8>()) {
        let cfg = supermem::Scheme::SuperMem.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut t = mc.flush_line(LineAddr(64), [seed; 64], 0);
        let total = 127 + extra; // crosses exactly one re-encryption
        let mut last = 0u8;
        for i in 0..total {
            last = (i as u8).wrapping_add(seed);
            t = mc.flush_line(LineAddr(0), [last; 64], t);
        }
        let (data, done) = mc.read_line(LineAddr(0), t);
        prop_assert_eq!(data, [last; 64]);
        let (data, _) = mc.read_line(LineAddr(64), done);
        prop_assert_eq!(data, [seed; 64]);
        prop_assert_eq!(mc.stats().pages_reencrypted, 1);

        let mut rec = RecoveredMemory::from_image(&cfg, mc.crash_now());
        let mut buf = [0u8; 64];
        rec.read(0, &mut buf);
        prop_assert_eq!(buf, [last; 64]);
        rec.read(64, &mut buf);
        prop_assert_eq!(buf, [seed; 64]);
    }

    /// Timing sanity under random traffic: retire cycles are meaningful
    /// (monotone per line's visibility) and stats add up.
    #[test]
    fn stats_are_consistent(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let cfg = supermem::Scheme::SuperMem.apply(Config::default());
        let mut mc = MemoryController::new(&cfg);
        let mut t = 0u64;
        let mut flushes = 0u64;
        for op in &ops {
            match op {
                Op::Flush { line, fill } => {
                    t = mc.flush_line(LineAddr(*line), [*fill; 64], t);
                    flushes += 1;
                }
                Op::Read { line } => {
                    let (_, done) = mc.read_line(LineAddr(*line), t);
                    t = done;
                }
            }
        }
        mc.finish(t);
        let s = mc.stats();
        // Every flush lands exactly one data write; counter writes plus
        // coalesced merges account for the other half of each pair.
        prop_assert_eq!(s.nvm_data_writes, flushes + 64 * s.pages_reencrypted);
        prop_assert_eq!(
            s.nvm_counter_writes + s.counter_writes_coalesced,
            flushes
        );
        let bank_total: u64 = s.bank_writes.iter().sum();
        prop_assert_eq!(bank_total, s.nvm_writes_total());
    }
}
