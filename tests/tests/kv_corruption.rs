//! Randomized WAL/snapshot corruption: flip, truncate, and duplicate
//! bytes at seeded offsets anywhere in the store's media region, then
//! recover. The contract under *arbitrary* byte damage (not just crash
//! shapes) is fail-safe, never fail-silent:
//!
//! * recovery never panics — every outcome is `Ok` or a typed
//!   [`supermem_kv::RecoveryError`];
//! * it is deterministic and idempotent even on garbage (R1/R2);
//! * an `Ok` whose report claims **no damage** must equal some prefix
//!   of the applied history — corruption may eat the tail (zeroed
//!   bytes are indistinguishable from never-written log), but it can
//!   never reorder, relocate, or invent operations silently;
//! * a non-prefix state is only acceptable with the damage flag raised
//!   (e.g. a mid-log record skipped, and counted, under R6).
//!
//! Deterministic randomized testing: a seeded SplitMix64 generates the
//! mutations (stands in for proptest, which is unavailable in offline
//! builds). Every case is reproducible from the fixed seeds.

use std::collections::BTreeMap;

use supermem_kv::invariants::{r1_deterministic, r2_idempotent, r4_no_invented_data};
use supermem_kv::{op_stream, recover, KvLayout, KvOp, KvStore, RecoveryOptions, ShadowOracle};
use supermem_persist::{PMem, VecMem};
use supermem_sim::SplitMix64;

const BASE: u64 = 0x4000;

fn build_image(seed: u64, n: u64, snapshot_every: u64) -> (VecMem, KvLayout, ShadowOracle) {
    let layout = KvLayout::new(BASE, 1 << 12, 1 << 11).expect("layout");
    let mut mem = VecMem::new();
    let mut kv = KvStore::format(&mut mem, layout, snapshot_every).expect("format");
    let mut oracle = ShadowOracle::new();
    for (i, op) in op_stream(seed, n, 8, 24).into_iter().enumerate() {
        match &op {
            KvOp::Put(k, v) => kv.put(&mut mem, k, v).expect("put"),
            KvOp::Del(k) => kv.delete(&mut mem, k).expect("delete"),
        }
        oracle.record(op, (i + 1) as u64);
    }
    (mem, layout, oracle)
}

fn is_prefix(oracle: &ShadowOracle, state: &BTreeMap<Vec<u8>, Vec<u8>>) -> bool {
    (0..=oracle.len()).any(|n| &oracle.state_after(n) == state)
}

#[derive(Debug)]
enum Mutation {
    /// XOR 1–8 bytes at random offsets with random nonzero masks.
    Flip,
    /// Zero from a random offset to the end of the region.
    Truncate,
    /// Copy a random 8–64 byte chunk over another random offset.
    Duplicate,
}

fn mutate(rng: &mut SplitMix64, img: &mut VecMem, layout: &KvLayout) -> Mutation {
    let region = layout.total_len();
    let addr = |off: u64| layout.base + off;
    match rng.next_below(3) {
        0 => {
            for _ in 0..rng.next_range(1, 9) {
                let off = rng.next_below(region);
                let mut b = [0u8; 1];
                img.read(addr(off), &mut b);
                b[0] ^= rng.next_range(1, 256) as u8;
                img.write(addr(off), &b);
            }
            Mutation::Flip
        }
        1 => {
            let off = rng.next_below(region);
            let zeros = vec![0u8; (region - off) as usize];
            img.write(addr(off), &zeros);
            Mutation::Truncate
        }
        _ => {
            let len = rng.next_range(8, 65);
            let src = rng.next_below(region - len);
            let dst = rng.next_below(region - len);
            let mut chunk = vec![0u8; len as usize];
            img.read(addr(src), &mut chunk);
            img.write(addr(dst), &chunk);
            Mutation::Duplicate
        }
    }
}

#[test]
fn random_corruption_never_panics_and_never_silently_diverges() {
    let mut rng = SplitMix64::new(0x4B56_4652); // "KVFR"
    let opts = RecoveryOptions::default();
    let (mut ok_clean, mut ok_damaged, mut refused) = (0u32, 0u32, 0u32);

    for case in 0..60u64 {
        let seed = 100 + case;
        let n = rng.next_range(10, 36);
        let snapshot_every = rng.next_range(3, 10);
        let (mem, layout, oracle) = build_image(seed, n, snapshot_every);
        let mut img = mem.clone();
        let kind = mutate(&mut rng, &mut img, &layout);

        // Garbage in, determinism still out: both passes agree, and a
        // third is a no-op (recovery never writes).
        r1_deterministic(&mut img, layout, &opts)
            .unwrap_or_else(|e| panic!("case {case} ({kind:?}): {e}"));
        r2_idempotent(&mut img, layout, &opts)
            .unwrap_or_else(|e| panic!("case {case} ({kind:?}): {e}"));

        match recover(&mut img, layout, &opts) {
            Ok(rec) => {
                assert!(
                    rec.result.corrupt_entries_skipped <= opts.max_corrupt_entries,
                    "case {case} ({kind:?}): R6 breached"
                );
                r4_no_invented_data(&oracle, rec.store.entries())
                    .unwrap_or_else(|e| panic!("case {case} ({kind:?}): {e}"));
                if rec.result.damaged() {
                    ok_damaged += 1;
                } else {
                    assert!(
                        is_prefix(&oracle, rec.store.entries()),
                        "case {case} ({kind:?}): SILENT divergence — report claims no \
                         damage but the state matches no prefix of the history"
                    );
                    ok_clean += 1;
                }
            }
            Err(_) => refused += 1, // typed refusal is fail-safe by definition
        }
    }

    // The campaign must actually exercise all three outcomes; a
    // mutation generator that never bites proves nothing.
    assert!(ok_clean > 0, "no mutation left a cleanly recoverable image");
    assert!(ok_damaged > 0, "no mutation raised the damage flag");
    assert!(refused > 0, "no mutation forced a typed refusal");
}

#[test]
fn duplicated_record_cannot_replay_at_the_wrong_offset() {
    // The record CRC binds the body offset: copying a valid record's
    // bytes over a *different* record of the same epoch must read as
    // corruption there (skipped with the damage flag, or truncated),
    // never as the copied operation replayed at the wrong point in
    // history.
    let layout = KvLayout::new(BASE, 1 << 12, 1 << 11).expect("layout");
    let mut mem = VecMem::new();
    let mut kv = KvStore::format(&mut mem, layout, 1 << 30).expect("format");
    let mut oracle = ShadowOracle::new();
    // Equal-length records so the splice is byte-exact.
    let ops = [
        KvOp::Put(b"aaaa".to_vec(), b"1111".to_vec()),
        KvOp::Put(b"bbbb".to_vec(), b"2222".to_vec()),
        KvOp::Put(b"cccc".to_vec(), b"3333".to_vec()),
    ];
    for (i, op) in ops.iter().enumerate() {
        match op {
            KvOp::Put(k, v) => kv.put(&mut mem, k, v).expect("put"),
            KvOp::Del(_) => unreachable!(),
        }
        oracle.record(op.clone(), (i + 1) as u64);
    }
    let rec_len = supermem_kv::wal::record_len(&ops[0]);
    assert!(ops
        .iter()
        .all(|o| supermem_kv::wal::record_len(o) == rec_len));

    // Splice record 0's bytes over record 1.
    let mut chunk = vec![0u8; rec_len as usize];
    mem.read(layout.wal_body_addr(), &mut chunk);
    mem.write(layout.wal_body_addr() + rec_len, &chunk);

    let opts = RecoveryOptions::default();
    let rec = recover(&mut mem, layout, &opts).expect("recovers around the splice");
    let replayed_alias = rec.store.get(b"bbbb").is_none() && rec.store.len() == 2;
    assert!(
        rec.result.damaged() || !replayed_alias || is_prefix(&oracle, rec.store.entries()),
        "spliced record replayed silently: {:?}",
        rec.result
    );
    // Concretely: the splice is mid-log damage — record 1 is skipped
    // (and counted), record 2 still replays.
    assert_eq!(rec.result.corrupt_entries_skipped, 1);
    assert_eq!(rec.result.records_replayed, 2);
    assert!(rec.result.damaged());
    assert_eq!(rec.store.get(b"aaaa"), Some(b"1111".as_slice()));
    assert_eq!(rec.store.get(b"bbbb"), None, "skipped, not aliased");
    assert_eq!(rec.store.get(b"cccc"), Some(b"3333".as_slice()));
}
