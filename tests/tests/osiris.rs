//! Osiris-baseline integration: relaxed counter persistence is
//! recoverable *through ECC reconstruction*, at a recovery cost that
//! grows with the memory footprint — the §6 trade-off against
//! SuperMem's strict (and recovery-free) counter persistence.

use supermem::persist::{recover_osiris, recover_transactions, DirectMem, PMem, TxnManager};
use supermem::sim::Config;
use supermem::workloads::{WorkloadKind, WorkloadSpec};
use supermem::{Scheme, SystemBuilder};

const DATA: u64 = 0x8000;
const LOG: u64 = 0x20_0000;

#[test]
fn osiris_txn_recovers_at_every_append_boundary_via_ecc() {
    let cfg = Scheme::Osiris.apply(Config::default());
    let mut base = DirectMem::new(&cfg);
    base.persist(DATA, &[0x11; 512]);
    base.shutdown();
    let mutate = |mem: &mut DirectMem| {
        let mut txm = TxnManager::new(LOG, 8192);
        let mut txn = txm.begin();
        txn.write(DATA, vec![0x22; 512]);
        txn.commit(mem).expect("commit");
    };
    let mut dry = base.clone();
    let before = dry.controller().append_events();
    mutate(&mut dry);
    dry.shutdown();
    let total = dry.controller().append_events() - before;

    for k in 1..=total {
        let mut mem = base.clone();
        mem.controller_mut().arm_crash_after_appends(k);
        mutate(&mut mem);
        let image = mem.controller_mut().take_crash_image().expect("fired");
        let (mut rec, report) =
            recover_osiris(&cfg, image).unwrap_or_else(|e| panic!("crash point {k}: {e}"));
        assert_eq!(report.unrecoverable_lines, 0, "crash point {k}");
        recover_transactions(&mut rec, LOG).unwrap_or_else(|e| panic!("crash point {k}: {e}"));
        let mut buf = [0u8; 512];
        rec.read(DATA, &mut buf);
        assert!(
            buf == [0x11; 512] || buf == [0x22; 512],
            "crash point {k}: inconsistent state after ECC recovery"
        );
    }
}

#[test]
fn osiris_recovery_cost_scales_with_footprint_supermem_is_free() {
    let cost = |footprint: u64| {
        let cfg = Scheme::Osiris.apply(Config::default());
        let mut sys = SystemBuilder::new().scheme(Scheme::Osiris).build();
        let spec = WorkloadSpec::new(WorkloadKind::Array)
            .with_txns(20)
            .with_req_bytes(256)
            .with_array_footprint(footprint);
        let mut w = spec.build(&mut sys).expect("valid spec");
        for _ in 0..20 {
            w.step(&mut sys).expect("txn");
        }
        let (_, report) = recover_osiris(&cfg, sys.crash_now()).expect("osiris window set");
        report.trial_decryptions
    };
    let small = cost(128 << 10);
    let large = cost(1 << 20);
    assert!(
        large > small * 4,
        "Osiris recovery must scale with footprint: {small} vs {large}"
    );
}

#[test]
fn osiris_runtime_beats_write_through() {
    // Osiris' selling point: deferring counters buys back most of WT's
    // overhead (SuperMem achieves the same without a recovery scan).
    use supermem::{run_single, RunConfig};
    let lat = |scheme: Scheme| {
        let mut rc = RunConfig::new(scheme, WorkloadKind::Queue);
        rc.txns = 60;
        run_single(&rc).mean_txn_latency()
    };
    let wt = lat(Scheme::WriteThrough);
    let osiris = lat(Scheme::Osiris);
    assert!(
        osiris < wt * 0.8,
        "Osiris ({osiris:.0}) must clearly beat WT ({wt:.0})"
    );
}
