//! Whole-data-structure crash consistency: run each workload on the
//! full timed SuperMem system, pull the plug at many different write
//! -queue append boundaries, recover (undo-log rollback included), and
//! validate the *structural invariants* of what came back — B-tree
//! ordering and balance, red-black properties, hash placement, queue
//! bounds — using only the recovered bytes, no shadow model.
//!
//! This is the paper's end-to-end claim: applications built for
//! un-encrypted persistent memory run unmodified on SuperMem and stay
//! recoverable.

use supermem::persist::{recover_transactions, RecoveredMemory, RecoveryOutcome};
use supermem::workloads::{btree, hashtable, queue, rbtree};
use supermem::workloads::{WorkloadKind, WorkloadSpec};
use supermem::{Scheme, SystemBuilder};

const REQ: u64 = 256;
const TXNS: u64 = 30;

/// Runs `kind` with a crash armed after `appends` events and returns the
/// recovered memory (after transaction rollback) plus the recovery
/// outcome.
fn crash_run(kind: WorkloadKind, appends: u64, seed: u64) -> (RecoveredMemory, RecoveryOutcome) {
    let mut sys = SystemBuilder::new()
        .scheme(Scheme::SuperMem)
        .seed(seed)
        .build();
    let cfg = sys.config().clone();
    let spec = WorkloadSpec::new(kind)
        .with_txns(TXNS)
        .with_req_bytes(REQ)
        .with_seed(seed)
        .with_hash_buckets(256);
    let mut w = spec.build(&mut sys).expect("valid spec");
    sys.checkpoint();
    sys.arm_crash_after_appends(appends);
    for _ in 0..TXNS {
        w.step(&mut sys).expect("txn");
    }
    let image = sys.take_crash_image().unwrap_or_else(|| sys.crash_now()); // ran to completion: crash at end
    let mut rec = RecoveredMemory::from_image(&cfg, image);
    let outcome = recover_transactions(&mut rec, 0) // log is the region's first allocation
        .unwrap_or_else(|e| panic!("recovery failed: {e}"));
    (rec, outcome)
}

/// Crash points to sample: early (during the first transactions), middle,
/// and far beyond the run (i.e. no crash at all).
const CRASH_POINTS: [u64; 6] = [1, 3, 7, 19, 53, 131];

#[test]
fn btree_survives_crashes_at_many_points() {
    for &k in &CRASH_POINTS {
        let (mut rec, _) = crash_run(WorkloadKind::BTree, k, 11);
        let keys = btree::check_recovered(&mut rec, 0, REQ)
            .unwrap_or_else(|e| panic!("crash point {k}: {e}"));
        assert!(keys as u64 <= TXNS, "crash point {k}: too many keys");
    }
}

#[test]
fn rbtree_survives_crashes_at_many_points() {
    for &k in &CRASH_POINTS {
        let (mut rec, _) = crash_run(WorkloadKind::RbTree, k, 12);
        let keys = rbtree::check_recovered(&mut rec, 0, REQ)
            .unwrap_or_else(|e| panic!("crash point {k}: {e}"));
        assert!(keys as u64 <= TXNS, "crash point {k}: too many keys");
    }
}

#[test]
fn hashtable_survives_crashes_at_many_points() {
    for &k in &CRASH_POINTS {
        let (mut rec, _) = crash_run(WorkloadKind::HashTable, k, 13);
        let occupied = hashtable::check_recovered(&mut rec, 0, REQ, 256)
            .unwrap_or_else(|e| panic!("crash point {k}: {e}"));
        assert!(occupied <= TXNS, "crash point {k}: too many buckets");
    }
}

#[test]
fn queue_survives_crashes_at_many_points() {
    for &k in &CRASH_POINTS {
        let (mut rec, _) = crash_run(WorkloadKind::Queue, k, 14);
        let (head, tail) = queue::check_recovered(&mut rec, 0, REQ, 1024)
            .unwrap_or_else(|e| panic!("crash point {k}: {e}"));
        assert!(tail <= TXNS, "crash point {k}: tail {tail} too large");
        assert!(head <= tail, "crash point {k}");
    }
}

#[test]
fn recovered_structures_grow_with_later_crashes() {
    // Sanity that the sweep is meaningful: a later crash point must not
    // recover *fewer* committed keys than an earlier one.
    let keys_at = |k: u64| {
        let (mut rec, _) = crash_run(WorkloadKind::BTree, k, 11);
        btree::check_recovered(&mut rec, 0, REQ).expect("consistent")
    };
    let early = keys_at(2);
    let late = keys_at(120);
    assert!(late >= early, "later crash lost data: {early} -> {late}");
    assert!(late > 0, "a late crash must retain committed inserts");
}
