//! Determinism: identical configurations must produce bit-identical
//! results — the property that makes the figures reproducible.

use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_multicore, run_single, RunConfig, Scheme};

#[test]
fn identical_seeds_produce_identical_runs() {
    for kind in ALL_KINDS {
        let mut rc = RunConfig::new(Scheme::SuperMem, kind);
        rc.txns = 40;
        rc.req_bytes = 256;
        rc.array_footprint = 512 << 10;
        let a = run_single(&rc);
        let b = run_single(&rc);
        assert_eq!(a.total_cycles, b.total_cycles, "{kind}");
        assert_eq!(a.stats, b.stats, "{kind}");
    }
}

#[test]
fn different_seeds_produce_different_runs() {
    let mut rc = RunConfig::new(Scheme::SuperMem, supermem::workloads::WorkloadKind::Array);
    rc.txns = 40;
    rc.array_footprint = 512 << 10;
    let a = run_single(&rc);
    rc.seed = 999;
    let b = run_single(&rc);
    assert_ne!(
        a.stats.txn_latencies, b.stats.txn_latencies,
        "different seeds must change the access pattern"
    );
}

#[test]
fn multicore_is_deterministic_too() {
    let mut rc = RunConfig::new(
        Scheme::WriteThrough,
        supermem::workloads::WorkloadKind::Queue,
    );
    rc.txns = 15;
    rc.programs = 4;
    let a = run_multicore(&rc);
    let b = run_multicore(&rc);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn encryption_key_is_seed_stable() {
    use supermem::sim::Config;
    let a = Config::default().with_seed(5).encryption_key();
    let b = Config::default().with_seed(5).encryption_key();
    let c = Config::default().with_seed(6).encryption_key();
    assert_eq!(a, b);
    assert_ne!(a, c);
}
