//! Property-based integration tests: the timed secure system must be
//! byte-equivalent to the functional reference under arbitrary
//! operation sequences, for every scheme.
//!
//! Deterministic randomized testing: a seeded SplitMix64 generates the
//! operation sequences (stands in for proptest, which is unavailable in
//! offline builds). Every case is reproducible from the fixed seeds.

use supermem::persist::{PMem, RecoveredMemory, VecMem};
use supermem::scheme::FIGURE_SCHEMES;
use supermem::{Scheme, SystemBuilder};
use supermem_sim::SplitMix64;

#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, bytes: Vec<u8> },
    Read { addr: u64, len: usize },
    Clwb { addr: u64, len: u64 },
    Sfence,
}

fn random_op(rng: &mut SplitMix64) -> Op {
    let addr = rng.next_below(48 << 10);
    match rng.next_below(4) {
        0 => {
            let mut bytes = vec![0u8; rng.next_range(1, 150) as usize];
            rng.fill_bytes(&mut bytes);
            Op::Write { addr, bytes }
        }
        1 => Op::Read {
            addr,
            len: rng.next_range(1, 150) as usize,
        },
        2 => Op::Clwb {
            addr,
            len: rng.next_range(1, 150),
        },
        _ => Op::Sfence,
    }
}

#[test]
fn system_matches_functional_reference() {
    let mut rng = SplitMix64::new(0xF19A);
    for case in 0..16 {
        let scheme = FIGURE_SCHEMES[rng.next_below(FIGURE_SCHEMES.len() as u64) as usize];
        let ops: Vec<Op> = (0..rng.next_range(1, 80))
            .map(|_| random_op(&mut rng))
            .collect();
        let mut sys = SystemBuilder::new().scheme(scheme).build();
        let mut reference = VecMem::new();
        // Both views start from "initialized zeros" over the exercised
        // range (uninitialized encrypted NVM reads as garbage by design).
        let zeros = vec![0u8; (48 << 10) + 256];
        sys.write(0, &zeros);
        reference.write(0, &zeros);
        for op in &ops {
            match op {
                Op::Write { addr, bytes } => {
                    sys.write(*addr, bytes);
                    reference.write(*addr, bytes);
                }
                Op::Read { addr, len } => {
                    let mut a = vec![0u8; *len];
                    let mut b = vec![0u8; *len];
                    sys.read(*addr, &mut a);
                    reference.read(*addr, &mut b);
                    assert_eq!(
                        a, b,
                        "case {case}: read divergence at {addr:#x} under {scheme}"
                    );
                }
                Op::Clwb { addr, len } => sys.clwb(*addr, *len),
                Op::Sfence => sys.sfence(),
            }
        }
    }
}

#[test]
fn checkpointed_state_always_recovers() {
    let mut rng = SplitMix64::new(0xC4EC);
    for case in 0..16 {
        // Whatever was written before a checkpoint must survive a crash
        // bit-for-bit, under the full SuperMem scheme.
        let writes: Vec<(u64, Vec<u8>)> = (0..rng.next_range(1, 30))
            .map(|_| {
                let mut bytes = vec![0u8; rng.next_range(1, 100) as usize];
                rng.fill_bytes(&mut bytes);
                (rng.next_below(16 << 10), bytes)
            })
            .collect();
        let mut sys = SystemBuilder::new().scheme(Scheme::SuperMem).build();
        let mut reference = VecMem::new();
        for (addr, bytes) in &writes {
            sys.write(*addr, bytes);
            reference.write(*addr, bytes);
        }
        sys.checkpoint();
        let cfg = sys.config().clone();
        let mut rec = RecoveredMemory::from_image(&cfg, sys.crash_now());
        for (addr, bytes) in &writes {
            let mut got = vec![0u8; bytes.len()];
            let mut want = vec![0u8; bytes.len()];
            rec.read(*addr, &mut got);
            reference.read(*addr, &mut want);
            assert_eq!(got, want, "case {case}: divergence at {addr:#x}");
        }
    }
}

#[test]
fn clock_is_monotone() {
    let mut rng = SplitMix64::new(0xC10C);
    for _ in 0..16 {
        let ops: Vec<Op> = (0..rng.next_range(1, 60))
            .map(|_| random_op(&mut rng))
            .collect();
        let mut sys = SystemBuilder::new().scheme(Scheme::SuperMem).build();
        let mut last = sys.now();
        for op in &ops {
            match op {
                Op::Write { addr, bytes } => sys.write(*addr, bytes),
                Op::Read { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    sys.read(*addr, &mut buf);
                }
                Op::Clwb { addr, len } => sys.clwb(*addr, *len),
                Op::Sfence => sys.sfence(),
            }
            let now = sys.now();
            assert!(now >= last, "clock went backwards: {last} -> {now}");
            last = now;
        }
    }
}
