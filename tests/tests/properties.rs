//! Property-based integration tests: the timed secure system must be
//! byte-equivalent to the functional reference under arbitrary
//! operation sequences, for every scheme.

use proptest::prelude::*;
use supermem::persist::{PMem, RecoveredMemory, VecMem};
use supermem::scheme::FIGURE_SCHEMES;
use supermem::{Scheme, SystemBuilder};

#[derive(Debug, Clone)]
enum Op {
    Write { addr: u64, bytes: Vec<u8> },
    Read { addr: u64, len: usize },
    Clwb { addr: u64, len: u64 },
    Sfence,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let addr = 0u64..(48 << 10);
    prop_oneof![
        (addr.clone(), proptest::collection::vec(any::<u8>(), 1..150))
            .prop_map(|(addr, bytes)| Op::Write { addr, bytes }),
        (addr.clone(), 1usize..150).prop_map(|(addr, len)| Op::Read { addr, len }),
        (addr, 1u64..150).prop_map(|(addr, len)| Op::Clwb { addr, len }),
        Just(Op::Sfence),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn system_matches_functional_reference(
        ops in proptest::collection::vec(arb_op(), 1..80),
        scheme_idx in 0usize..FIGURE_SCHEMES.len(),
    ) {
        let scheme = FIGURE_SCHEMES[scheme_idx];
        let mut sys = SystemBuilder::new().scheme(scheme).build();
        let mut reference = VecMem::new();
        // Both views start from "initialized zeros" over the exercised
        // range (uninitialized encrypted NVM reads as garbage by design).
        let zeros = vec![0u8; (48 << 10) + 256];
        sys.write(0, &zeros);
        reference.write(0, &zeros);
        for op in &ops {
            match op {
                Op::Write { addr, bytes } => {
                    sys.write(*addr, bytes);
                    reference.write(*addr, bytes);
                }
                Op::Read { addr, len } => {
                    let mut a = vec![0u8; *len];
                    let mut b = vec![0u8; *len];
                    sys.read(*addr, &mut a);
                    reference.read(*addr, &mut b);
                    prop_assert_eq!(a, b, "read divergence at {:#x} under {}", addr, scheme);
                }
                Op::Clwb { addr, len } => sys.clwb(*addr, *len),
                Op::Sfence => sys.sfence(),
            }
        }
    }

    #[test]
    fn checkpointed_state_always_recovers(
        writes in proptest::collection::vec(
            (0u64..(16 << 10), proptest::collection::vec(any::<u8>(), 1..100)),
            1..30
        ),
    ) {
        // Whatever was written before a checkpoint must survive a crash
        // bit-for-bit, under the full SuperMem scheme.
        let mut sys = SystemBuilder::new().scheme(Scheme::SuperMem).build();
        let mut reference = VecMem::new();
        for (addr, bytes) in &writes {
            sys.write(*addr, bytes);
            reference.write(*addr, bytes);
        }
        sys.checkpoint();
        let cfg = sys.config().clone();
        let mut rec = RecoveredMemory::from_image(&cfg, sys.crash_now());
        for (addr, bytes) in &writes {
            let mut got = vec![0u8; bytes.len()];
            let mut want = vec![0u8; bytes.len()];
            rec.read(*addr, &mut got);
            reference.read(*addr, &mut want);
            prop_assert_eq!(got, want, "divergence at {:#x}", addr);
        }
    }

    #[test]
    fn clock_is_monotone(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut sys = SystemBuilder::new().scheme(Scheme::SuperMem).build();
        let mut last = sys.now();
        for op in &ops {
            match op {
                Op::Write { addr, bytes } => sys.write(*addr, bytes),
                Op::Read { addr, len } => {
                    let mut buf = vec![0u8; *len];
                    sys.read(*addr, &mut buf);
                }
                Op::Clwb { addr, len } => sys.clwb(*addr, *len),
                Op::Sfence => sys.sfence(),
            }
            let now = sys.now();
            prop_assert!(now >= last, "clock went backwards: {last} -> {now}");
            last = now;
        }
    }
}
