//! Persistency-ordering checker integration tests: the mutant harness
//! proves each invariant fires on exactly the misbehavior it guards
//! against, and randomized clean runs prove the checker stays silent on
//! correct configurations.

use supermem::scheme::FIGURE_SCHEMES;
use supermem::verify::{check_run, run_mutant, Rule};
use supermem::{RunConfig, Scheme};
use supermem_sim::{Mutation, SplitMix64};
use supermem_workloads::spec::ALL_KINDS;
use supermem_workloads::WorkloadKind;

fn quick(scheme: Scheme, kind: WorkloadKind) -> RunConfig {
    RunConfig::new(scheme, kind)
        .with_txns(30)
        .with_req_bytes(256)
        .with_array_footprint(256 << 10)
}

/// Which rule each injected mutation must trip first.
fn expected_rule(m: Mutation) -> Rule {
    match m {
        Mutation::WtOff => Rule::P1,
        Mutation::PairSplit => Rule::P2,
        Mutation::CwcNewest => Rule::P3,
        Mutation::RsrSkip => Rule::R3,
        Mutation::TreeLate => Rule::T1,
        Mutation::TreeSkip => Rule::T2,
        Mutation::TreeDoubleRoot => Rule::T3,
    }
}

#[test]
fn every_mutation_trips_its_matching_invariant() {
    for m in Mutation::ALL {
        let report = run_mutant(Some(m));
        assert!(
            !report.is_clean(),
            "{}: injected fault produced a clean report",
            m.name()
        );
        let first = report.violations[0].rule;
        assert_eq!(
            first,
            expected_rule(m),
            "{}: first violation was {first} — {}",
            m.name(),
            report.violations[0].message
        );
        assert!(
            !report.violations[0].window.is_empty(),
            "{}: violation carries no event window",
            m.name()
        );
    }
}

#[test]
fn mutations_do_not_cross_fire() {
    // The rule a mutation targets must not be reported by the other
    // mutants' *first* detection — each fault has a distinct signature.
    let firsts: Vec<(Mutation, Rule)> = Mutation::ALL
        .into_iter()
        .map(|m| (m, run_mutant(Some(m)).violations[0].rule))
        .collect();
    for (m, first) in &firsts {
        for (other, other_first) in &firsts {
            if m != other {
                assert_ne!(
                    first,
                    other_first,
                    "{} and {} trip the same first rule",
                    m.name(),
                    other.name()
                );
            }
        }
    }
}

#[test]
fn clean_harness_run_has_zero_violations() {
    let report = run_mutant(None);
    assert!(report.is_clean(), "{report}");
    assert!(report.events_seen > 0);
}

#[test]
fn randomized_clean_runs_stay_clean() {
    // Deterministically-seeded random picks over scheme x workload x seed:
    // the checker must stay silent on every unmutated configuration.
    let schemes: Vec<Scheme> = FIGURE_SCHEMES
        .into_iter()
        .chain([Scheme::WtSameBank, Scheme::Osiris, Scheme::Sca])
        .collect();
    let mut rng = SplitMix64::new(0xC0FFEE);
    for _ in 0..6 {
        let scheme = schemes[(rng.next_u64() % schemes.len() as u64) as usize];
        let kind = ALL_KINDS[(rng.next_u64() % ALL_KINDS.len() as u64) as usize];
        let seed = rng.next_u64() % 1000 + 1;
        let rc = quick(scheme, kind).with_seed(seed).with_txns(20);
        let report = check_run(&rc).unwrap();
        assert!(report.is_clean(), "{scheme}/{kind} seed {seed}: {report}");
    }
}

#[test]
fn mutated_experiment_run_is_caught_end_to_end() {
    // The mutation plumbs through RunConfig -> Config -> controller, so a
    // checked workload run (not just the fixed harness) catches it too.
    let rc = quick(Scheme::SuperMem, WorkloadKind::Queue).with_mutation(Some(Mutation::WtOff));
    let report = check_run(&rc).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.violations[0].rule, Rule::P1);
}
