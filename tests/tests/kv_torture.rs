//! Integration smoke for the KV differential crash-torture campaign:
//! a reduced grid (one seed per scheme, every fault class, plus a
//! multi-channel slice) that must classify every injection without a
//! single SILENT case. The full 1,764-injection grid is the
//! `kvtorture` figure binary; this is the CI-sized certificate that
//! the machinery itself — crash arming, fault planning, image capture,
//! recovery, oracle classification — holds together across crates.

use supermem::nvm::FaultClass;
use supermem::Scheme;
use supermem_kv::{
    kv_crash_points, kv_run_case, kv_run_torture, kv_shrink_point, KvClassification, KvTortureCase,
    KvTortureConfig,
};

fn classes_with_baseline() -> Vec<Option<FaultClass>> {
    let mut classes: Vec<Option<FaultClass>> = vec![None];
    classes.extend(FaultClass::ALL.into_iter().map(Some));
    classes
}

#[test]
fn reduced_campaign_has_zero_silent_cases() {
    let cfg = KvTortureConfig {
        schemes: vec![Scheme::SuperMem, Scheme::WriteThrough],
        classes: classes_with_baseline(),
        seeds: vec![1],
        point: None,
        channels: vec![1],
        ops: 10,
    };
    let report = kv_run_torture(&cfg);

    let expected: u64 = cfg
        .schemes
        .iter()
        .map(|&s| kv_crash_points(s, 1, 1, cfg.ops) * cfg.classes.len() as u64)
        .sum();
    assert_eq!(report.total(), expected, "every grid cell executed");
    assert!(
        report.silent().is_empty(),
        "SILENT cases: {:?}",
        report
            .silent()
            .iter()
            .map(|r| r.case.repro())
            .collect::<Vec<_>>()
    );
    // The campaign must see all three benign outcomes, or the oracle
    // is vacuous.
    assert!(report.count(KvClassification::RecoveredCommitted) > 0);
    assert!(report.count(KvClassification::LostUnackedTail) > 0);
    assert!(report.count(KvClassification::Detected) > 0);
    // Crash-only cases never involve media damage, so nothing there
    // may be degraded to "detected": the WAL contract handles a bare
    // crash at any append without data loss beyond the unacked tail.
    for scheme in &cfg.schemes {
        assert_eq!(
            report.count_cell(*scheme, None, KvClassification::Detected),
            0,
            "{scheme:?}: a bare crash must never need a damage signal"
        );
    }
    for s in report.by_scheme() {
        assert_eq!(s.verdict(), "fail-safe");
        assert_eq!(
            s.cases,
            s.committed + s.lost_tail + s.detected + s.silent,
            "tallies add up"
        );
    }
}

#[test]
fn multichannel_slice_is_fail_safe_too() {
    let cfg = KvTortureConfig {
        schemes: vec![Scheme::SuperMem],
        classes: vec![None, Some(FaultClass::Torn), Some(FaultClass::BankFail)],
        seeds: vec![2],
        point: None,
        channels: vec![2],
        ops: 8,
    };
    let report = kv_run_torture(&cfg);
    assert!(report.total() > 0);
    assert!(report.silent().is_empty());
}

#[test]
fn campaign_is_deterministic() {
    let cfg = KvTortureConfig {
        schemes: vec![Scheme::SuperMem],
        classes: vec![None, Some(FaultClass::Torn)],
        seeds: vec![3],
        point: None,
        channels: vec![1],
        ops: 8,
    };
    let a = kv_run_torture(&cfg);
    let b = kv_run_torture(&cfg);
    assert_eq!(a.total(), b.total());
    for (ra, rb) in a.results.iter().zip(&b.results) {
        assert_eq!(ra.case, rb.case);
        assert_eq!(ra.classification, rb.classification);
        assert_eq!(ra.detail, rb.detail);
    }
}

#[test]
fn shrink_finds_an_equally_classified_earlier_point() {
    // Pick a detected case from a small sweep and shrink it: the
    // minimized point must reproduce the same classification.
    let cfg = KvTortureConfig {
        schemes: vec![Scheme::SuperMem],
        classes: vec![Some(FaultClass::Torn)],
        seeds: vec![1],
        point: None,
        channels: vec![1],
        ops: 10,
    };
    let report = kv_run_torture(&cfg);
    let Some(detected) = report
        .results
        .iter()
        .find(|r| r.classification == KvClassification::Detected)
    else {
        panic!("torn-write sweep produced no detected case to shrink");
    };
    let min_point = kv_shrink_point(&detected.case);
    assert!(min_point <= detected.case.point);
    let replay = kv_run_case(&KvTortureCase {
        point: min_point,
        ..detected.case
    });
    assert_eq!(replay.classification, KvClassification::Detected);
}
