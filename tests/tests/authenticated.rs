//! Authenticated-mode integration: the integrity tree wired into the
//! timed controller detects active DIMM tampering across a crash, at a
//! measurable (small) runtime cost.

use supermem::crypto::CounterLine;
use supermem::nvm::addr::PageId;
use supermem::persist::{verify_image_integrity, IntegrityVerdict, PMem};
use supermem::sim::Config;
use supermem::workloads::WorkloadKind;
use supermem::{run_single, RunConfig, Scheme, System, SystemBuilder};

fn auth_system() -> System {
    let mut cfg = Scheme::SuperMem.apply(Config::default());
    cfg.integrity_tree = true;
    SystemBuilder::new().config(cfg).build()
}

#[test]
fn clean_crash_image_verifies() {
    let mut sys = auth_system();
    for p in 0..8u64 {
        sys.write(p * 4096, &[p as u8 + 1; 256]);
        sys.clwb(p * 4096, 256);
    }
    sys.sfence();
    sys.checkpoint();
    let cfg = sys.config().clone();
    let mut image = sys.crash_now();
    let verdict = verify_image_integrity(&cfg, &mut image).unwrap();
    let IntegrityVerdict::Clean { rebuild } = verdict else {
        panic!("clean image must verify, got {verdict:?}");
    };
    assert_eq!(rebuild.counter_lines_checked, 8);
    assert!(rebuild.root_matches);
}

#[test]
fn counter_rollback_attack_is_detected() {
    let mut sys = auth_system();
    sys.write(0x3000, &[9u8; 64]);
    sys.clwb(0x3000, 64);
    sys.sfence();
    sys.checkpoint();
    let cfg = sys.config().clone();
    let mut image = sys.crash_now();
    // The attacker rewinds page 3's counter line to fresh (a replay of
    // old DIMM contents).
    image
        .store
        .write_counter(PageId(3), CounterLine::new().encode());
    assert_eq!(
        verify_image_integrity(&cfg, &mut image).unwrap(),
        IntegrityVerdict::Tampered
    );
}

#[test]
fn data_only_tampering_is_caught_by_decryption_not_tree() {
    // The Bonsai argument: data lines need no tree because the cipher
    // binds them to counters; flipping ciphertext yields garbage
    // plaintext, detectable by any content check — while the counter
    // region is what the tree guards.
    let mut sys = auth_system();
    sys.write(0x3000, &[9u8; 64]);
    sys.clwb(0x3000, 64);
    sys.sfence();
    sys.checkpoint();
    let cfg = sys.config().clone();
    let mut image = sys.crash_now();
    let line = supermem::nvm::addr::LineAddr(0x3000);
    let mut cipher = image.store.read_data(line);
    cipher[0] ^= 0xFF;
    image.store.write_data(line, cipher);
    // Tree still clean (counters untouched)...
    assert!(matches!(
        verify_image_integrity(&cfg, &mut image).unwrap(),
        IntegrityVerdict::Clean { .. }
    ));
    // ...but the data no longer decrypts to what was written.
    let mut rec = supermem::persist::RecoveredMemory::from_image(&cfg, image);
    let mut buf = [0u8; 64];
    rec.read(0x3000, &mut buf);
    assert_ne!(buf, [9u8; 64]);
}

#[test]
fn verification_happens_on_counter_fetches_and_costs_little() {
    let mut rc = RunConfig::new(Scheme::SuperMem, WorkloadKind::HashTable);
    rc.txns = 60;
    rc.req_bytes = 256;
    rc.counter_cache_bytes = 1 << 10; // tiny cache: frequent NVM fetches
    let plain = run_single(&rc);

    // Same run with authentication: drive it manually since RunConfig
    // has no integrity knob (it is a builder-level option).
    let mut cfg = Scheme::SuperMem.apply(Config::default());
    cfg.integrity_tree = true;
    cfg.counter_cache_bytes = 1 << 10;
    let mut sys = SystemBuilder::new().config(cfg).build();
    let spec = supermem::workloads::WorkloadSpec::new(WorkloadKind::HashTable)
        .with_txns(60)
        .with_req_bytes(256);
    let mut w = spec.build(&mut sys).expect("valid spec");
    sys.checkpoint();
    sys.reset_stats();
    let start = sys.now();
    let mut latencies = Vec::new();
    for _ in 0..60 {
        let s = sys.now();
        w.step(&mut sys).unwrap();
        latencies.push(sys.now() - s);
    }
    let _ = start;
    assert!(
        sys.stats().integrity_verifications > 0,
        "cold counter fetches must verify"
    );
    assert_eq!(sys.stats().integrity_violations, 0);
    let auth_mean = latencies.iter().sum::<u64>() as f64 / latencies.len() as f64;
    let overhead = auth_mean / plain.mean_txn_latency();
    assert!(
        overhead < 1.2,
        "authentication on counter misses must stay cheap, got {overhead:.2}x"
    );
}

#[test]
fn unauthenticated_images_report_a_usable_error() {
    let sys = SystemBuilder::new().scheme(Scheme::SuperMem).build();
    let cfg = sys.config().clone();
    let err = verify_image_integrity(&cfg, &mut sys.crash_now()).unwrap_err();
    assert!(err.contains("integrity_tree"));
}
