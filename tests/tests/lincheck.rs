//! Durable-linearizability model checking of the serving protocols:
//! the healthy protocol must survive exhaustive schedule/crash
//! exploration, every catalogued mutant must be caught, and each
//! mutant's shrunk reproducer is pinned so a regression in the checker
//! (or the protocol) shows up as a changed witness.

use supermem_lincheck::{
    find_minimal, lincheck, CheckPhase, CrashMode, CrashPoint, LincheckConfig, Mutant,
};
use supermem_serve::service::StructureKind;

/// The CI tentpole: every interleaving of 2 cores x 3 mixed ops, a
/// crash after every persist and every action, all three structures.
#[test]
fn healthy_protocols_survive_exhaustive_two_core_exploration() {
    for structure in StructureKind::ALL {
        let cfg = LincheckConfig::mixed(structure, 2, 3);
        let report = lincheck(&cfg);
        assert!(
            report.violation.is_none(),
            "{structure}: {}",
            report.violation.unwrap()
        );
        assert!(
            report.stats.schedules > 50,
            "{structure}: suspiciously few schedules: {:?}",
            report.stats
        );
        println!("{structure}: {:?}", report.stats);
    }
}

/// The sleep-set reduction must agree with the exhaustive search on
/// the healthy verdict while actually pruning.
#[test]
fn sleep_set_reduction_agrees_and_prunes() {
    for structure in StructureKind::ALL {
        let full = lincheck(&LincheckConfig::mixed(structure, 2, 3));
        let mut cfg = LincheckConfig::mixed(structure, 2, 3);
        cfg.reduce = true;
        let reduced = lincheck(&cfg);
        assert!(full.violation.is_none() && reduced.violation.is_none());
        assert!(
            reduced.stats.sleep_pruned > 0,
            "{structure}: reduction pruned nothing: {:?}",
            reduced.stats
        );
        assert!(
            reduced.stats.schedules < full.stats.schedules,
            "{structure}: reduction explored no fewer schedules"
        );
        println!(
            "{structure}: full {} schedules, reduced {} (pruned {})",
            full.stats.schedules, reduced.stats.schedules, reduced.stats.sleep_pruned
        );
    }
}

fn shrunk(structure: StructureKind, mutant: Mutant) -> supermem_lincheck::Repro {
    let mut cfg = LincheckConfig::mixed(structure, 2, 3);
    cfg.mutant = Some(mutant);
    cfg.crash = CrashMode::All;
    let repro = find_minimal(&cfg).unwrap_or_else(|| panic!("{mutant} must be caught"));
    println!("{mutant}: {}", repro.summary());
    repro
}

#[test]
fn mutant_skip_linearize_minimal_repro() {
    let repro = shrunk(StructureKind::Stack, Mutant::SkipLinearize);
    assert_eq!(repro.programs.len(), 1, "{}", repro.summary());
    assert_eq!(
        repro.violation.schedule,
        vec![0, 0, 0],
        "{}",
        repro.summary()
    );
    assert_eq!(
        repro.violation.crash,
        Some(CrashPoint::AfterPersist(3)),
        "{}",
        repro.summary()
    );
    assert_eq!(repro.violation.phase, CheckPhase::DurableState);
}

#[test]
fn mutant_complete_first_minimal_repro() {
    let repro = shrunk(StructureKind::Stack, Mutant::CompleteBeforeLinearize);
    assert_eq!(repro.programs.len(), 1, "{}", repro.summary());
    assert_eq!(
        repro.violation.schedule,
        vec![0, 0, 0],
        "{}",
        repro.summary()
    );
    assert_eq!(
        repro.violation.crash,
        Some(CrashPoint::AfterPersist(3)),
        "{}",
        repro.summary()
    );
    assert_eq!(repro.violation.phase, CheckPhase::DurableState);
}

/// Minimal lost-update witness: one push per core. Core 0's cache
/// holds the head line from initialization; with invalidation dropped,
/// core 1's publication (persist 3) never reaches it, so core 0's CAS
/// sees the stale empty head and its own publication (persist 7)
/// orphans core 1's completed push.
#[test]
fn mutant_drop_invalidation_minimal_repro() {
    let repro = shrunk(StructureKind::Stack, Mutant::DropInvalidation);
    assert_eq!(repro.programs.len(), 2, "{}", repro.summary());
    assert_eq!(
        repro.programs.iter().map(Vec::len).sum::<usize>(),
        2,
        "{}",
        repro.summary()
    );
    assert_eq!(
        repro.violation.schedule,
        vec![1, 1, 1, 0, 0, 0],
        "{}",
        repro.summary()
    );
    assert_eq!(
        repro.violation.crash,
        Some(CrashPoint::AfterPersist(7)),
        "{}",
        repro.summary()
    );
    assert_eq!(repro.violation.phase, CheckPhase::DurableState);
}

/// Minimal double-apply witness: crash lands after the linearizing
/// persist (persist 3) but before completion; blind re-execution then
/// pushes a second copy of the already-applied update.
#[test]
fn mutant_skip_recovery_scan_minimal_repro() {
    let repro = shrunk(StructureKind::Stack, Mutant::SkipRecoveryScan);
    assert_eq!(repro.programs.len(), 1, "{}", repro.summary());
    assert_eq!(
        repro.violation.schedule,
        vec![0, 0, 0],
        "{}",
        repro.summary()
    );
    assert_eq!(
        repro.violation.crash,
        Some(CrashPoint::AfterPersist(3)),
        "{}",
        repro.summary()
    );
    assert_eq!(
        repro.violation.phase,
        CheckPhase::Resume,
        "{}",
        repro.summary()
    );
}

/// Every mutant is also caught on the queue and hash protocols (no
/// shrinking — just detection).
#[test]
fn all_mutants_caught_on_all_structures() {
    for structure in StructureKind::ALL {
        for mutant in Mutant::ALL {
            let mut cfg = LincheckConfig::mixed(structure, 2, 2);
            cfg.mutant = Some(mutant);
            let report = lincheck(&cfg);
            assert!(
                report.violation.is_some(),
                "{structure}/{mutant}: not caught in {:?}",
                report.stats
            );
        }
    }
}
