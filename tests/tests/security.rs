//! Security-property integration tests: what an attacker with physical
//! access to the DIMM (stolen DIMM / bus snooping, paper §2.2.1) can
//! and cannot learn.

use supermem::persist::PMem;
use supermem::{Scheme, SystemBuilder};

fn flushed_dimm_bytes(scheme: Scheme, addr: u64, data: &[u8]) -> [u8; 64] {
    let mut sys = SystemBuilder::new().scheme(scheme).seed(11).build();
    sys.write(addr, data);
    sys.clwb(addr, data.len() as u64);
    sys.sfence();
    let image = sys.crash_now();
    image
        .store
        .read_data(supermem::nvm::addr::LineAddr(addr & !63))
}

#[test]
fn dimm_holds_ciphertext_when_encrypted() {
    let secret = [0x41u8; 64]; // 'A' x 64
    let raw = flushed_dimm_bytes(Scheme::SuperMem, 0x1000, &secret);
    assert_ne!(raw, secret, "plaintext must never reach the DIMM");
}

#[test]
fn unsec_dimm_holds_plaintext() {
    let secret = [0x41u8; 64];
    let raw = flushed_dimm_bytes(Scheme::Unsec, 0x1000, &secret);
    assert_eq!(
        raw, secret,
        "the Unsec baseline is deliberately unprotected"
    );
}

#[test]
fn equal_lines_have_unequal_ciphertexts() {
    // Dictionary-attack resistance across addresses (Figure 1b/1c): two
    // lines with identical contents must encrypt differently.
    let mut sys = SystemBuilder::new().scheme(Scheme::SuperMem).build();
    let data = [0x42u8; 64];
    sys.write(0x1000, &data);
    sys.write(0x2000, &data);
    sys.clwb(0x1000, 64);
    sys.clwb(0x2000, 64);
    sys.sfence();
    let image = sys.crash_now();
    let a = image.store.read_data(supermem::nvm::addr::LineAddr(0x1000));
    let b = image.store.read_data(supermem::nvm::addr::LineAddr(0x2000));
    assert_ne!(a, b, "same plaintext at different addresses must differ");
}

#[test]
fn rewriting_same_value_changes_ciphertext() {
    // Replay/dictionary resistance in time (Figure 1c): consecutive
    // writes of the same value to the same line use fresh minors.
    let mut sys = SystemBuilder::new().scheme(Scheme::SuperMem).build();
    let data = [0x43u8; 64];
    sys.write(0x3000, &data);
    sys.clwb(0x3000, 64);
    sys.sfence();
    let first = sys
        .crash_now()
        .store
        .read_data(supermem::nvm::addr::LineAddr(0x3000));
    // Touch and rewrite the identical bytes.
    sys.write(0x3000, &[0u8; 64]);
    sys.clwb(0x3000, 64);
    sys.sfence();
    sys.write(0x3000, &data);
    sys.clwb(0x3000, 64);
    sys.sfence();
    let second = sys
        .crash_now()
        .store
        .read_data(supermem::nvm::addr::LineAddr(0x3000));
    assert_ne!(first, second, "counter-mode must never reuse a pad");
}

#[test]
fn different_seeds_produce_unrelated_ciphertexts() {
    // The per-machine key is derived from the seed; two machines never
    // share pads.
    let a = flushed_dimm_bytes(Scheme::SuperMem, 0x1000, &[9u8; 64]);
    let mut sys = SystemBuilder::new()
        .scheme(Scheme::SuperMem)
        .seed(999)
        .build();
    sys.write(0x1000, &[9u8; 64]);
    sys.clwb(0x1000, 64);
    sys.sfence();
    let b = sys
        .crash_now()
        .store
        .read_data(supermem::nvm::addr::LineAddr(0x1000));
    assert_ne!(a, b);
}

#[test]
fn counters_are_not_secret_but_data_is() {
    // Counters are stored raw (they need no confidentiality); data is
    // not. Verify the split: the counter region decodes to sane minors,
    // while the data region is indistinguishable from noise relative to
    // the plaintext.
    let mut sys = SystemBuilder::new().scheme(Scheme::SuperMem).build();
    sys.write(0x5000, &[1u8; 64]);
    sys.clwb(0x5000, 64);
    sys.sfence();
    let image = sys.crash_now();
    let page = supermem::nvm::addr::PageId(0x5000 / 4096);
    let ctr = supermem::crypto::CounterLine::decode(&image.store.read_counter(page));
    // 0x5000 is the first line of its page: minor index 0.
    assert_eq!(ctr.minor(0), 1, "counter readable in the clear");
}
