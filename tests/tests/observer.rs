//! Observer-layer reconciliation and non-perturbation tests.
//!
//! The probe layer must be a pure *view*: attaching the built-in
//! `Telemetry` collector has to reproduce the controller's own `Stats`
//! counters exactly, and attaching nothing must leave runs untouched.

use supermem::sim::{Event, Observer};
use supermem::workloads::WorkloadKind;
use supermem::{Experiment, RunConfig, RunResult, Scheme};

fn config(scheme: Scheme, kind: WorkloadKind, seed: u64) -> RunConfig {
    RunConfig::new(scheme, kind)
        .with_txns(30)
        .with_req_bytes(512)
        .with_seed(seed)
        .with_array_footprint(256 << 10)
}

fn observed(rc: &RunConfig) -> RunResult {
    Experiment::new(rc.clone())
        .expect("valid config")
        .observe()
        .run()
}

/// Telemetry aggregates must reconcile exactly with the independently
/// maintained `Stats` counters, across random scheme/workload/seed
/// picks (deterministic xorshift so failures reproduce).
#[test]
fn telemetry_reconciles_with_stats() {
    let schemes = [
        Scheme::Unsec,
        Scheme::WriteThrough,
        Scheme::WtCwc,
        Scheme::WtXbank,
        Scheme::SuperMem,
    ];
    let kinds = [
        WorkloadKind::Array,
        WorkloadKind::Queue,
        WorkloadKind::HashTable,
        WorkloadKind::BTree,
    ];
    let mut x = 0x9e3779b97f4a7c15u64;
    for _ in 0..8 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let scheme = schemes[(x >> 8) as usize % schemes.len()];
        let kind = kinds[(x >> 24) as usize % kinds.len()];
        let rc = config(scheme, kind, x % 1000);
        let r = observed(&rc);
        let t = r.telemetry.as_ref().expect("observed run has telemetry");
        let b = &t.breakdown;
        let s = &r.stats;
        let label = format!("{scheme}/{kind} seed {}", rc.seed);

        // Transactions: count and total latency, event-for-event.
        assert_eq!(b.txns, s.txn_commits, "{label}: txn count");
        assert_eq!(
            t.txn_latency.count(),
            s.txn_commits,
            "{label}: txn histogram count"
        );
        let stats_txn_sum: u64 = s.txn_latencies.iter().sum();
        assert_eq!(
            t.txn_latency.sum(),
            stats_txn_sum,
            "{label}: txn latency sum"
        );

        // Write-queue issue events vs the controller's write counters.
        assert_eq!(
            b.data_writes_issued, s.nvm_data_writes,
            "{label}: data writes"
        );
        assert_eq!(
            b.counter_writes_issued, s.nvm_counter_writes,
            "{label}: counter writes"
        );
        assert_eq!(
            b.coalesced, s.counter_writes_coalesced,
            "{label}: coalesced"
        );
        assert_eq!(b.wq_stalls, s.wq_full_events, "{label}: wq stalls");
        assert_eq!(
            b.wq_stall_cycles, s.wq_stall_cycles,
            "{label}: wq stall cycles"
        );

        // Every enqueue either issues to a bank or coalesces away; after
        // a clean finish the queue is drained.
        assert_eq!(
            t.wq_occupancy.enqueues,
            s.nvm_writes_total() + s.counter_writes_coalesced,
            "{label}: enqueues"
        );
        assert_eq!(
            t.wq_occupancy.issues,
            s.nvm_writes_total(),
            "{label}: issues"
        );

        // Counter-cache events mirror the cache's own counters.
        assert_eq!(
            b.counter_cache_hits, s.counter_cache_hits,
            "{label}: cc hits"
        );
        assert_eq!(
            b.counter_cache_misses, s.counter_cache_misses,
            "{label}: cc misses"
        );

        // BankBusy write events land on the same banks Stats charged.
        let telemetry_bank_writes: Vec<u64> = t.banks.banks().iter().map(|bk| bk.writes).collect();
        for (bank, &writes) in s.bank_writes.iter().enumerate() {
            let seen = telemetry_bank_writes.get(bank).copied().unwrap_or(0);
            assert_eq!(seen, writes, "{label}: bank {bank} writes");
        }

        // Flush phases partition each flush's latency.
        assert_eq!(
            t.flush_latency.sum(),
            b.counter_fetch_cycles + b.crypto_cycles + b.queue_admission_cycles,
            "{label}: flush phase partition"
        );
        assert_eq!(t.flush_latency.count(), b.flushes, "{label}: flush count");
        assert_eq!(b.sfences, s.sfence_ops, "{label}: sfences");
    }
}

/// Attaching no observer must not change simulated results: identical
/// stats and cycle counts with and without the telemetry collector.
#[test]
fn unobserved_runs_match_observed_runs() {
    for scheme in [Scheme::Unsec, Scheme::SuperMem] {
        let rc = config(scheme, WorkloadKind::Queue, 7);
        let plain = Experiment::new(rc.clone()).expect("valid config").run();
        let obs = observed(&rc);
        assert!(plain.telemetry.is_none());
        assert!(obs.telemetry.is_some());
        assert_eq!(plain.total_cycles, obs.total_cycles, "{scheme}: cycles");
        assert_eq!(plain.stats, obs.stats, "{scheme}: stats");
    }
}

/// A user-supplied observer plugs in through `observe_with` and gets
/// every event the built-in collector sees.
#[test]
fn custom_observers_receive_events() {
    #[derive(Clone, Debug, Default)]
    struct CountEvents {
        enqueues: u64,
        txns: u64,
    }
    impl Observer for CountEvents {
        fn on_event(&mut self, ev: &Event) {
            match ev {
                Event::WqEnqueue { .. } => self.enqueues += 1,
                Event::TxnCommit { .. } => self.txns += 1,
                _ => {}
            }
        }
        fn box_clone(&self) -> Box<dyn Observer> {
            Box::new(self.clone())
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let rc = config(Scheme::SuperMem, WorkloadKind::Array, 3);
    let mut exp = Experiment::new(rc.clone())
        .expect("valid config")
        .observe()
        .observe_with(Box::new(CountEvents::default()));
    let r = exp.run();
    let t = r.telemetry.as_ref().expect("telemetry collected");
    let mut observers = exp.take_observers();
    assert_eq!(observers.len(), 1, "custom observer returned");
    let counts = observers[0]
        .as_any_mut()
        .downcast_mut::<CountEvents>()
        .expect("downcasts to CountEvents");
    assert_eq!(counts.enqueues, t.wq_occupancy.enqueues);
    assert_eq!(counts.txns, t.breakdown.txns);
    assert_eq!(counts.txns, r.stats.txn_commits);
}

/// Multi-core sessions attribute transactions to cores and reconcile
/// the same way single-core ones do.
#[test]
fn multicore_telemetry_reconciles() {
    let rc = config(Scheme::SuperMem, WorkloadKind::Queue, 11).with_programs(4);
    let r = observed(&rc);
    let t = r.telemetry.as_ref().expect("telemetry collected");
    assert_eq!(t.breakdown.txns, r.stats.txn_commits);
    assert_eq!(t.txn_latency.count(), r.stats.txn_commits);
    let stats_txn_sum: u64 = r.stats.txn_latencies.iter().sum();
    assert_eq!(t.txn_latency.sum(), stats_txn_sum);
    assert_eq!(t.breakdown.data_writes_issued, r.stats.nvm_data_writes);
    assert_eq!(
        t.breakdown.counter_writes_issued,
        r.stats.nvm_counter_writes
    );
}
