//! Intra-run parallelism invariance: `run_threads` is a host execution
//! knob, not a machine parameter, so every observable output — `Stats`,
//! telemetry histograms, checker verdicts, and the raw event stream —
//! must be bit-identical at every thread count. The drain fast path
//! (`Config::fast_forward`) carries the same contract against its
//! tick-by-tick reference behavior.

use supermem::memctrl::ChannelSet;
use supermem::nvm::addr::LineAddr;
use supermem::sim::{Config, EventTape, SplitMix64};
use supermem::verify::check_run;
use supermem::workloads::spec::ALL_KINDS;
use supermem::{run_single, Experiment, RunConfig, Scheme};

/// Random (scheme, workload, seed, channels) triples drawn from a fixed
/// master seed, the ISSUE-6 property-test shape.
fn random_triples(master: u64, count: usize) -> Vec<RunConfig> {
    const SCHEMES: [Scheme; 4] = [
        Scheme::SuperMem,
        Scheme::WriteThrough,
        Scheme::WtCwc,
        Scheme::Osiris,
    ];
    let mut rng = SplitMix64::new(master);
    (0..count)
        .map(|_| {
            let scheme = SCHEMES[rng.next_below(SCHEMES.len() as u64) as usize];
            let kind = ALL_KINDS[rng.next_below(ALL_KINDS.len() as u64) as usize];
            let mut rc = RunConfig::new(scheme, kind);
            rc.seed = rng.next_u64();
            rc.channels = 1 << (1 + rng.next_below(3)); // 2, 4, or 8
            rc.txns = 15;
            rc.req_bytes = 256;
            rc.array_footprint = 512 << 10;
            rc
        })
        .collect()
}

#[test]
fn run_threads_leave_stats_and_telemetry_identical() {
    for rc in random_triples(0x0015_57E6, 5) {
        let mut reference = None;
        for threads in [1usize, 2, 4] {
            let rc_t = rc.clone().with_run_threads(threads);
            let r = run_single(&rc_t);
            let mut exp = Experiment::new(rc_t).expect("valid config").observe();
            let observed = exp.run();
            let telemetry_json = observed
                .telemetry
                .as_ref()
                .expect("observed run returns telemetry")
                .to_json(observed.total_cycles);
            match &reference {
                None => reference = Some((r.total_cycles, r.stats.clone(), telemetry_json)),
                Some((cycles, stats, json)) => {
                    let label = format!("{} {} threads={threads}", rc.scheme, rc.kind);
                    assert_eq!(r.total_cycles, *cycles, "{label}");
                    assert_eq!(&r.stats, stats, "{label}");
                    assert_eq!(&telemetry_json, json, "{label} telemetry");
                }
            }
        }
    }
}

#[test]
fn run_threads_leave_checker_verdicts_identical() {
    for rc in random_triples(0x00C4_EC12, 3) {
        let base = check_run(&rc.clone().with_run_threads(1)).expect("valid config");
        for threads in [2usize, 4] {
            let par = check_run(&rc.clone().with_run_threads(threads)).expect("valid config");
            let label = format!("{} {} threads={threads}", rc.scheme, rc.kind);
            assert_eq!(par.is_clean(), base.is_clean(), "{label}");
            assert_eq!(par.events_seen, base.events_seen, "{label}");
            assert_eq!(par.violations.len(), base.violations.len(), "{label}");
        }
    }
}

/// The strongest form of the invariance claim: the *raw event stream*
/// (every probe event, in order) is byte-identical when sibling-channel
/// drains run on worker threads and replay through their tapes.
#[test]
fn run_threads_leave_event_stream_identical() {
    let mut rc = RunConfig::new(Scheme::SuperMem, supermem::workloads::WorkloadKind::Queue);
    rc.channels = 4;
    rc.txns = 12;
    rc.req_bytes = 256;
    let tape_of = |rc: RunConfig| -> Vec<supermem::sim::Event> {
        let mut exp = Experiment::new(rc)
            .expect("valid config")
            .observe_with(Box::new(EventTape::default()));
        exp.run();
        for mut obs in exp.take_observers() {
            if let Some(tape) = obs.as_any_mut().downcast_mut::<EventTape>() {
                return std::mem::take(tape).into_events();
            }
        }
        unreachable!("the attached EventTape must come back from the run")
    };
    let seq = tape_of(rc.clone().with_run_threads(1));
    assert!(!seq.is_empty(), "the run must emit events");
    for threads in [2usize, 4] {
        let par = tape_of(rc.clone().with_run_threads(threads));
        assert_eq!(par.len(), seq.len(), "threads={threads}");
        assert_eq!(par, seq, "threads={threads}");
    }
}

/// Fast-forward vs tick-by-tick equivalence on an idle-heavy pattern:
/// bursts of flushes separated by long quiescent gaps, which is exactly
/// when the drain fast path skips work. Stats, payloads, and the event
/// stream must not change.
#[test]
fn fast_forward_matches_tick_by_tick_reference() {
    let drive = |fast_forward: bool| -> (supermem::sim::Stats, Vec<supermem::sim::Event>) {
        let cfg = Scheme::SuperMem
            .apply(Config::default())
            .with_channels(2)
            .with_fast_forward(fast_forward);
        let page = cfg.page_bytes;
        let mut set = ChannelSet::new(&cfg);
        set.attach_observer(Box::new(EventTape::default()));
        let mut t = 0u64;
        for burst in 0..12u64 {
            for i in 0..6u64 {
                let line = LineAddr((burst % 3) * page + i * 64);
                t = set.flush_line(line, [(burst * 7 + i) as u8; 64], t);
            }
            // A long idle gap: every queue is quiescent well before the
            // next burst, so the fast path skips the drain scans while
            // the reference build performs them (and issues nothing).
            t += 500_000;
            set.drain_until(t);
        }
        let done = set.finish(t);
        // Burst 9 is the last to target page 0; its i = 1 flush wrote
        // 9 * 7 + 1 = 64 to LineAddr(64).
        let (data, _) = set.read_line(LineAddr(64), done);
        assert_eq!(data[0], 64, "last burst's payload must be readable");
        let mut events = Vec::new();
        for mut obs in set.take_observers() {
            if let Some(tape) = obs.as_any_mut().downcast_mut::<EventTape>() {
                events = std::mem::take(tape).into_events();
            }
        }
        (set.stats().clone(), events)
    };
    let (fast_stats, fast_events) = drive(true);
    let (ref_stats, ref_events) = drive(false);
    assert_eq!(fast_stats, ref_stats);
    assert!(!fast_events.is_empty());
    assert_eq!(fast_events, ref_events);
}
