//! Brute-force oracles for the statistics primitives every figure rests
//! on: `Log2Histogram` percentiles against exact sorted-rank answers,
//! and the Zipfian traffic sampler against its analytic distribution.
//!
//! Deterministic randomized testing: a seeded SplitMix64 generates the
//! inputs (stands in for proptest, which is unavailable in offline
//! builds). Every case is reproducible from the fixed seeds.

use supermem_serve::traffic::{TrafficGen, TrafficSpec};
use supermem_sim::{Log2Histogram, SplitMix64};

/// Exact nearest-rank percentile over the raw values (the histogram's
/// documented rank rule, minus the bucket coarsening).
fn oracle_percentile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let n = sorted.len() as u64;
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((q / 100.0 * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// A value spread that hits every bucket magnitude: uniform u64 draws
/// right-shifted by a uniform amount, with occasional exact zeros.
fn random_values(rng: &mut SplitMix64, n: usize) -> Vec<u64> {
    (0..n)
        .map(|_| {
            if rng.next_below(10) == 0 {
                0
            } else {
                rng.next_u64() >> rng.next_below(64)
            }
        })
        .collect()
}

#[test]
fn histogram_aggregates_match_brute_force_exactly() {
    let mut rng = SplitMix64::new(0x0415_7064);
    for case in 0..32 {
        let n = rng.next_range(1, 400) as usize;
        let values = random_values(&mut rng, n);
        let mut h = Log2Histogram::default();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), values.len() as u64, "case {case}: count");
        // Monotone saturating adds: the result is the exact sum until
        // it would exceed u64::MAX, then pinned there.
        let total: u128 = values.iter().map(|&v| u128::from(v)).sum();
        assert_eq!(
            u128::from(h.sum()),
            total.min(u128::from(u64::MAX)),
            "case {case}: sum"
        );
        assert_eq!(
            h.max(),
            values.iter().copied().max().unwrap_or(0),
            "case {case}: max"
        );
    }
}

#[test]
fn histogram_percentiles_bracket_the_true_rank_value() {
    let mut rng = SplitMix64::new(0xBEC4E7);
    for case in 0..32 {
        let n = rng.next_range(1, 400) as usize;
        let mut values = random_values(&mut rng, n);
        let mut h = Log2Histogram::default();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let truth = oracle_percentile(&values, q);
            let got = h.percentile(q);
            // The histogram only knows the power-of-two bucket the true
            // rank value fell in, so its answer must land inside that
            // bucket (clamped to the exact observed max): within a
            // factor of two of the truth, never beyond the max.
            let lo = if truth == 0 { 0 } else { 1u64 << truth.ilog2() };
            let hi = if truth == 0 {
                0
            } else {
                lo.saturating_mul(2).min(h.max())
            };
            assert!(
                (lo..=hi).contains(&got),
                "case {case}: p{q} = {got} outside bucket [{lo}, {hi}] of true {truth}"
            );
        }
        // The top rank reports the exact maximum.
        assert_eq!(h.percentile(100.0), h.max(), "case {case}: p100");
    }
}

#[test]
fn histogram_percentiles_are_monotone_in_q() {
    let mut rng = SplitMix64::new(0x304F01);
    for case in 0..16 {
        let n = rng.next_range(1, 300) as usize;
        let values = random_values(&mut rng, n);
        let mut h = Log2Histogram::default();
        for &v in &values {
            h.record(v);
        }
        let mut prev = 0u64;
        for q in 0..=1000 {
            let p = h.percentile(f64::from(q) / 10.0);
            assert!(
                p >= prev,
                "case {case}: percentile dips at q={}: {p} < {prev}",
                f64::from(q) / 10.0
            );
            prev = p;
        }
    }
}

/// Draws `n` keys from the sampler under `spec` (reads only, so the
/// request mix cannot perturb the key RNG stream mid-test).
fn key_stream(spec: &TrafficSpec, n: u64) -> Vec<u64> {
    let spec = TrafficSpec {
        requests: n,
        mean_gap: 0,
        ..*spec
    };
    TrafficGen::new(&spec).map(|r| r.key).collect()
}

/// Empirical per-rank frequency of `keys` over `keyspace` ranks.
fn frequencies(keys: &[u64], keyspace: u64) -> Vec<f64> {
    let mut counts = vec![0u64; keyspace as usize];
    for &k in keys {
        counts[k as usize] += 1;
    }
    counts
        .iter()
        .map(|&c| c as f64 / keys.len() as f64)
        .collect()
}

/// Analytic Zipfian mass per rank: `P(r) = r^-theta / H(keyspace, theta)`.
fn analytic_mass(keyspace: u64, theta: f64) -> Vec<f64> {
    let h: f64 = (1..=keyspace).map(|r| (r as f64).powf(-theta)).sum();
    (1..=keyspace)
        .map(|r| (r as f64).powf(-theta) / h)
        .collect()
}

#[test]
fn zipfian_sampler_matches_analytic_distribution() {
    const DRAWS: u64 = 20_000;
    for (theta, keyspace) in [(0.99, 64u64), (0.5, 32), (1.2, 16)] {
        let spec = TrafficSpec {
            zipf_theta: theta,
            keyspace,
            seed: 0x21FF,
            ..TrafficSpec::default()
        };
        let keys = key_stream(&spec, DRAWS);
        assert!(keys.iter().all(|&k| k < keyspace), "key out of keyspace");
        let emp = frequencies(&keys, keyspace);
        let truth = analytic_mass(keyspace, theta);
        // Kolmogorov-style check: the empirical CDF tracks the analytic
        // one at every rank. 0.015 is ~5 sigma at 20k draws — loose
        // enough to never flake (the stream is deterministic anyway),
        // tight enough to catch an off-by-one rank or a wrong exponent.
        let mut emp_cdf = 0.0;
        let mut true_cdf = 0.0;
        for r in 0..keyspace as usize {
            emp_cdf += emp[r];
            true_cdf += truth[r];
            assert!(
                (emp_cdf - true_cdf).abs() < 0.015,
                "theta {theta}, keyspace {keyspace}: CDF diverges at rank {r}: \
                 {emp_cdf:.4} vs {true_cdf:.4}"
            );
        }
    }
}

#[test]
fn zipfian_theta_zero_is_uniform() {
    let spec = TrafficSpec {
        zipf_theta: 0.0,
        keyspace: 16,
        seed: 0xF1A7,
        ..TrafficSpec::default()
    };
    let keys = key_stream(&spec, 16_000);
    for (r, f) in frequencies(&keys, 16).iter().enumerate() {
        assert!(
            (f - 1.0 / 16.0).abs() < 0.01,
            "rank {r} frequency {f:.4} not uniform"
        );
    }
}

#[test]
fn zipfian_keyspace_one_is_constant_and_streams_are_deterministic() {
    let spec = TrafficSpec {
        keyspace: 1,
        seed: 0x0DD,
        ..TrafficSpec::default()
    };
    assert!(key_stream(&spec, 500).iter().all(|&k| k == 0));

    let spec = TrafficSpec {
        zipf_theta: 0.99,
        keyspace: 64,
        seed: 0x5EED,
        ..TrafficSpec::default()
    };
    assert_eq!(
        key_stream(&spec, 1000),
        key_stream(&spec, 1000),
        "same spec + seed must reproduce the same key stream"
    );
}
