//! Multi-core integration: contention shapes from the paper's Figure 14.

use supermem::workloads::WorkloadKind;
use supermem::{run_multicore, RunConfig, Scheme};

fn rc(scheme: Scheme, programs: usize) -> RunConfig {
    let mut rc = RunConfig::new(scheme, WorkloadKind::Queue);
    rc.txns = 20;
    rc.req_bytes = 1024;
    rc.programs = programs;
    rc
}

#[test]
fn more_programs_mean_more_contention() {
    let one = run_multicore(&rc(Scheme::WriteThrough, 1));
    let four = run_multicore(&rc(Scheme::WriteThrough, 4));
    let eight = run_multicore(&rc(Scheme::WriteThrough, 8));
    assert!(four.mean_txn_latency() > one.mean_txn_latency());
    assert!(eight.mean_txn_latency() > four.mean_txn_latency());
}

#[test]
fn supermem_still_beats_wt_under_full_load() {
    // Paper §5.1.2: even with all banks busy (8 programs), CWC+XBank
    // outperform the bare write-through cache.
    let wt = run_multicore(&rc(Scheme::WriteThrough, 8));
    let sm = run_multicore(&rc(Scheme::SuperMem, 8));
    assert!(
        sm.mean_txn_latency() < wt.mean_txn_latency(),
        "SuperMem {:.0} vs WT {:.0}",
        sm.mean_txn_latency(),
        wt.mean_txn_latency()
    );
}

#[test]
fn cwc_gains_grow_relative_to_xbank_with_load() {
    // Paper §5.1.2: with more programs, reducing writes (CWC) helps more
    // than spreading them (XBank), because all banks are already busy.
    let ratio = |programs: usize| {
        let cwc = run_multicore(&rc(Scheme::WtCwc, programs));
        let xbank = run_multicore(&rc(Scheme::WtXbank, programs));
        cwc.mean_txn_latency() / xbank.mean_txn_latency()
    };
    let light = ratio(1);
    let heavy = ratio(8);
    // The paper's observation is qualitative; assert the robust core of
    // it: under full bank load, CWC must stay at least competitive with
    // XBank (it removes writes instead of just spreading them).
    assert!(
        heavy < 1.1,
        "CWC must stay competitive with XBank at 8 programs: {light:.2} -> {heavy:.2}"
    );
}

#[test]
fn programs_run_in_disjoint_regions() {
    // All programs verify against their shadows inside run_multicore;
    // additionally the combined commit count must add up.
    let r = run_multicore(&rc(Scheme::SuperMem, 4));
    assert_eq!(r.stats.txn_commits, 80);
    assert_eq!(r.txns, 80);
}

#[test]
fn all_banks_are_exercised_at_8_programs() {
    let r = run_multicore(&rc(Scheme::SuperMem, 8));
    for (bank, &writes) in r.stats.bank_writes.iter().enumerate() {
        assert!(writes > 0, "bank {bank} idle under 8 programs");
    }
}
