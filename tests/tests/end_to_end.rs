//! End-to-end integration: every scheme x every workload runs, verifies,
//! and reproduces the paper's headline relationships.

use supermem::scheme::FIGURE_SCHEMES;
use supermem::workloads::spec::ALL_KINDS;
use supermem::workloads::WorkloadKind;
use supermem::{run_single, RunConfig, Scheme};

fn quick(scheme: Scheme, kind: WorkloadKind) -> RunConfig {
    let mut rc = RunConfig::new(scheme, kind);
    rc.txns = 60;
    rc.req_bytes = 1024;
    rc.array_footprint = 1 << 20;
    rc
}

#[test]
fn every_scheme_runs_every_workload() {
    for scheme in FIGURE_SCHEMES {
        for kind in ALL_KINDS {
            let r = run_single(&quick(scheme, kind));
            assert_eq!(r.stats.txn_commits, 60, "{scheme}/{kind}");
            assert!(r.mean_txn_latency() > 0.0, "{scheme}/{kind}");
            assert!(r.nvm_writes() > 0, "{scheme}/{kind}");
        }
    }
}

#[test]
fn wt_roughly_doubles_latency_and_writes() {
    // Paper §5.1.1/§5.2: WT costs 1.7-2.4x Unsec and 2x the writes.
    for kind in ALL_KINDS {
        let unsec = run_single(&quick(Scheme::Unsec, kind));
        let wt = run_single(&quick(Scheme::WriteThrough, kind));
        let lat_ratio = wt.mean_txn_latency() / unsec.mean_txn_latency();
        assert!(
            (1.3..3.0).contains(&lat_ratio),
            "{kind}: WT latency ratio {lat_ratio:.2} out of the paper's band"
        );
        let writes_ratio = wt.nvm_writes() as f64 / unsec.nvm_writes() as f64;
        assert!(
            (1.9..2.1).contains(&writes_ratio),
            "{kind}: WT writes ratio {writes_ratio:.2} should be ~2x"
        );
    }
}

#[test]
fn supermem_beats_wt_and_approaches_ideal_wb() {
    // Paper headline: ~2x over WT; comparable to the ideal WB.
    for kind in ALL_KINDS {
        let wb = run_single(&quick(Scheme::WriteBackIdeal, kind));
        let wt = run_single(&quick(Scheme::WriteThrough, kind));
        let sm = run_single(&quick(Scheme::SuperMem, kind));
        assert!(
            sm.mean_txn_latency() < wt.mean_txn_latency() * 0.85,
            "{kind}: SuperMem must clearly beat WT"
        );
        let gap = sm.mean_txn_latency() / wb.mean_txn_latency();
        assert!(
            gap < 1.25,
            "{kind}: SuperMem should be within 25% of ideal WB, got {gap:.2}"
        );
    }
}

#[test]
fn cwc_reduction_grows_with_request_size() {
    // Paper Fig. 15: larger transactions have better locality, so CWC
    // removes a larger share of counter writes.
    let reduction = |req: u64| {
        let mut rc = quick(Scheme::SuperMem, WorkloadKind::BTree);
        rc.req_bytes = req;
        let r = run_single(&rc);
        let coalesced = r.stats.counter_writes_coalesced;
        coalesced as f64 / (coalesced + r.stats.nvm_counter_writes) as f64
    };
    let small = reduction(256);
    let large = reduction(4096);
    assert!(
        large > small,
        "CWC share must grow with request size: 256B {small:.2} vs 4KB {large:.2}"
    );
}

#[test]
fn wb_adds_only_a_few_percent_writes() {
    // Paper §5.2: the ideal WB adds 3-16% writes over Unsec.
    for kind in [WorkloadKind::Queue, WorkloadKind::BTree] {
        let unsec = run_single(&quick(Scheme::Unsec, kind));
        let wb = run_single(&quick(Scheme::WriteBackIdeal, kind));
        let ratio = wb.nvm_writes() as f64 / unsec.nvm_writes() as f64;
        assert!(
            (1.0..1.35).contains(&ratio),
            "{kind}: WB writes ratio {ratio:.2} should stay near Unsec"
        );
    }
}

#[test]
fn xbank_spreads_counter_writes_singlebank_concentrates_them() {
    let run = |scheme: Scheme| run_single(&quick(scheme, WorkloadKind::Queue));
    let single = run(Scheme::WriteThrough); // SingleBank placement
    let xbank = run(Scheme::WtXbank);
    // SingleBank: the last bank serves every counter write.
    let last_share =
        single.stats.bank_writes[7] as f64 / single.stats.bank_writes.iter().sum::<u64>() as f64;
    assert!(
        last_share > 0.4,
        "SingleBank must concentrate writes in bank 7 (got {last_share:.2})"
    );
    let max_share = xbank.stats.bank_writes.iter().copied().max().unwrap() as f64
        / xbank.stats.bank_writes.iter().sum::<u64>() as f64;
    assert!(
        max_share < last_share,
        "XBank must be less concentrated than SingleBank"
    );
}

#[test]
fn request_size_scales_write_volume() {
    let writes = |req: u64| {
        let mut rc = quick(Scheme::Unsec, WorkloadKind::Queue);
        rc.req_bytes = req;
        run_single(&rc).nvm_writes()
    };
    let small = writes(256);
    let large = writes(4096);
    assert!(
        large > small * 4,
        "4KB txns must write far more than 256B txns"
    );
}
