//! End-to-end differential crash torture: the full campaign must
//! classify every injection, and no injection may corrupt silently.
//!
//! These tests exercise the whole stack — fault plan (`supermem-nvm`),
//! degraded controller (`supermem-memctrl`), hardened recovery
//! (`supermem-persist`), and the campaign engine (`supermem::torture`) —
//! at the scale the CI torture job runs.

use supermem::torture::{
    crash_points, run_case, run_torture, Classification, TortureCase, TortureConfig,
    TORTURE_SCHEMES,
};
use supermem::Scheme;
use supermem_nvm::FaultClass;

#[test]
fn full_campaign_classifies_everything_with_zero_silent_corruption() {
    let cfg = TortureConfig::default();
    let report = run_torture(&cfg);
    assert!(
        report.total() >= 1000,
        "the campaign must run at least 1000 injections, got {}",
        report.total()
    );
    let classified = report.count(Classification::RecoveredOld)
        + report.count(Classification::RecoveredNew)
        + report.count(Classification::Detected)
        + report.count(Classification::Silent);
    assert_eq!(classified, report.total(), "every outcome is classified");
    if let Some(r) = report.silent().first() {
        panic!("silent corruption: {} — {}", r.case.repro(), r.detail);
    }
    // Per-scheme tallies cover every default scheme and agree in total.
    let by_scheme = report.by_scheme();
    assert_eq!(by_scheme.len(), TORTURE_SCHEMES.len());
    assert_eq!(
        by_scheme.iter().map(|s| s.cases).sum::<u64>(),
        report.total()
    );
    for s in &by_scheme {
        assert_eq!(s.verdict(), "fail-safe", "{}: {s:?}", s.scheme.name());
    }
}

#[test]
fn every_fault_class_leaves_a_trace_somewhere_in_the_sweep() {
    // Mutation-style pin: for each class there must exist a case whose
    // detail carries the class's evidence — otherwise the injection is
    // wired to a dead path and the campaign proves nothing.
    let evidence = |class: FaultClass| -> bool {
        let cfg = TortureConfig {
            schemes: vec![Scheme::SuperMem, Scheme::WriteThrough],
            classes: vec![Some(class)],
            seeds: vec![1, 2, 3],
            point: None,
            channels: vec![1],
        };
        let report = run_torture(&cfg);
        assert!(report.silent().is_empty(), "{class}: silent corruption");
        match class {
            // Destructive classes must surface as detected somewhere.
            FaultClass::Torn | FaultClass::DoubleFlip | FaultClass::BankFail => report
                .results
                .iter()
                .any(|r| r.classification == Classification::Detected),
            // Benign-under-ECC classes must still recover everywhere
            // (their traces are counted on the recovery side, which the
            // unit tests pin); here the pin is "no degradation at all".
            FaultClass::BitFlip | FaultClass::StuckAt | FaultClass::TransientRead => {
                report.results.iter().all(|r| {
                    matches!(
                        r.classification,
                        Classification::RecoveredOld
                            | Classification::RecoveredNew
                            | Classification::Detected
                    )
                })
            }
        }
    };
    for class in FaultClass::ALL {
        assert!(evidence(class), "{class}: no trace of the injection");
    }
}

#[test]
fn seeded_cases_are_deterministic() {
    let tc = TortureCase {
        scheme: Scheme::SuperMem,
        class: Some(FaultClass::Torn),
        point: crash_points(Scheme::SuperMem, 1) / 2,
        seed: 42,
        channels: 1,
    };
    let a = run_case(&tc);
    let b = run_case(&tc);
    assert_eq!(a.classification, b.classification);
    assert_eq!(a.detail, b.detail);
}

#[test]
fn osiris_scheme_survives_torture_through_trial_decryption_recovery() {
    // Osiris takes the counter-reconstruction recovery path; torture it
    // separately so a regression there cannot hide behind the strict
    // schemes' aggregate.
    let cfg = TortureConfig {
        schemes: vec![Scheme::Osiris],
        classes: vec![None, Some(FaultClass::Torn), Some(FaultClass::DoubleFlip)],
        seeds: vec![1, 2],
        point: None,
        channels: vec![1],
    };
    let report = run_torture(&cfg);
    assert!(report.silent().is_empty());
    assert!(report.count(Classification::RecoveredOld) > 0);
}
