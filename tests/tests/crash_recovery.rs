//! Crash-recovery integration: sweeping power failures over every
//! write-queue append boundary and checking that recovery always lands
//! in a transaction-consistent state under SuperMem — and demonstrably
//! does not under the broken baselines.

use supermem::persist::{recover_transactions, DirectMem, PMem, RecoveredMemory, TxnManager};
use supermem::sim::{Config, CounterCacheBacking, CounterCacheMode};
use supermem::workloads::{WorkloadKind, WorkloadSpec};
use supermem::{Scheme, SystemBuilder};

const DATA: u64 = 0x8000;
const LOG: u64 = 0x20_0000;

/// Runs `mutate` against a durable base image, crashing after `k`
/// appends, and returns the recovered view.
fn crash_at(
    cfg: &Config,
    base: &DirectMem,
    k: u64,
    mutate: impl Fn(&mut DirectMem),
) -> RecoveredMemory {
    let mut mem = base.clone();
    mem.controller_mut().arm_crash_after_appends(k);
    mutate(&mut mem);
    let image = mem
        .controller_mut()
        .take_crash_image()
        .expect("armed crash must fire");
    RecoveredMemory::from_image(cfg, image)
}

fn append_count(base: &DirectMem, mutate: impl Fn(&mut DirectMem)) -> u64 {
    let mut dry = base.clone();
    let before = dry.controller().append_events();
    mutate(&mut dry);
    dry.shutdown();
    dry.controller().append_events() - before
}

#[test]
fn supermem_txn_recovers_at_every_append_boundary() {
    let cfg = Scheme::SuperMem.apply(Config::default());
    let mut base = DirectMem::new(&cfg);
    base.persist(DATA, &[0x11; 512]);
    base.shutdown();
    let mutate = |mem: &mut DirectMem| {
        let mut txm = TxnManager::new(LOG, 8192);
        let mut txn = txm.begin();
        txn.write(DATA, vec![0x22; 512]);
        txn.commit(mem).expect("commit");
    };
    let total = append_count(&base, mutate);
    assert!(total > 10, "expected a meaningful number of crash points");
    let mut saw_old = false;
    let mut saw_new = false;
    for k in 1..=total {
        let mut rec = crash_at(&cfg, &base, k, mutate);
        recover_transactions(&mut rec, LOG).unwrap_or_else(|e| panic!("crash point {k}: {e}"));
        let mut buf = [0u8; 512];
        rec.read(DATA, &mut buf);
        if buf == [0x11; 512] {
            saw_old = true;
        } else if buf == [0x22; 512] {
            saw_new = true;
        } else {
            panic!("crash point {k}: recovered state is neither old nor new");
        }
    }
    assert!(saw_old, "early crashes must roll back");
    assert!(
        saw_new,
        "the final crash point must show the committed state"
    );
}

#[test]
fn multi_record_txn_is_atomic_across_crashes() {
    // Three disjoint ranges updated in one transaction: recovery must
    // never surface a mix of old and new across them.
    let cfg = Scheme::SuperMem.apply(Config::default());
    let ranges: [(u64, u8, u8); 3] = [(0x8000, 1, 2), (0x9000, 3, 4), (0xA000, 5, 6)];
    let mut base = DirectMem::new(&cfg);
    for (addr, old, _) in ranges {
        base.persist(addr, &[old; 128]);
    }
    base.shutdown();
    let mutate = |mem: &mut DirectMem| {
        let mut txm = TxnManager::new(LOG, 8192);
        let mut txn = txm.begin();
        for (addr, _, new) in ranges {
            txn.write(addr, vec![new; 128]);
        }
        txn.commit(mem).expect("commit");
    };
    let total = append_count(&base, mutate);
    for k in 1..=total {
        let mut rec = crash_at(&cfg, &base, k, mutate);
        recover_transactions(&mut rec, LOG).unwrap_or_else(|e| panic!("crash point {k}: {e}"));
        let mut versions = Vec::new();
        for (addr, old, new) in ranges {
            let mut buf = [0u8; 128];
            rec.read(addr, &mut buf);
            if buf == [old; 128] {
                versions.push("old");
            } else if buf == [new; 128] {
                versions.push("new");
            } else {
                panic!("crash point {k}: range {addr:#x} is garbage");
            }
        }
        versions.dedup();
        assert_eq!(
            versions.len(),
            1,
            "crash point {k}: torn transaction {versions:?}"
        );
    }
}

#[test]
fn unbacked_write_back_cache_is_not_crash_consistent() {
    // The negative control for the sweep above (Table 1's "No" rows).
    let cfg = Config {
        encryption: true,
        counter_cache_mode: CounterCacheMode::WriteBack,
        counter_cache_backing: CounterCacheBacking::None,
        ..Config::default()
    };
    let mut base = DirectMem::new(&cfg);
    base.persist(DATA, &[0x11; 512]);
    base.shutdown();
    let mutate = |mem: &mut DirectMem| {
        let mut txm = TxnManager::new(LOG, 8192);
        let mut txn = txm.begin();
        txn.write(DATA, vec![0x22; 512]);
        txn.commit(mem).expect("commit");
    };
    let total = append_count(&base, mutate);
    let mut garbage = 0;
    for k in 1..=total {
        let mut rec = crash_at(&cfg, &base, k, mutate);
        // An undecryptable log may legitimately surface as a torn-log
        // error here: this scheme is the negative control.
        let _ = recover_transactions(&mut rec, LOG);
        let mut buf = [0u8; 512];
        rec.read(DATA, &mut buf);
        if buf != [0x11; 512] && buf != [0x22; 512] {
            garbage += 1;
        }
    }
    assert!(
        garbage > 0,
        "losing dirty counters must corrupt some crash points"
    );
}

#[test]
fn workload_crash_mid_run_leaves_decryptable_structures() {
    // Run the queue workload on the full timed system, crash mid-run,
    // and check the recovered header and items decrypt to plausible
    // values (indices within bounds, monotone).
    let mut sys = SystemBuilder::new()
        .scheme(Scheme::SuperMem)
        .seed(3)
        .build();
    let cfg = sys.config().clone();
    let spec = WorkloadSpec::new(WorkloadKind::Queue)
        .with_txns(50)
        .with_req_bytes(256);
    let mut w = spec.build(&mut sys).expect("valid spec");
    sys.checkpoint();
    sys.arm_crash_after_appends(123);
    for _ in 0..50 {
        w.step(&mut sys).expect("txn");
    }
    let image = sys.take_crash_image().expect("crash fired mid-run");
    let mut rec = RecoveredMemory::from_image(&cfg, image);
    // Queue layout: log (2*256+4096 bytes) then the header line.
    let header = 2 * 256 + 4096;
    let head = rec.read_u64(header);
    let tail = rec.read_u64(header + 8);
    assert!(tail >= head, "indices must be ordered: {head} {tail}");
    assert!(tail - head <= 1024, "length must be within capacity");
    assert!(tail <= 100, "tail cannot exceed committed enqueues");
}

#[test]
fn recovery_completes_interrupted_page_reencryption() {
    // Overflow a minor counter so a page re-encryption starts, crash in
    // the middle, and confirm the RSR-driven recovery restores every
    // line of the page.
    let cfg = Scheme::SuperMem.apply(Config::default());
    let mut base = DirectMem::new(&cfg);
    base.persist(0x0, &[0x77; 64]); // bystander line in page 0
    base.persist(0x1000, &[0x66; 64]); // bystander in page 1
    base.shutdown();

    let mut mem = base.clone();
    // Hammer one line of page 0 up to the overflow (127 minors), then
    // arm a crash inside the 64-line rewrite.
    for i in 0..127u32 {
        mem.persist(0x40, &i.to_le_bytes());
    }
    mem.controller_mut().arm_crash_after_appends(20);
    mem.persist(0x40, &[0xFF; 8]);
    mem.persist(0x80, &[0xEE; 8]);
    let image = mem
        .controller_mut()
        .take_crash_image()
        .expect("crash fired");
    let mut rec = RecoveredMemory::from_image(&cfg, image);
    let mut buf = [0u8; 64];
    rec.read(0x0, &mut buf);
    assert_eq!(buf, [0x77; 64], "page-0 bystander must survive");
    rec.read(0x1000, &mut buf);
    assert_eq!(buf, [0x66; 64], "other pages must be untouched");
}
