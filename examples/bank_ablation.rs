//! Bank-placement ablation (paper Figure 8 / §3.3), runnable demo.
//!
//! Runs the queue workload under the write-through counter cache with
//! each counter placement and prints where writes land and what that
//! does to transaction latency — SingleBank funnels every counter write
//! into one bank, SameBank doubles the load of each data bank, and
//! XBank overlaps the pair in distant banks.
//!
//! Run with: `cargo run --release --example bank_ablation`

use supermem::sim::CounterPlacement;
use supermem::workloads::WorkloadKind;
use supermem::{run_single, RunConfig, Scheme};

fn main() {
    println!("queue workload, 1 KB transactions, WT counter cache\n");
    let mut baseline = None;
    for (placement, name) in [
        (CounterPlacement::SingleBank, "SingleBank (Fig. 8a)"),
        (CounterPlacement::SameBank, "SameBank   (Fig. 8b)"),
        (CounterPlacement::CrossBank, "XBank      (Fig. 8c)"),
    ] {
        let mut rc = RunConfig::new(Scheme::WriteThrough, WorkloadKind::Queue);
        rc.txns = 150;
        rc.placement_override = Some(placement);
        let r = run_single(&rc);
        let lat = r.mean_txn_latency();
        let base = *baseline.get_or_insert(lat);
        let total: u64 = r.stats.bank_writes.iter().sum();
        let shares: Vec<String> = r
            .stats
            .bank_writes
            .iter()
            .map(|&w| format!("{:>3.0}%", 100.0 * w as f64 / total.max(1) as f64))
            .collect();
        println!(
            "{name}: latency {:.2}x, writes per bank [{}]",
            lat / base,
            shares.join(" ")
        );
    }
    println!("\nXBank keeps data and counter writes in different, distant banks,");
    println!("so the two writes of every flush proceed in parallel (paper §3.3).");
}
