//! Active-attacker (bus tampering) detection with the Bonsai Merkle
//! Tree — the defense the paper's §2.2.1 footnote defers to as
//! orthogonal work, provided here as the `supermem-integrity` crate.
//!
//! Encryption alone stops a *passive* attacker (stolen DIMM, bus
//! snooping): the DIMM holds only ciphertext. An *active* attacker can
//! still rewrite NVM bytes; counter-mode decryption would then return
//! garbage silently. Hanging a keyed hash tree over the counter lines
//! (data lines are bound to counters by the encryption itself) turns
//! silent corruption into detected tampering.
//!
//! Run with: `cargo run --example tamper_detection`

use supermem::crypto::CounterLine;
use supermem::integrity::Bmt;
use supermem::nvm::addr::{LineAddr, PageId};
use supermem::persist::PMem;
use supermem::{Scheme, SystemBuilder};

fn main() {
    // A SuperMem system plus an integrity tree over its first 4096
    // counter lines (16 MiB of protected data).
    let mut sys = SystemBuilder::new()
        .scheme(Scheme::SuperMem)
        .seed(99)
        .build();
    let mut bmt = Bmt::new([0x17; 16], 4096).expect("valid tree shape");
    println!(
        "integrity tree: {} counter lines, height {}",
        bmt.pages(),
        bmt.height()
    );

    // Persist some data, then mirror the resulting counter lines into
    // the tree (a real controller would do this on every counter write).
    for page in 0..8u64 {
        sys.write(page * 4096, &[page as u8 + 1; 128]);
        sys.clwb(page * 4096, 128);
    }
    sys.sfence();
    sys.checkpoint();
    for page in 0..8u64 {
        let ctr = sys.controller().store().read_counter(PageId(page));
        bmt.update(page, &ctr);
    }

    // Normal operation: every counter fetch verifies against the root.
    for page in 0..8u64 {
        let ctr = sys.controller().store().read_counter(PageId(page));
        assert!(bmt.verify(page, &ctr));
    }
    println!("all counter fetches verify against the trusted root");

    // The attack: rewind page 3's counter line to its fresh state (a
    // classic replay attack — re-serving old ciphertext+counter pairs).
    let image = sys.crash_now();
    let mut tampered = image.store.clone();
    tampered.write_counter(PageId(3), CounterLine::new().encode());
    let forged = tampered.read_counter(PageId(3));
    assert!(
        !bmt.verify(3, &forged),
        "the replayed counter must not verify"
    );
    println!("replay attack on page 3's counters: DETECTED (root mismatch)");

    // Decryption without the tree would have silently returned garbage:
    let line = LineAddr(3 * 4096);
    let ctr = CounterLine::decode(&forged);
    let engine = supermem::crypto::EncryptionEngine::new(sys.config().encryption_key());
    let garbage = engine.decrypt_line(&tampered.read_data(line), line.0, ctr.major(), ctr.minor(0));
    assert_ne!(garbage, [4u8; 64]);
    println!(
        "without the tree, the same read silently decrypts to garbage: {:02x?}...",
        &garbage[..6]
    );
}
