//! Quickstart: build a SuperMem system, persist data through the
//! encrypted NVM, crash it, and recover.
//!
//! Run with: `cargo run --example quickstart`

use supermem::persist::{PMem, RecoveredMemory};
use supermem::{Scheme, SystemBuilder};

fn main() {
    // A full secure-PM machine with the paper's Table 2 configuration:
    // 8 banks of PCM behind a 32-entry ADR write queue, a 256 KB
    // write-through counter cache, counter write coalescing, and
    // cross-bank counter storage.
    let mut sys = SystemBuilder::new()
        .scheme(Scheme::SuperMem)
        .seed(42)
        .build();

    // Ordinary persistent-memory programming: store, flush, fence.
    let message = b"SuperMem: application-transparent secure persistent memory";
    sys.write(0x1000, message);
    sys.clwb(0x1000, message.len() as u64);
    sys.sfence();

    // Reads decrypt transparently through the counter-mode engine.
    let mut buf = vec![0u8; message.len()];
    sys.read(0x1000, &mut buf);
    assert_eq!(&buf, message);
    println!(
        "read back through the hierarchy: {:?}",
        String::from_utf8_lossy(&buf)
    );

    // The NVM DIMM itself holds only ciphertext: a thief learns nothing.
    let line = supermem::nvm::addr::LineAddr(0x1000);
    let raw = sys.controller().store().read_data(line);
    // (The line may still be queued; drain so the DIMM view is current.)
    let raw = if raw == [0u8; 64] {
        let image = sys.crash_now();
        image.store.read_data(line)
    } else {
        raw
    };
    assert_ne!(
        &raw[..message.len().min(64)],
        &message[..message.len().min(64)]
    );
    println!("DIMM bytes are ciphertext: {:02x?}...", &raw[..8]);

    // Power failure: volatile state is gone, the ADR domain survives,
    // and recovery decrypts with the persisted counters.
    let image = sys.crash_now();
    let cfg = sys.config().clone();
    let mut recovered = RecoveredMemory::from_image(&cfg, image);
    let mut buf = vec![0u8; message.len()];
    recovered.read(0x1000, &mut buf);
    assert_eq!(&buf, message);
    println!("recovered after crash: {:?}", String::from_utf8_lossy(&buf));

    // Simulation statistics (drain the write queue first so the write
    // counters are final).
    sys.checkpoint();
    let s = sys.stats();
    println!(
        "stats: {} NVM data writes, {} counter writes, {} coalesced, core at cycle {}",
        s.nvm_data_writes,
        s.nvm_counter_writes,
        s.counter_writes_coalesced,
        sys.now()
    );
}
