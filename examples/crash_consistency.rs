//! Crash-consistency demonstration (paper Table 1 and Figure 6, condensed).
//!
//! Shows why counter atomicity matters: the same atomic in-place update
//! is crashed at its single most dangerous point under three designs.
//! With SuperMem's write-through counter cache and staging register the
//! line always decrypts; without the register (Figure 6) or with an
//! unbacked write-back counter cache (Table 1) it can come back as
//! garbage.
//!
//! Run with: `cargo run --example crash_consistency`

use supermem::persist::{DirectMem, PMem, RecoveredMemory};
use supermem::sim::{Config, CounterCacheBacking, CounterCacheMode};
use supermem::Scheme;

const ADDR: u64 = 0x4000;
const OLD: u64 = 0xAAAA_AAAA_AAAA_AAAA;
const NEW: u64 = 0xBBBB_BBBB_BBBB_BBBB;

fn demo(name: &str, cfg: &Config) {
    // Durable old state.
    let mut mem = DirectMem::new(cfg);
    mem.persist(ADDR, &OLD.to_le_bytes());
    mem.shutdown();

    // Crash on the very first append of the update: under the atomic
    // register this is the whole data+counter pair; without it, it is
    // the counter alone — the Figure 6 window.
    mem.controller_mut().arm_crash_after_appends(1);
    mem.persist(ADDR, &NEW.to_le_bytes());
    let image = mem
        .controller_mut()
        .take_crash_image()
        .expect("crash fired");

    let mut rec = RecoveredMemory::from_image(cfg, image);
    let value = rec.read_u64(ADDR);
    let outcome = match value {
        OLD => "consistent (old value)".to_owned(),
        NEW => "consistent (new value)".to_owned(),
        other => format!("GARBAGE {other:#018x} — unrecoverable"),
    };
    println!("{name:<24} -> {outcome}");
}

fn main() {
    println!("atomic 8-byte in-place update, crash at the first append event\n");

    demo("SuperMem", &Scheme::SuperMem.apply(Config::default()));

    let mut no_register = Scheme::WriteThrough.apply(Config::default());
    no_register.atomic_pair_append = false;
    demo("WT without register", &no_register);

    let wb_unbacked = Config {
        encryption: true,
        counter_cache_mode: CounterCacheMode::WriteBack,
        counter_cache_backing: CounterCacheBacking::None,
        ..Config::default()
    };
    demo("WB without battery", &wb_unbacked);

    println!("\nSuperMem's staging register appends data and counter as one");
    println!("ADR event, so every crash point leaves a decryptable NVM image.");
}
