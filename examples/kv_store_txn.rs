//! A durable key-value store over encrypted NVM.
//!
//! Runs the paper's B-tree workload scenario end-to-end: transactional
//! inserts of 1 KB key-value items into a persistent B-tree, a power
//! failure in the middle of the run, recovery, and a functional
//! re-read of the committed data — all under the full SuperMem scheme.
//!
//! Run with: `cargo run --example kv_store_txn`

use supermem::persist::{PMem, RecoveredMemory};
use supermem::workloads::BTreeWorkload;
use supermem::{Scheme, SystemBuilder};

fn main() {
    let mut sys = SystemBuilder::new()
        .scheme(Scheme::SuperMem)
        .seed(7)
        .build();

    // A B-tree KV store in a 256 MiB region: 1 KB values out of line,
    // every insert a durable undo-logged transaction.
    let mut kv = BTreeWorkload::new(&mut sys, 0, 1 << 28, 1024, 7);
    for key in 0..200u64 {
        let value = vec![(key % 251) as u8; 1000];
        kv.insert(&mut sys, key, value).expect("insert");
    }
    kv.verify(&mut sys).expect("tree consistent");
    println!(
        "inserted {} items in {} committed transactions (cycle {})",
        kv.len(),
        kv.committed(),
        sys.now()
    );

    // Pull the plug. Everything committed must survive; the B-tree's
    // durable root pointer and nodes decrypt through the persisted
    // counters.
    let cfg = sys.config().clone();
    let image = sys.crash_now();
    let mut recovered = RecoveredMemory::from_image(&cfg, image);

    // Functional re-read: walk a few keys by consulting the recovered
    // bytes directly (header at region start holds the root pointer).
    // The workload's own verify requires its shadow, so here we spot
    // check values by recomputing what was inserted.
    for key in [0u64, 17, 99, 199] {
        let value = lookup(&mut recovered, key).expect("key must survive the crash");
        assert_eq!(value, vec![(key % 251) as u8; 1000]);
        println!(
            "key {key:3} -> {} bytes, first byte {}",
            value.len(),
            value[0]
        );
    }
    println!("all spot-checked keys recovered intact");
}

/// Minimal read-only B-tree lookup against recovered memory, using the
/// same node layout as [`BTreeWorkload`] (meta at +0, keys at +8,
/// values at +128, children at +248; the region header holds the root).
fn lookup(mem: &mut RecoveredMemory, key: u64) -> Option<Vec<u8>> {
    // Region layout from BTreeWorkload::new: log (4*1024+8192 bytes),
    // then the 64-byte header holding the root pointer.
    let header = 4 * 1024 + 8192;
    let mut node = mem.read_u64(header);
    for _ in 0..64 {
        let meta = mem.read_u64(node);
        let leaf = meta >> 63 == 1;
        let count = (meta & 0xFFFF_FFFF) as usize;
        let mut keys = Vec::with_capacity(count);
        for i in 0..count {
            keys.push(mem.read_u64(node + 8 + 8 * i as u64));
        }
        match keys.binary_search(&key) {
            Ok(pos) => {
                let vaddr = mem.read_u64(node + 128 + 8 * pos as u64);
                let len = mem.read_u64(vaddr) as usize;
                let mut value = vec![0u8; len];
                mem.read(vaddr + 8, &mut value);
                return Some(value);
            }
            Err(pos) => {
                if leaf {
                    return None;
                }
                node = mem.read_u64(node + 248 + 8 * pos as u64);
            }
        }
    }
    None
}
