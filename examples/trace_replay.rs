//! Trace-driven what-if analysis.
//!
//! Records the B-tree workload's memory trace once, serializes it,
//! and replays the identical traffic through three machine
//! configurations — the methodology behind the `tracebench` harness.
//!
//! Run with: `cargo run --release --example trace_replay`

use supermem::trace::{decode, encode};
use supermem::workloads::WorkloadKind;
use supermem::{record_workload_trace, replay_trace, RunConfig, Scheme};

fn main() {
    let mut rc = RunConfig::new(Scheme::SuperMem, WorkloadKind::BTree);
    rc.txns = 100;
    rc.req_bytes = 1024;

    // Capture once, against a purely functional memory (fast).
    let trace = record_workload_trace(&rc);
    let bytes = encode(&trace);
    println!(
        "recorded {} events ({} KiB serialized) for {} transactions",
        trace.len(),
        bytes.len() / 1024,
        rc.txns
    );

    // The serialized form round-trips (a trace can be shipped to disk).
    let trace = decode(&bytes).expect("self-produced trace decodes");

    // Replay through three machines.
    for scheme in [Scheme::Unsec, Scheme::WriteThrough, Scheme::SuperMem] {
        let mut rc = rc.clone();
        rc.scheme = scheme;
        let r = replay_trace(&rc, &trace);
        println!(
            "{:<10} mean txn latency {:>7.0} cycles, {} NVM writes, {} coalesced",
            scheme.name(),
            r.mean_txn_latency(),
            r.nvm_writes(),
            r.stats.counter_writes_coalesced
        );
    }
    println!("\nIdentical traffic, different memory systems: the gap is pure");
    println!("counter-handling overhead — what SuperMem eliminates.");
}
